//! Tests of the resilient runner (split out of `runner.rs` so the path
//! source holds only the hook set and its state machine).

use super::*;
use crate::resilience::FailureModel;
use helios_platform::presets;
use helios_sched::HeftScheduler;
use helios_workflow::generators::{cybershake, montage};

fn config_with(seed: u64, failures: FailureModel, policy: RecoveryPolicy) -> EngineConfig {
    EngineConfig {
        seed,
        noise_cv: 0.2,
        resilience: Some(ResilienceConfig::new(failures, policy)),
        ..Default::default()
    }
}

fn policies() -> Vec<RecoveryPolicy> {
    vec![
        RecoveryPolicy::RetryBackoff {
            base_secs: 0.005,
            factor: 2.0,
            cap_secs: 0.05,
            max_retries: 10_000,
        },
        RecoveryPolicy::ReplicateK {
            replicas: 2,
            max_retries: 10_000,
        },
        RecoveryPolicy::CheckpointRestart {
            interval_secs: 0.05,
            overhead_secs: 0.002,
            max_retries: 10_000,
        },
        RecoveryPolicy::Reschedule {
            scheduler: "heft".into(),
            overhead_secs: 0.01,
            max_retries: 10_000,
        },
    ]
}

#[test]
fn requires_resilience_config() {
    let p = presets::hpc_node();
    let wf = montage(20, 1).unwrap();
    let err = ResilientRunner::new(EngineConfig::default())
        .run(&p, &wf, &HeftScheduler::default())
        .unwrap_err();
    assert!(matches!(err, EngineError::Config(_)), "{err}");
}

#[test]
fn every_policy_completes_under_transient_faults() {
    let p = presets::hpc_node();
    let wf = montage(50, 2).unwrap();
    for policy in policies() {
        let cfg = config_with(3, FailureModel::exponential(0.03), policy.clone());
        let report = ResilientRunner::new(cfg)
            .run(&p, &wf, &HeftScheduler::default())
            .unwrap_or_else(|e| panic!("{} failed: {e}", policy.name()));
        assert_eq!(report.schedule().placements().len(), wf.num_tasks());
        let m = report.resilience().unwrap();
        assert_eq!(m.policy, policy.name());
        assert!(
            m.makespan_degradation >= -1e-9,
            "{}: faults sped the run up ({})",
            policy.name(),
            m.makespan_degradation
        );
        assert!(m.fault_free_makespan_secs > 0.0);
    }
}

#[test]
fn deterministic_per_seed() {
    let p = presets::hpc_node();
    let wf = cybershake(40, 3).unwrap();
    for policy in policies() {
        let cfg = config_with(11, FailureModel::weibull(0.04, 1.5), policy.clone());
        let a = ResilientRunner::new(cfg.clone())
            .run(&p, &wf, &HeftScheduler::default())
            .unwrap();
        let b = ResilientRunner::new(cfg.clone())
            .run(&p, &wf, &HeftScheduler::default())
            .unwrap();
        assert_eq!(a, b, "{} must be deterministic", policy.name());
        let mut other = cfg;
        other.seed = 12;
        let c = ResilientRunner::new(other)
            .run(&p, &wf, &HeftScheduler::default())
            .unwrap();
        assert_ne!(a, c, "{} must react to the seed", policy.name());
    }
}

#[test]
fn degraded_devices_extend_makespan() {
    let p = presets::hpc_node();
    let wf = montage(50, 4).unwrap();
    let mut fm = FailureModel::exponential(0.01);
    fm.degraded_prob = 1.0; // Every fault degrades; none abort.
    fm.degraded_slowdown = 4.0;
    fm.degraded_repair_secs = 0.05;
    let cfg = config_with(
        5,
        fm,
        RecoveryPolicy::RetryBackoff {
            base_secs: 0.0,
            factor: 1.0,
            cap_secs: 0.0,
            max_retries: 0,
        },
    );
    let report = ResilientRunner::new(cfg)
        .run(&p, &wf, &HeftScheduler::default())
        .unwrap();
    let m = report.resilience().unwrap();
    assert!(m.degraded_failures > 0);
    assert_eq!(m.transient_failures, 0);
    assert!(
        m.makespan_degradation > 0.0,
        "slowdowns must cost time, got {}",
        m.makespan_degradation
    );
}

#[test]
fn permanent_loss_reassigns_and_completes() {
    let p = presets::hpc_node();
    let wf = montage(60, 5).unwrap();
    for policy in policies() {
        let mut fm = FailureModel::exponential(0.05);
        fm.permanent_prob = 0.3;
        fm.restart_overhead_secs = 0.002;
        let cfg = config_with(21, fm, policy.clone());
        match ResilientRunner::new(cfg).run(&p, &wf, &HeftScheduler::default()) {
            Ok(report) => {
                let m = report.resilience().unwrap();
                assert_eq!(report.schedule().placements().len(), wf.num_tasks());
                if m.permanent_failures > 0 && policy.name() == "reschedule" {
                    assert!(m.reschedules > 0, "losses must trigger a replan");
                }
            }
            // Losing every feasible device is a legal outcome.
            Err(EngineError::AllDevicesLost { .. }) => {}
            Err(e) => panic!("{}: unexpected error {e}", policy.name()),
        }
    }
}

#[test]
fn replicate_k_counts_are_consistent() {
    let p = presets::hpc_node();
    let wf = cybershake(50, 6).unwrap();
    let cfg = config_with(
        9,
        FailureModel::exponential(0.05),
        RecoveryPolicy::ReplicateK {
            replicas: 3,
            max_retries: 10_000,
        },
    );
    let report = ResilientRunner::new(cfg)
        .run(&p, &wf, &HeftScheduler::default())
        .unwrap();
    let m = report.resilience().unwrap();
    assert_eq!(m.permanent_failures, 0);
    assert_eq!(
        m.replicas_launched,
        wf.num_tasks() as u32 + m.replicas_cancelled,
        "every launch either wins its task or is cancelled"
    );
    assert!(m.replicas_cancelled > 0, "replicas must actually race");
}

#[test]
fn fault_free_baseline_matches_injection_disabled() {
    // With failure injection on but an astronomically large MTTF the
    // run must coincide with its own baseline.
    let p = presets::hpc_node();
    let wf = montage(40, 7).unwrap();
    let cfg = config_with(
        13,
        FailureModel::exponential(1e12),
        RecoveryPolicy::CheckpointRestart {
            interval_secs: 0.05,
            overhead_secs: 0.002,
            max_retries: 5,
        },
    );
    let report = ResilientRunner::new(cfg)
        .run(&p, &wf, &HeftScheduler::default())
        .unwrap();
    let m = report.resilience().unwrap();
    assert!(
        m.makespan_degradation.abs() < 1e-9,
        "{}",
        m.makespan_degradation
    );
    assert_eq!(m.wasted_work_secs, 0.0);
    assert_eq!(m.transient_failures, 0);
}

// ---- interconnect faults, correlated domains, lineage recovery ----

use crate::resilience::{FailureDomain, LinkFaultModel};
use helios_platform::{
    ComputeCost, DeviceBuilder, DeviceKind, InterconnectBuilder, KernelClass, Link, PlatformBuilder,
};
use helios_sched::SchedError;
use helios_workflow::{Task, WorkflowBuilder};

/// A scheduler that returns a pre-built plan, so tests control the
/// exact placement and queue order the runner executes.
struct FixedPlan(Schedule);

impl Scheduler for FixedPlan {
    fn name(&self) -> &str {
        "fixed"
    }
    fn schedule(&self, _wf: &Workflow, _p: &Platform) -> Result<Schedule, SchedError> {
        Ok(self.0.clone())
    }
}

fn retry_policy() -> RecoveryPolicy {
    RecoveryPolicy::RetryBackoff {
        base_secs: 0.0,
        factor: 1.0,
        cap_secs: 0.0,
        max_retries: 10_000,
    }
}

/// A rack-style domain striking devices `devices` and links `links`
/// near t ≈ 0.14–0.22 s (Weibull scale 0.2, shape 60 is almost a
/// delta function there), with the given event-kind mix.
fn tight_domain(
    devices: &[&str],
    links: &[&str],
    degraded_prob: f64,
    permanent_prob: f64,
    outage_secs: f64,
) -> FailureDomain {
    FailureDomain {
        kind: "rack".into(),
        name: "r0".into(),
        devices: devices.iter().map(|s| s.to_string()).collect(),
        links: links.iter().map(|s| s.to_string()).collect(),
        mttf_secs: 0.2,
        weibull_shape: Some(60.0),
        degraded_prob,
        permanent_prob,
        outage_secs,
    }
}

/// Two 1 TFLOP/s CPUs joined by a single 10 GB/s link. Reduction
/// kernels run at efficiency 0.8, so a task of `g` GFLOP takes
/// `g / 800` seconds — exact, because `noise_cv` is zero in these
/// tests.
fn pair_platform(default_link: Option<(&str, f64)>) -> Platform {
    let mut b = PlatformBuilder::new("pair");
    let a = b.add_device(
        DeviceBuilder::new("a", DeviceKind::Cpu)
            .peak_gflops(1000.0)
            .build()
            .unwrap(),
    );
    let bb = b.add_device(
        DeviceBuilder::new("b", DeviceKind::Cpu)
            .peak_gflops(1000.0)
            .build()
            .unwrap(),
    );
    let mut ic = InterconnectBuilder::new();
    let wire = ic.add_link(Link::new("wire", 10.0, SimDuration::from_secs(5e-6)).unwrap());
    ic.route_symmetric(a, bb, vec![wire]);
    if let Some((name, gbs)) = default_link {
        let alt = ic.add_link(Link::new(name, gbs, SimDuration::from_secs(5e-6)).unwrap());
        ic.default_link(alt);
    }
    b.interconnect(ic.build());
    b.build().unwrap()
}

fn place(task: usize, dev: usize, start: f64, finish: f64) -> Placement {
    Placement {
        task: TaskId(task),
        device: DeviceId(dev),
        level: DvfsLevel(2),
        start: SimTime::from_secs(start),
        finish: SimTime::from_secs(finish),
    }
}

fn exact_config(seed: u64, res: ResilienceConfig) -> EngineConfig {
    EngineConfig {
        seed,
        noise_cv: 0.0,
        resilience: Some(res),
        ..Default::default()
    }
}

/// A producer-side chain on device `a` plus a long straggler on `b`:
/// t0→t2 and t3→t4 cross the link, t5 has no consumers, t1 keeps
/// `b` busy for a full second. Paired with its fixed plan.
fn lineage_fixture() -> (Workflow, Schedule) {
    let mut w = WorkflowBuilder::new("lineage");
    let quick = ComputeCost::new(8.0, 0.0, KernelClass::Reduction); // 10 ms
    let slow = ComputeCost::new(800.0, 0.0, KernelClass::Reduction); // 1 s
    let t0 = w.add_task(Task::new("t0", "s", quick));
    let t1 = w.add_task(Task::new("t1", "s", slow));
    let t2 = w.add_task(Task::new("t2", "s", quick));
    let t3 = w.add_task(Task::new("t3", "s", quick));
    let t4 = w.add_task(Task::new("t4", "s", quick));
    let t5 = w.add_task(Task::new("t5", "s", quick));
    w.add_dep(t0, t2, 2e6).unwrap();
    w.add_dep(t3, t4, 3e6).unwrap();
    let _ = t1;
    let _ = t5;
    let wf = w.build().unwrap();
    let plan = Schedule::new(vec![
        place(0, 0, 0.00, 0.01),
        place(3, 0, 0.02, 0.03),
        place(5, 0, 0.04, 0.05),
        place(1, 1, 0.00, 1.00),
        place(2, 1, 1.05, 1.06),
        place(4, 1, 1.07, 1.08),
    ])
    .unwrap();
    (wf, plan)
}

#[test]
fn permanent_domain_loss_rematerializes_only_lost_ancestors() {
    // Device `a` finishes t0, t3, t5 by t ≈ 0.03 s, then its PSU
    // domain kills it near t ≈ 0.17 s while t1 still holds `b`.
    // The products of t0 and t3 are lost before their consumers
    // staged them; lineage recovery must re-run exactly those two —
    // not t5, whose product nobody needs.
    let p = pair_platform(None);
    let (wf, plan) = lineage_fixture();
    let res =
        ResilienceConfig::new(FailureModel::exponential(1e12), retry_policy()).with_domains(vec![
            FailureDomain {
                kind: "psu".into(),
                devices: vec!["a".into()],
                links: vec![],
                ..tight_domain(&[], &[], 0.0, 1.0, 0.0)
            },
        ]);
    let report = ResilientRunner::new(exact_config(9, res))
        .run(&p, &wf, &FixedPlan(plan))
        .unwrap();
    let m = report.resilience().unwrap();
    assert_eq!(m.domain_events, 1, "domain dies with its first strike");
    assert_eq!(m.permanent_failures, 1);
    assert_eq!(m.rematerialized_tasks, 2, "t0 and t3, not t5");
    assert!(
        (m.rematerialized_bytes - 5e6).abs() < 1.0,
        "re-staged bytes must equal the lost products' out-edges, got {}",
        m.rematerialized_bytes
    );
    assert!(m.wasted_work_secs > 0.0, "re-running t0/t3 is wasted work");
    assert!(m.makespan_degradation > 0.0);
    assert_eq!(report.schedule().placements().len(), wf.num_tasks());
}

#[test]
fn severed_primary_route_reroutes_over_default_link() {
    // The rack strike permanently severs the fast primary link at
    // t ≈ 0.17 s; t1 stages its input at t = 1 s and must fall back
    // to the slower default link instead of stranding.
    let p = pair_platform(Some(("alt", 2.0)));
    let mut w = WorkflowBuilder::new("reroute");
    let t0 = w.add_task(Task::new(
        "t0",
        "s",
        ComputeCost::new(800.0, 0.0, KernelClass::Reduction),
    ));
    let t1 = w.add_task(Task::new(
        "t1",
        "s",
        ComputeCost::new(8.0, 0.0, KernelClass::Reduction),
    ));
    w.add_dep(t0, t1, 2e7).unwrap();
    let wf = w.build().unwrap();
    let plan = Schedule::new(vec![place(0, 0, 0.0, 1.0), place(1, 1, 1.0, 1.1)]).unwrap();
    let res = ResilienceConfig::new(FailureModel::exponential(1e12), retry_policy())
        .with_domains(vec![tight_domain(&[], &["wire"], 0.0, 1.0, 0.0)]);
    let report = ResilientRunner::new(exact_config(4, res))
        .run(&p, &wf, &FixedPlan(plan))
        .unwrap();
    let m = report.resilience().unwrap();
    assert_eq!(m.domain_events, 1);
    assert_eq!(m.permanent_failures, 0, "links died, devices did not");
    assert_eq!(m.reroutes, 1, "the one cross-link transfer reroutes");
    assert!(
        m.makespan_degradation > 0.0,
        "the 2 GB/s detour must cost time over the 10 GB/s primary, got {}",
        m.makespan_degradation
    );
    assert_eq!(report.schedule().placements().len(), wf.num_tasks());
}

#[test]
fn link_outage_without_fallback_stalls_transfers() {
    // Same topology but no default link: a 1000 s outage starting
    // near t ≈ 0.17 s leaves the staging at t = 1 s nothing to
    // reroute over, so the transfer stalls until the link heals and
    // the stall is booked as partition downtime.
    let p = pair_platform(None);
    let mut w = WorkflowBuilder::new("stall");
    let t0 = w.add_task(Task::new(
        "t0",
        "s",
        ComputeCost::new(800.0, 0.0, KernelClass::Reduction),
    ));
    let t1 = w.add_task(Task::new(
        "t1",
        "s",
        ComputeCost::new(8.0, 0.0, KernelClass::Reduction),
    ));
    w.add_dep(t0, t1, 2e6).unwrap();
    let wf = w.build().unwrap();
    let plan = Schedule::new(vec![place(0, 0, 0.0, 1.0), place(1, 1, 1.0, 1.1)]).unwrap();
    let res = ResilienceConfig::new(FailureModel::exponential(1e12), retry_policy())
        .with_domains(vec![tight_domain(&[], &["wire"], 0.0, 0.0, 1000.0)]);
    let report = ResilientRunner::new(exact_config(4, res))
        .run(&p, &wf, &FixedPlan(plan))
        .unwrap();
    let m = report.resilience().unwrap();
    assert!(m.domain_events >= 1);
    assert_eq!(m.reroutes, 0, "nothing to reroute over");
    assert!(
        m.partition_downtime_secs > 100.0,
        "staging must wait out most of the outage, got {}",
        m.partition_downtime_secs
    );
    assert!(m.makespan_degradation > 100.0);
    assert_eq!(report.schedule().placements().len(), wf.num_tasks());
}

#[test]
fn link_faults_cost_time_and_stay_deterministic() {
    let p = presets::hpc_node();
    let wf = montage(50, 2).unwrap();
    let res = ResilienceConfig::new(FailureModel::exponential(1e12), retry_policy())
        .with_link_faults(LinkFaultModel::exponential(0.05));
    let cfg = EngineConfig {
        seed: 17,
        noise_cv: 0.1,
        resilience: Some(res),
        ..Default::default()
    };
    let a = ResilientRunner::new(cfg.clone())
        .run(&p, &wf, &HeftScheduler::default())
        .unwrap();
    let m = a.resilience().unwrap();
    assert!(m.link_faults > 0, "MTTF 0.05 s must actually fire");
    assert_eq!(m.transient_failures, 0, "devices were not touched");
    assert!(
        m.makespan_degradation >= -1e-9,
        "link faults must never speed the run up, got {}",
        m.makespan_degradation
    );
    assert_eq!(a.schedule().placements().len(), wf.num_tasks());
    let b = ResilientRunner::new(cfg)
        .run(&p, &wf, &HeftScheduler::default())
        .unwrap();
    assert_eq!(a, b, "link-fault runs must be deterministic per seed");
}

#[test]
fn correlated_domain_strikes_every_policy_survives() {
    let p = presets::hpc_node();
    let wf = montage(30, 3).unwrap();
    for policy in policies() {
        let res = ResilienceConfig::new(FailureModel::exponential(1e12), policy.clone())
            .with_domains(vec![FailureDomain {
                kind: "rack".into(),
                name: "gpu-rack".into(),
                devices: vec!["gpu0".into(), "gpu1".into()],
                links: vec!["nvlink".into()],
                mttf_secs: 0.002,
                weibull_shape: None,
                degraded_prob: 0.3,
                permanent_prob: 0.0,
                outage_secs: 0.005,
            }]);
        let cfg = EngineConfig {
            seed: 23,
            noise_cv: 0.1,
            resilience: Some(res),
            ..Default::default()
        };
        let a = ResilientRunner::new(cfg.clone())
            .run(&p, &wf, &HeftScheduler::default())
            .unwrap_or_else(|e| panic!("{} failed: {e}", policy.name()));
        let m = a.resilience().unwrap();
        assert!(m.domain_events > 0, "{}: domain must strike", policy.name());
        assert!(
            m.makespan_degradation >= -1e-9,
            "{}: correlated faults must never speed the run up, got {}",
            policy.name(),
            m.makespan_degradation
        );
        assert_eq!(a.schedule().placements().len(), wf.num_tasks());
        let b = ResilientRunner::new(cfg)
            .run(&p, &wf, &HeftScheduler::default())
            .unwrap();
        assert_eq!(a, b, "{} must be deterministic", policy.name());
    }
}

#[test]
fn unknown_domain_members_are_actionable_config_errors() {
    let p = presets::hpc_node();
    let wf = montage(20, 1).unwrap();
    let bad_dev = ResilienceConfig::new(FailureModel::exponential(1e12), retry_policy())
        .with_domains(vec![tight_domain(&["nope"], &[], 0.0, 0.0, 0.1)]);
    let err = ResilientRunner::new(exact_config(1, bad_dev))
        .run(&p, &wf, &HeftScheduler::default())
        .unwrap_err();
    let msg = err.to_string();
    assert!(matches!(err, EngineError::Config(_)), "{err}");
    assert!(msg.contains("nope") && msg.contains("cpu0"), "{msg}");

    let bad_link = ResilienceConfig::new(FailureModel::exponential(1e12), retry_policy())
        .with_domains(vec![tight_domain(&[], &["nolink"], 0.0, 0.0, 0.1)]);
    let err = ResilientRunner::new(exact_config(1, bad_link))
        .run(&p, &wf, &HeftScheduler::default())
        .unwrap_err();
    let msg = err.to_string();
    assert!(matches!(err, EngineError::Config(_)), "{err}");
    assert!(msg.contains("nolink") && msg.contains("nvlink"), "{msg}");
}

#[test]
fn step_budget_watchdog_aborts_grinding_runs() {
    let p = presets::hpc_node();
    let wf = montage(40, 1).unwrap();
    let cfg = EngineConfig {
        seed: 3,
        step_budget: Some(10),
        resilience: Some(ResilienceConfig::new(
            FailureModel::exponential(0.05),
            retry_policy(),
        )),
        ..Default::default()
    };
    let err = ResilientRunner::new(cfg)
        .run(&p, &wf, &HeftScheduler::default())
        .unwrap_err();
    assert!(
        matches!(err, EngineError::StepBudgetExceeded { steps: 10, .. }),
        "{err}"
    );
    assert!(err.to_string().contains("step budget"), "{err}");
}
