//! Fault injection and repair: the handlers that turn pre-drawn
//! device, link and correlated-domain failure events into state
//! changes. An `impl` extension of [`Sim`], split out of `runner.rs` so
//! the path source holds only the hook set and the dispatcher.

use super::*;

impl Sim<'_> {
    pub(super) fn schedule_next_fault(&mut self, d: usize, now: SimTime) {
        let ev = self.process.next_after(&mut self.devs[d].rng, now);
        self.devs[d].pending_kind = Some(ev.kind);
        self.queue.push(ev.at, Ev::Fault { device: d });
    }

    pub(super) fn schedule_next_link_fault(&mut self, l: usize, now: SimTime) {
        let proc = self
            .link_proc
            .as_ref()
            .expect("link faults scheduled without a model");
        let ev = proc.next_after(&mut self.link_rt[l].rng, now);
        self.link_rt[l].pending = Some(ev.kind);
        self.queue.push(ev.at, Ev::LinkFault { link: l });
    }

    pub(super) fn schedule_next_domain_fault(&mut self, i: usize, now: SimTime) {
        let drt = &mut self.domains_rt[i];
        let ev = drt.process.next_after(&mut drt.rng, now);
        drt.pending = Some(ev.kind);
        self.queue.push(ev.at, Ev::DomainFault { domain: i });
    }

    pub(super) fn handle_fault(&mut self, d: usize, now: SimTime) -> Result<(), EngineError> {
        if !self.avail.is_up(DeviceId(d)) {
            return Ok(()); // The device already failed permanently.
        }
        let kind = self.devs[d]
            .pending_kind
            .take()
            .expect("fault event without a drawn mode");
        match kind {
            FailureKind::Transient => {
                // Idle devices shrug transient faults off.
                if let Some(ri) = self.devs[d].running {
                    if self.replicas[ri].state == RState::Running {
                        self.counters.transient += 1;
                        self.abort_attempt(ri, now)?;
                    }
                }
                self.schedule_next_fault(d, now);
            }
            FailureKind::Degraded => {
                self.counters.degraded += 1;
                let factor = self.res.failures.degraded_slowdown;
                self.avail.set_degraded(DeviceId(d), factor);
                if let Some(ri) = self.devs[d].running {
                    if self.replicas[ri].state == RState::Running {
                        self.reproject(ri, now, factor);
                    }
                }
                self.devs[d].repair_seq += 1;
                let seq = self.devs[d].repair_seq;
                self.queue.push(
                    now + SimDuration::from_secs(self.res.failures.degraded_repair_secs),
                    Ev::Repair { device: d, seq },
                );
                self.schedule_next_fault(d, now);
            }
            FailureKind::Permanent => {
                self.counters.permanent += 1;
                self.handle_device_loss(d, now)?;
            }
        }
        Ok(())
    }

    pub(super) fn handle_repair(&mut self, d: usize, seq: u32, now: SimTime) {
        if self.devs[d].repair_seq != seq || !self.avail.is_up(DeviceId(d)) {
            return; // Superseded by a newer degradation, or device lost.
        }
        self.avail.repair(DeviceId(d));
        if let Some(ri) = self.devs[d].running {
            if self.replicas[ri].state == RState::Running {
                self.reproject(ri, now, 1.0);
            }
        }
    }

    pub(super) fn handle_link_fault(&mut self, l: usize, now: SimTime) {
        let link = LinkId(l);
        if self.links_avail.down_until(link).is_some() {
            // Already out. A permanently severed link ends its trace; a
            // timed outage just waits for the next draw.
            if !matches!(self.links_avail.down_until(link), Some(None)) {
                self.schedule_next_link_fault(l, now);
            }
            return;
        }
        let kind = self.link_rt[l]
            .pending
            .take()
            .expect("link fault event without a drawn mode");
        let lf = self
            .res
            .link_faults
            .as_ref()
            .expect("link fault event without a model");
        self.counters.link_faults += 1;
        self.link_rt[l].repair_seq += 1;
        let seq = self.link_rt[l].repair_seq;
        match kind {
            LinkFailureKind::Degraded => {
                self.links_avail.set_degraded(link, lf.degraded_factor);
                self.queue.push(
                    now + SimDuration::from_secs(lf.degraded_repair_secs),
                    Ev::LinkRepair { link: l, seq },
                );
            }
            LinkFailureKind::Outage => {
                let until = now + SimDuration::from_secs(lf.outage_secs);
                self.links_avail.set_down(link, Some(until));
                self.queue.push(until, Ev::LinkRepair { link: l, seq });
            }
        }
        self.schedule_next_link_fault(l, now);
    }

    pub(super) fn handle_link_repair(&mut self, l: usize, seq: u32) {
        if self.link_rt[l].repair_seq != seq {
            return; // Superseded by a newer fault or domain outage.
        }
        if matches!(self.links_avail.down_until(LinkId(l)), Some(None)) {
            return; // Permanent losses stay down.
        }
        self.links_avail.repair(LinkId(l));
    }

    /// Takes every member link of domain `i` down until `now +
    /// outage`, superseding pending repairs. Links that are already
    /// down — permanently severed or mid-outage — are left alone: an
    /// outage runs its configured course from its onset, it is not
    /// extended by later strikes.
    fn domain_link_outage(&mut self, i: usize, now: SimTime) {
        let until = now + self.domains_rt[i].outage;
        let links = self.domains_rt[i].link_ids.clone();
        for link in links {
            if self.links_avail.down_until(link).is_some() {
                continue;
            }
            self.links_avail.set_down(link, Some(until));
            self.link_rt[link.0].repair_seq += 1;
            let seq = self.link_rt[link.0].repair_seq;
            self.queue.push(until, Ev::LinkRepair { link: link.0, seq });
        }
    }

    pub(super) fn handle_domain_fault(
        &mut self,
        i: usize,
        now: SimTime,
    ) -> Result<(), EngineError> {
        // A fully dead domain (every member device and link permanently
        // gone) generates no further events, bounding the event stream.
        let any_live = self.domains_rt[i]
            .device_ids
            .iter()
            .any(|&d| self.avail.is_up(DeviceId(d)))
            || self.domains_rt[i]
                .link_ids
                .iter()
                .any(|&l| !matches!(self.links_avail.down_until(l), Some(None)));
        if !any_live {
            return Ok(());
        }
        let kind = self.domains_rt[i]
            .pending
            .take()
            .expect("domain fault event without a drawn mode");
        self.counters.domain_events += 1;
        let member_devs = self.domains_rt[i].device_ids.clone();
        match kind {
            FailureKind::Transient => {
                for &d in &member_devs {
                    if !self.avail.is_up(DeviceId(d)) {
                        continue;
                    }
                    if let Some(ri) = self.devs[d].running {
                        if self.replicas[ri].state == RState::Running {
                            self.counters.transient += 1;
                            self.abort_attempt(ri, now)?;
                        }
                    }
                }
                self.domain_link_outage(i, now);
                self.schedule_next_domain_fault(i, now);
            }
            FailureKind::Degraded => {
                let factor = self.res.failures.degraded_slowdown;
                let repair = self.res.failures.degraded_repair_secs;
                for &d in &member_devs {
                    if !self.avail.is_up(DeviceId(d)) {
                        continue;
                    }
                    self.counters.degraded += 1;
                    self.avail.set_degraded(DeviceId(d), factor);
                    if let Some(ri) = self.devs[d].running {
                        if self.replicas[ri].state == RState::Running {
                            self.reproject(ri, now, factor);
                        }
                    }
                    self.devs[d].repair_seq += 1;
                    let seq = self.devs[d].repair_seq;
                    self.queue.push(
                        now + SimDuration::from_secs(repair),
                        Ev::Repair { device: d, seq },
                    );
                }
                self.domain_link_outage(i, now);
                self.schedule_next_domain_fault(i, now);
            }
            FailureKind::Permanent => {
                // Sever member links first so recovery placement sees the
                // partition, then fail the member devices as one batch
                // (one data-loss pass, one recovery pass).
                let links = self.domains_rt[i].link_ids.clone();
                for link in links {
                    self.links_avail.set_down(link, None);
                    self.link_rt[link.0].repair_seq += 1;
                }
                let dead: Vec<usize> = member_devs
                    .iter()
                    .copied()
                    .filter(|&d| self.avail.is_up(DeviceId(d)))
                    .collect();
                self.counters.permanent += dead.len() as u32;
                self.fail_devices(&dead, now)?;
                // The domain burnt itself out: no further events.
            }
        }
        Ok(())
    }

    /// Aborts the running attempt of `ri` after a transient fault:
    /// either queues a retry (device stays held through the restart
    /// overhead and backoff) or fails the replica for good.
    fn abort_attempt(&mut self, ri: usize, now: SimTime) -> Result<(), EngineError> {
        self.update_progress(ri, now);
        let done_eff = self.replicas[ri].attempt.done_eff;
        let preserved = self.preserved_work(done_eff);
        self.counters.wasted += (done_eff - preserved).as_secs();
        let max_retries = self.res.policy.max_retries();
        let r = &mut self.replicas[ri];
        r.remaining_work = r.remaining_work - preserved;
        if r.retries >= max_retries {
            r.state = RState::Failed;
            r.gen += 1;
            let task = r.task;
            let attempts = r.retries + 1;
            let d = r.device.0;
            self.devs[d].running = None;
            self.devs[d].pos += 1;
            if !self.task_has_live_replica(task) {
                return Err(EngineError::RetriesExhausted { task, attempts });
            }
            return Ok(());
        }
        r.retries += 1;
        let retry = r.retries;
        r.state = RState::WaitingRestart;
        r.gen += 1;
        let gen = r.gen;
        self.counters.retries += 1;
        let delay =
            self.res.failures.restart_overhead_secs + self.res.policy.backoff_delay_secs(retry);
        self.counters.recovery += delay;
        self.queue.push(
            now + SimDuration::from_secs(delay),
            Ev::Resume { replica: ri, gen },
        );
        Ok(())
    }

    /// Re-schedules the running attempt's Finish under a new slowdown.
    fn reproject(&mut self, ri: usize, now: SimTime, new_slowdown: f64) {
        self.update_progress(ri, now);
        let r = &mut self.replicas[ri];
        r.attempt.slowdown = new_slowdown;
        r.gen += 1;
        let gen = r.gen;
        let left = r.attempt.total_eff - r.attempt.done_eff;
        self.queue.push(
            r.attempt.last_update + left * new_slowdown,
            Ev::Finish { replica: ri, gen },
        );
    }
}
