//! A real multi-threaded executor — the "async runtime" reality check.
//!
//! The simulated [`Engine`](crate::Engine) asserts what *should* happen;
//! this module makes it happen on OS threads: one worker per modeled
//! device, crossbeam-style condvar synchronization for data
//! dependencies, and wall-clock sleeps standing in for kernel execution
//! and data transfers (scaled by a configurable time factor so a
//! 1000-second simulated run finishes in a second of wall time).
//!
//! Experiment F12 executes the same plan in both worlds and checks the
//! wall-clock makespan matches the simulated one within scheduler
//! jitter — evidence that the orchestration logic, not just the model,
//! is sound.
//!
//! This is the wall-clock hook set over the execution core
//! ([`crate::exec`]): real threads replace the simulated step loop, but
//! the realized schedule funnels through the core's single copy of
//! overlap repair and schedule validation, so a threaded run is held to
//! the same device-exclusivity and precedence invariants as a simulated
//! one.

use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use helios_platform::Platform;
use helios_sched::{Placement, Schedule};
use helios_sim::{SimDuration, SimTime};
use helios_workflow::{TaskId, Workflow};

use crate::error::EngineError;
use crate::exec::{repair_device_overlaps, validate_realized};

/// Outcome of a threaded execution.
#[derive(Debug, Clone)]
pub struct ThreadedReport {
    /// Realized placements, de-scaled back into simulated seconds.
    pub schedule: Schedule,
    /// Total wall-clock time of the run.
    pub wall: Duration,
}

impl ThreadedReport {
    /// The realized makespan in simulated seconds.
    #[must_use]
    pub fn makespan(&self) -> SimDuration {
        self.schedule.makespan()
    }
}

/// Executes plans on real threads with scaled-down durations.
#[derive(Debug, Clone, Copy)]
pub struct ThreadedExecutor {
    time_scale: f64,
}

impl ThreadedExecutor {
    /// Creates an executor where one simulated second lasts
    /// `time_scale` wall seconds (e.g. `1e-3` compresses 1000× ).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] for a non-positive scale.
    pub fn new(time_scale: f64) -> Result<ThreadedExecutor, EngineError> {
        if !(time_scale.is_finite() && time_scale > 0.0) {
            return Err(EngineError::Config(format!(
                "time_scale must be positive, got {time_scale}"
            )));
        }
        Ok(ThreadedExecutor { time_scale })
    }

    /// Executes `plan` with one worker thread per device.
    ///
    /// Each worker processes its device's tasks in plan order: it blocks
    /// until every predecessor has completed, sleeps out the remaining
    /// (scaled) transfer time, sleeps the (scaled) execution time, then
    /// publishes its completion instant.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Executor`] if a worker thread panics, or
    /// propagates model errors raised while precomputing durations.
    pub fn execute_plan(
        &self,
        platform: &Platform,
        wf: &Workflow,
        plan: &Schedule,
    ) -> Result<ThreadedReport, EngineError> {
        let n = wf.num_tasks();
        // Precompute per-task wall durations and per-edge wall transfer
        // times so workers never touch the models.
        let mut exec_wall = vec![Duration::ZERO; n];
        for p in plan.placements() {
            let device = platform.device(p.device)?;
            let exec = device.execution_time(wf.task(p.task)?.cost(), p.level)?;
            exec_wall[p.task.0] = Duration::from_secs_f64(exec.as_secs() * self.time_scale);
        }
        let mut transfer_wall = vec![Duration::ZERO; wf.num_edges()];
        for (i, e) in wf.edges().iter().enumerate() {
            let from = plan.placement(e.src)?.device;
            let to = plan.placement(e.dst)?.device;
            let t = platform.transfer_time(e.bytes, from, to)?;
            transfer_wall[i] = Duration::from_secs_f64(t.as_secs() * self.time_scale);
        }

        // completion[t] = Some(instant the task finished).
        #[allow(clippy::type_complexity)]
        let state: Arc<(Mutex<Vec<Option<Instant>>>, Condvar)> =
            Arc::new((Mutex::new(vec![None; n]), Condvar::new()));

        let queues = plan.tasks_by_device();
        let epoch = Instant::now();
        let mut handles = Vec::new();
        for (_, tasks) in queues {
            let state = Arc::clone(&state);
            // Per-worker copies of everything it reads.
            let task_list: Vec<TaskId> = tasks;
            let preds: Vec<Vec<(usize, TaskId)>> = task_list
                .iter()
                .map(|&t| {
                    wf.predecessors(t)
                        .iter()
                        .map(|&e| (e.0, wf.edge(e).src))
                        .collect()
                })
                .collect();
            let exec: Vec<Duration> = task_list.iter().map(|&t| exec_wall[t.0]).collect();
            let transfer = transfer_wall.clone();
            handles.push(std::thread::spawn(move || {
                let (lock, cvar) = &*state;
                for (i, &task) in task_list.iter().enumerate() {
                    // Wait for all predecessors and compute the latest
                    // data-arrival instant.
                    let mut data_at = epoch;
                    {
                        let mut done = lock.lock();
                        for &(edge_idx, pred) in &preds[i] {
                            loop {
                                if let Some(at) = done[pred.0] {
                                    let arrival = at + transfer[edge_idx];
                                    if arrival > data_at {
                                        data_at = arrival;
                                    }
                                    break;
                                }
                                cvar.wait(&mut done);
                            }
                        }
                    }
                    // Sleep out any remaining transfer time, then execute.
                    let now = Instant::now();
                    if data_at > now {
                        std::thread::sleep(data_at - now);
                    }
                    std::thread::sleep(exec[i]);
                    let mut done = lock.lock();
                    done[task.0] = Some(Instant::now());
                    cvar.notify_all();
                }
            }));
        }
        for h in handles {
            h.join()
                .map_err(|_| EngineError::Executor("worker thread panicked".into()))?;
        }
        let wall = epoch.elapsed();

        // De-scale completions into simulated time; starts are derived
        // by subtracting the task's own wall duration.
        let done = state.0.lock();
        let mut placements = Vec::with_capacity(n);
        for p in plan.placements() {
            let finished_at = done[p.task.0]
                .ok_or_else(|| EngineError::Executor(format!("task {} never ran", p.task)))?;
            let finish_s = (finished_at - epoch).as_secs_f64() / self.time_scale;
            let dur_s = exec_wall[p.task.0].as_secs_f64() / self.time_scale;
            placements.push(Placement {
                task: p.task,
                device: p.device,
                level: p.level,
                start: SimTime::from_secs((finish_s - dur_s).max(0.0)),
                finish: SimTime::from_secs(finish_s),
            });
        }
        drop(done);
        repair_device_overlaps(&mut placements);
        let schedule = Schedule::new(placements)?;
        validate_realized(&schedule, wf)?;
        Ok(ThreadedReport { schedule, wall })
    }
}

#[cfg(test)]
#[path = "executor_tests.rs"]
mod tests;
