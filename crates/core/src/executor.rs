//! A real multi-threaded executor — the "async runtime" reality check.
//!
//! The simulated [`Engine`](crate::Engine) asserts what *should* happen;
//! this module makes it happen on OS threads: one worker per modeled
//! device, crossbeam-style condvar synchronization for data
//! dependencies, and wall-clock sleeps standing in for kernel execution
//! and data transfers (scaled by a configurable time factor so a
//! 1000-second simulated run finishes in a second of wall time).
//!
//! Experiment F12 executes the same plan in both worlds and checks the
//! wall-clock makespan matches the simulated one within scheduler
//! jitter — evidence that the orchestration logic, not just the model,
//! is sound.

use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use helios_platform::{DeviceId, Platform};
use helios_sched::{Placement, Schedule};
use helios_sim::{SimDuration, SimTime};
use helios_workflow::{TaskId, Workflow};

use crate::error::EngineError;

/// Outcome of a threaded execution.
#[derive(Debug, Clone)]
pub struct ThreadedReport {
    /// Realized placements, de-scaled back into simulated seconds.
    pub schedule: Schedule,
    /// Total wall-clock time of the run.
    pub wall: Duration,
}

impl ThreadedReport {
    /// The realized makespan in simulated seconds.
    #[must_use]
    pub fn makespan(&self) -> SimDuration {
        self.schedule.makespan()
    }
}

/// Executes plans on real threads with scaled-down durations.
#[derive(Debug, Clone, Copy)]
pub struct ThreadedExecutor {
    time_scale: f64,
}

impl ThreadedExecutor {
    /// Creates an executor where one simulated second lasts
    /// `time_scale` wall seconds (e.g. `1e-3` compresses 1000× ).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] for a non-positive scale.
    pub fn new(time_scale: f64) -> Result<ThreadedExecutor, EngineError> {
        if !(time_scale.is_finite() && time_scale > 0.0) {
            return Err(EngineError::Config(format!(
                "time_scale must be positive, got {time_scale}"
            )));
        }
        Ok(ThreadedExecutor { time_scale })
    }

    /// Executes `plan` with one worker thread per device.
    ///
    /// Each worker processes its device's tasks in plan order: it blocks
    /// until every predecessor has completed, sleeps out the remaining
    /// (scaled) transfer time, sleeps the (scaled) execution time, then
    /// publishes its completion instant.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Executor`] if a worker thread panics, or
    /// propagates model errors raised while precomputing durations.
    pub fn execute_plan(
        &self,
        platform: &Platform,
        wf: &Workflow,
        plan: &Schedule,
    ) -> Result<ThreadedReport, EngineError> {
        let n = wf.num_tasks();
        // Precompute per-task wall durations and per-edge wall transfer
        // times so workers never touch the models.
        let mut exec_wall = vec![Duration::ZERO; n];
        let mut device_of = vec![0usize; n];
        for p in plan.placements() {
            let device = platform.device(p.device)?;
            let exec = device.execution_time(wf.task(p.task)?.cost(), p.level)?;
            exec_wall[p.task.0] = Duration::from_secs_f64(exec.as_secs() * self.time_scale);
            device_of[p.task.0] = p.device.0;
        }
        let mut transfer_wall = vec![Duration::ZERO; wf.num_edges()];
        for (i, e) in wf.edges().iter().enumerate() {
            let from = plan.placement(e.src)?.device;
            let to = plan.placement(e.dst)?.device;
            let t = platform.transfer_time(e.bytes, from, to)?;
            transfer_wall[i] = Duration::from_secs_f64(t.as_secs() * self.time_scale);
        }

        // completion[t] = Some(instant the task finished).
        #[allow(clippy::type_complexity)]
        let state: Arc<(Mutex<Vec<Option<Instant>>>, Condvar)> =
            Arc::new((Mutex::new(vec![None; n]), Condvar::new()));

        let queues = plan.tasks_by_device();
        let epoch = Instant::now();
        let mut handles = Vec::new();
        for (_, tasks) in queues {
            let state = Arc::clone(&state);
            // Per-worker copies of everything it reads.
            let task_list: Vec<TaskId> = tasks;
            let preds: Vec<Vec<(usize, TaskId)>> = task_list
                .iter()
                .map(|&t| {
                    wf.predecessors(t)
                        .iter()
                        .map(|&e| (e.0, wf.edge(e).src))
                        .collect()
                })
                .collect();
            let exec: Vec<Duration> = task_list.iter().map(|&t| exec_wall[t.0]).collect();
            let transfer = transfer_wall.clone();
            handles.push(std::thread::spawn(move || {
                let (lock, cvar) = &*state;
                for (i, &task) in task_list.iter().enumerate() {
                    // Wait for all predecessors and compute the latest
                    // data-arrival instant.
                    let mut data_at = epoch;
                    {
                        let mut done = lock.lock();
                        for &(edge_idx, pred) in &preds[i] {
                            loop {
                                if let Some(at) = done[pred.0] {
                                    let arrival = at + transfer[edge_idx];
                                    if arrival > data_at {
                                        data_at = arrival;
                                    }
                                    break;
                                }
                                cvar.wait(&mut done);
                            }
                        }
                    }
                    // Sleep out any remaining transfer time, then execute.
                    let now = Instant::now();
                    if data_at > now {
                        std::thread::sleep(data_at - now);
                    }
                    std::thread::sleep(exec[i]);
                    let mut done = lock.lock();
                    done[task.0] = Some(Instant::now());
                    cvar.notify_all();
                }
            }));
        }
        for h in handles {
            h.join()
                .map_err(|_| EngineError::Executor("worker thread panicked".into()))?;
        }
        let wall = epoch.elapsed();

        // De-scale completions into simulated time; starts are derived
        // by subtracting the task's own wall duration.
        let done = state.0.lock();
        let mut placements = Vec::with_capacity(n);
        for p in plan.placements() {
            let finished_at = done[p.task.0]
                .ok_or_else(|| EngineError::Executor(format!("task {} never ran", p.task)))?;
            let finish_s = (finished_at - epoch).as_secs_f64() / self.time_scale;
            let dur_s = exec_wall[p.task.0].as_secs_f64() / self.time_scale;
            placements.push(Placement {
                task: p.task,
                device: p.device,
                level: p.level,
                start: SimTime::from_secs((finish_s - dur_s).max(0.0)),
                finish: SimTime::from_secs(finish_s),
            });
        }
        drop(done);
        let _ = device_of;
        repair_device_overlaps(&mut placements);
        let schedule = Schedule::new(placements)?;
        validate_realized(&schedule, wf)?;
        Ok(ThreadedReport { schedule, wall })
    }
}

/// Repairs derived starts that land inside the previous placement on
/// the same device.
///
/// A worker runs its device's tasks strictly in sequence, so observed
/// *finish* instants are monotone per device — but the derived start
/// `finish − duration` is not: nanosecond rounding of the scaled sleeps
/// and de-scaling back through the time factor can push a start a hair
/// before its predecessor's finish, which [`Schedule`] consumers treat
/// as two tasks on one device at once. The repair walks each device's
/// placements in finish order and clamps every start up to the previous
/// finish (never past the task's own finish), leaving observed finishes
/// untouched.
fn repair_device_overlaps(placements: &mut [Placement]) {
    let mut order: Vec<usize> = (0..placements.len()).collect();
    order.sort_by(|&a, &b| {
        placements[a]
            .device
            .cmp(&placements[b].device)
            .then(placements[a].finish.cmp(&placements[b].finish))
            .then(placements[a].task.cmp(&placements[b].task))
    });
    let mut cursor: Option<(DeviceId, SimTime)> = None;
    for &i in &order {
        let prev = match cursor {
            Some((dev, finish)) if dev == placements[i].device => finish,
            _ => SimTime::ZERO,
        };
        let p = &mut placements[i];
        if p.start < prev {
            // `prev <= p.finish` holds for worker-produced schedules;
            // the min keeps the repair total on arbitrary input.
            p.start = prev.min(p.finish);
        }
        cursor = Some((p.device, p.finish));
    }
}

/// Checks the invariants a realized wall-clock schedule must satisfy:
/// every task placed, no two placements overlapping on one device, and
/// every task starting at or after each predecessor's finish.
///
/// This is deliberately weaker than [`Schedule::validate`], which also
/// enforces *modeled* durations and transfer times — constraints a
/// schedule realized under OS jitter meets only approximately.
fn validate_realized(schedule: &Schedule, wf: &Workflow) -> Result<(), EngineError> {
    for i in 0..wf.num_tasks() {
        schedule.placement(TaskId(i))?;
    }
    let tol = 1e-6 * (1.0 + schedule.makespan().as_secs());
    for (dev, tasks) in schedule.tasks_by_device() {
        let mut prev: Option<Placement> = None;
        for &t in &tasks {
            let p = *schedule.placement(t)?;
            if let Some(q) = prev {
                if p.start.as_secs() + tol < q.finish.as_secs() {
                    return Err(EngineError::Executor(format!(
                        "realized schedule overlaps on device {dev}: {} [{:.9}, {:.9}] \
                         vs {} finishing {:.9}",
                        p.task,
                        p.start.as_secs(),
                        p.finish.as_secs(),
                        q.task,
                        q.finish.as_secs()
                    )));
                }
            }
            prev = Some(p);
        }
    }
    for p in schedule.placements() {
        for &e in wf.predecessors(p.task) {
            let pred = schedule.placement(wf.edge(e).src)?;
            if pred.finish.as_secs() > p.start.as_secs() + tol {
                return Err(EngineError::Executor(format!(
                    "realized schedule breaks precedence: {} starts {:.9} before \
                     predecessor {} finishes {:.9}",
                    p.task,
                    p.start.as_secs(),
                    pred.task,
                    pred.finish.as_secs()
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Engine, EngineConfig};
    use helios_platform::presets;
    use helios_sched::{HeftScheduler, Scheduler};
    use helios_workflow::generators::montage;

    #[test]
    fn threaded_matches_simulated_makespan() {
        let p = presets::workstation();
        let wf = montage(30, 1).unwrap();
        let plan = HeftScheduler::default().schedule(&wf, &p).unwrap();
        let simulated = Engine::new(EngineConfig::default())
            .execute_plan(&p, &wf, &plan)
            .unwrap();
        // Scale so the whole run takes a few hundred ms of wall time.
        let scale = 0.25 / simulated.makespan().as_secs();
        let sim = simulated.makespan().as_secs();
        // Wall-clock accuracy depends on how loaded the host is (other
        // test binaries share the cores), so allow a few attempts
        // before declaring the executor itself off.
        let mut threaded = None;
        for attempt in 0..3 {
            let run = ThreadedExecutor::new(scale)
                .unwrap()
                .execute_plan(&p, &wf, &plan)
                .unwrap();
            let wall = run.makespan().as_secs();
            let err = (wall - sim).abs() / sim;
            if err < 0.35 {
                threaded = Some(run);
                break;
            }
            assert!(
                attempt < 2,
                "threaded {wall} vs simulated {sim} ({:.1}% off)",
                err * 100.0
            );
        }
        let threaded = threaded.unwrap();
        // Precedence holds in the realized wall-clock schedule.
        for pl in threaded.schedule.placements() {
            for &e in wf.predecessors(pl.task) {
                let edge = wf.edge(e);
                let pred = threaded.schedule.placement(edge.src).unwrap();
                assert!(pred.finish.as_secs() <= pl.finish.as_secs() + 1e-9);
            }
        }
    }

    #[test]
    fn invalid_scale_rejected() {
        assert!(ThreadedExecutor::new(0.0).is_err());
        assert!(ThreadedExecutor::new(f64::NAN).is_err());
    }

    fn place(task: usize, dev: usize, start: f64, finish: f64) -> Placement {
        Placement {
            task: TaskId(task),
            device: DeviceId(dev),
            level: helios_platform::DvfsLevel(2),
            start: SimTime::from_secs(start),
            finish: SimTime::from_secs(finish),
        }
    }

    #[test]
    fn repair_clamps_overlapping_starts_per_device() {
        // Device 0: task 1's derived start lands inside task 0; task 2 is
        // clean. Device 1 is untouched.
        let mut placements = vec![
            place(0, 0, 0.0, 10.0),
            place(1, 0, 9.9, 20.0),
            place(2, 0, 20.0, 30.0),
            place(3, 1, 0.0, 5.0),
        ];
        repair_device_overlaps(&mut placements);
        assert_eq!(placements[1].start, SimTime::from_secs(10.0));
        assert_eq!(placements[1].finish, SimTime::from_secs(20.0));
        assert_eq!(placements[0].start, SimTime::from_secs(0.0));
        assert_eq!(placements[2].start, SimTime::from_secs(20.0));
        assert_eq!(placements[3].start, SimTime::from_secs(0.0));
    }

    #[test]
    fn repair_never_moves_a_start_past_its_finish() {
        let mut placements = vec![place(0, 0, 0.0, 10.0), place(1, 0, 2.0, 4.0)];
        // Malformed input (finishes not monotone): the repair must stay
        // total and keep start <= finish.
        repair_device_overlaps(&mut placements);
        for p in &placements {
            assert!(p.start <= p.finish, "{p:?}");
        }
    }

    #[test]
    fn realized_schedule_has_no_device_overlaps() {
        let p = presets::workstation();
        let wf = montage(40, 7).unwrap();
        let plan = HeftScheduler::default().schedule(&wf, &p).unwrap();
        let scale = 0.15 / plan.makespan().as_secs();
        let threaded = ThreadedExecutor::new(scale)
            .unwrap()
            .execute_plan(&p, &wf, &plan)
            .unwrap();
        for (_, tasks) in threaded.schedule.tasks_by_device() {
            for pair in tasks.windows(2) {
                let a = threaded.schedule.placement(pair[0]).unwrap();
                let b = threaded.schedule.placement(pair[1]).unwrap();
                assert!(
                    b.start >= a.finish,
                    "device overlap after repair: {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn validate_realized_rejects_bad_schedules() {
        let wf = montage(30, 1).unwrap();
        // Overlap on one device.
        let mut placements: Vec<Placement> = (0..wf.num_tasks())
            .map(|i| place(i, 0, i as f64, i as f64 + 1.0))
            .collect();
        placements[5].start = SimTime::from_secs(4.2);
        let s = Schedule::new(placements).unwrap();
        assert!(matches!(
            validate_realized(&s, &wf),
            Err(EngineError::Executor(_))
        ));
        // Missing task.
        let s = Schedule::new(vec![place(0, 0, 0.0, 1.0)]).unwrap();
        assert!(validate_realized(&s, &wf).is_err());
    }
}
