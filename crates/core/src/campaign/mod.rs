//! Parallel campaign execution: many independent simulations at once.
//!
//! A *campaign* is a grid of independent cells — ensemble members,
//! parameter-sweep points, seed replicates — where every cell is a
//! self-contained deterministic simulation. Cells share no mutable
//! state: each derives its own RNG stream from the campaign seed (see
//! [`cell_rng`]), so the result of a cell depends only on its input and
//! index, never on scheduling order.
//!
//! [`CampaignEngine`] exploits that: it runs cells on a pool of scoped
//! OS threads pulling work from an atomic counter, stores each result
//! in its input-indexed slot, and assembles the output vector in input
//! order. The aggregated output is therefore **bit-identical** to the
//! sequential path (`jobs = 1`) for any worker count — parallelism
//! changes wall-clock time, nothing else. Errors are deterministic too:
//! the error reported is always the one the sequential path would have
//! hit first (lowest cell index).
//!
//! The engine uses `std::thread::scope` rather than a work-stealing
//! runtime: campaign cells are coarse (whole simulations, milliseconds
//! to seconds each), so a shared counter loses nothing to stealing and
//! keeps the crate dependency-free.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use helios_sim::SimRng;

pub mod journal;
pub mod spec;
pub mod sweep;

/// Typed campaign-layer errors: everything a user-supplied spec, shard
/// geometry, or merge/resume input can get wrong.
///
/// Each variant carries an actionable message naming the offending
/// input; the categories let callers (the CLI, tests) distinguish "fix
/// your JSON" from "these shards do not belong together".
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignError {
    /// The spec file is not valid JSON or fails to deserialize.
    MalformedSpec(String),
    /// The spec deserialized but a field value is illegal.
    InvalidSpec {
        /// The spec name, if it got far enough to have one.
        spec: String,
        /// What is wrong and what the legal values are.
        detail: String,
    },
    /// The shard geometry is unusable (zero count, index out of range).
    InvalidShard(String),
    /// A resume checkpoint disagrees with the spec being resumed.
    ResumeMismatch(String),
    /// A resume artifact (JSON report or cell journal) is torn or
    /// corrupt: a crash interrupted a write and left bytes that cannot
    /// be trusted past `offset`.
    CorruptResume {
        /// Path of the damaged file.
        file: String,
        /// Byte offset where the valid prefix ends.
        offset: u64,
        /// What is wrong and how to repair it (usually: run
        /// `helios campaign recover FILE`).
        detail: String,
    },
    /// Shard reports cannot be merged (different campaigns, overlaps,
    /// missing cells).
    MergeConflict(String),
    /// A `helios query` expression does not parse or plan.
    InvalidQuery {
        /// The offending token (empty when the expression ended early).
        token: String,
        /// What is wrong and what the legal forms are.
        detail: String,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::MalformedSpec(msg) => {
                write!(f, "malformed campaign spec: {msg}")
            }
            CampaignError::InvalidSpec { spec, detail } => {
                write!(f, "spec {spec:?}: {detail}")
            }
            CampaignError::InvalidShard(msg) => write!(f, "{msg}"),
            CampaignError::ResumeMismatch(msg) => write!(f, "{msg}"),
            CampaignError::CorruptResume {
                file,
                offset,
                detail,
            } => {
                write!(f, "corrupt resume file {file:?} at byte {offset}: {detail}")
            }
            CampaignError::MergeConflict(msg) => write!(f, "{msg}"),
            CampaignError::InvalidQuery { token, detail } => {
                write!(f, "invalid query at {token:?}: {detail}")
            }
        }
    }
}

impl std::error::Error for CampaignError {}

pub use journal::{JournalHeader, JournalWriter, JsonSalvage, Salvage};
pub use spec::{
    CampaignSpec, DvfsKnob, ElasticityKnob, FailureDomainKnob, FaultKnob, InterconnectFaultKnob,
    PolicyKnob, ResilienceKnob, SchedulerParamsKnob, SeedRange, SweepCell,
};
pub use sweep::{
    merge_shards, CellResult, JournalOptions, JournalRun, ResumeOutcome, ShardReport, ShardSpec,
    StoreOptions, StoreRun, SummaryRow, SweepDriver, SweepReport,
};

/// Runs the independent cells of a campaign across worker threads.
///
/// # Examples
///
/// ```
/// use helios_core::CampaignEngine;
///
/// let engine = CampaignEngine::new(4);
/// let squares = engine
///     .run(&[1u64, 2, 3, 4, 5], |_idx, &x| Ok::<u64, String>(x * x))
///     .unwrap();
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct CampaignEngine {
    jobs: usize,
}

impl Default for CampaignEngine {
    /// Sequential execution (`jobs = 1`).
    fn default() -> CampaignEngine {
        CampaignEngine { jobs: 1 }
    }
}

impl CampaignEngine {
    /// Creates an engine running up to `jobs` cells concurrently.
    ///
    /// `jobs = 0` means "one per available hardware thread"
    /// (`std::thread::available_parallelism`, falling back to 1 when
    /// that is unknown). `jobs = 1` is the sequential reference path.
    #[must_use]
    pub fn new(jobs: usize) -> CampaignEngine {
        CampaignEngine { jobs }
    }

    /// The configured worker count (0 = auto).
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The worker count actually used for `cells` cells: auto-detection
    /// resolved and clamped to the number of cells.
    #[must_use]
    pub fn effective_jobs(&self, cells: usize) -> usize {
        let requested = if self.jobs == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            self.jobs
        };
        requested.min(cells).max(1)
    }

    /// Runs `f` over every input cell and returns the results in input
    /// order.
    ///
    /// `f(index, &input)` must be a pure function of its arguments (use
    /// [`cell_rng`] for per-cell randomness); the engine then guarantees
    /// the returned vector — and any error — is identical for every
    /// `jobs` setting.
    ///
    /// # Errors
    ///
    /// Returns the error of the lowest-indexed failing cell — exactly
    /// the error the sequential path reports. Workers stop claiming new
    /// cells once a failure is observed.
    pub fn run<T, R, E, F>(&self, inputs: &[T], f: F) -> Result<Vec<R>, E>
    where
        T: Sync,
        R: Send,
        E: Send,
        F: Fn(usize, &T) -> Result<R, E> + Sync,
    {
        let (out, drained) = self.run_partial(inputs, None, f)?;
        debug_assert!(!drained, "no cancel flag, so nothing can drain");
        Ok(out)
    }

    /// Like [`run`](CampaignEngine::run), but drains cooperatively: once
    /// `cancel` reads `true`, workers finish the cells they already
    /// claimed and stop claiming new ones. Returns the completed prefix
    /// of results plus whether the run was cut short.
    ///
    /// Because work is claimed through a shared counter, the claimed
    /// indices always form a contiguous prefix of `inputs` — a drained
    /// run returns results for cells `0..k` exactly, never a gappy
    /// subset, which is what makes the journal's resume math trivial.
    ///
    /// # Errors
    ///
    /// As [`run`](CampaignEngine::run): the lowest-indexed failure.
    pub fn run_partial<T, R, E, F>(
        &self,
        inputs: &[T],
        cancel: Option<&AtomicBool>,
        f: F,
    ) -> Result<(Vec<R>, bool), E>
    where
        T: Sync,
        R: Send,
        E: Send,
        F: Fn(usize, &T) -> Result<R, E> + Sync,
    {
        let draining = || cancel.is_some_and(|c| c.load(Ordering::Relaxed));
        let jobs = self.effective_jobs(inputs.len());
        if jobs <= 1 {
            let mut out = Vec::with_capacity(inputs.len());
            for (i, x) in inputs.iter().enumerate() {
                if draining() {
                    break;
                }
                out.push(f(i, x)?);
            }
            let drained = out.len() < inputs.len();
            return Ok((out, drained));
        }

        // Work is claimed through a shared counter, so claimed indices
        // form a contiguous prefix; every claimed cell stores into its
        // own slot. Unclaimed slots stay `None` and can only trail an
        // error or a drain, never precede one.
        let next = AtomicUsize::new(0);
        let failed = AtomicBool::new(false);
        let slots: Mutex<Vec<Option<Result<R, E>>>> =
            Mutex::new((0..inputs.len()).map(|_| None).collect());

        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| loop {
                    if failed.load(Ordering::Relaxed) || draining() {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(input) = inputs.get(i) else { break };
                    let result = f(i, input);
                    if result.is_err() {
                        failed.store(true, Ordering::Relaxed);
                    }
                    slots.lock().expect("no poisoned campaign slot lock")[i] = Some(result);
                });
            }
        });

        let slots = slots.into_inner().expect("no poisoned campaign slot lock");
        let total = slots.len();
        let mut out = Vec::with_capacity(total);
        for slot in slots {
            match slot {
                Some(Ok(r)) => out.push(r),
                Some(Err(e)) => return Err(e),
                // A `None` before the first error can only follow a
                // drain: the claiming scheme forbids skipped indices.
                None => {
                    assert!(cancel.is_some(), "unclaimed cell ahead of the first error");
                    break;
                }
            }
        }
        let drained = out.len() < total;
        Ok((out, drained))
    }
}

/// The deterministic RNG stream for one campaign cell.
///
/// Cells must not share a generator (draws would depend on execution
/// order); instead each forks its own stream from the campaign seed.
/// Stream `cell + 1` is used so cell 0 does not alias the base stream
/// that sequential single-run code paths draw from.
#[must_use]
pub fn cell_rng(campaign_seed: u64, cell: u64) -> SimRng {
    SimRng::seed_from(campaign_seed).fork(cell.wrapping_add(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::ensemble::{EnsembleMember, EnsemblePolicy, EnsembleRunner};
    use helios_platform::presets;
    use helios_sim::SimTime;
    use helios_workflow::generators::montage;

    #[test]
    fn sequential_and_parallel_agree_on_plain_math() {
        let inputs: Vec<u64> = (0..100).collect();
        let f = |i: usize, &x: &u64| Ok::<(u64, u64), String>((i as u64, x * 3));
        let seq = CampaignEngine::new(1).run(&inputs, f).unwrap();
        for jobs in [0, 2, 3, 8, 200] {
            assert_eq!(CampaignEngine::new(jobs).run(&inputs, f).unwrap(), seq);
        }
    }

    #[test]
    fn lowest_index_error_wins() {
        let inputs: Vec<usize> = (0..64).collect();
        let f = |i: usize, _: &usize| {
            if i % 7 == 3 {
                Err(format!("cell {i} failed"))
            } else {
                Ok(i)
            }
        };
        for jobs in [1, 2, 8] {
            let err = CampaignEngine::new(jobs).run(&inputs, f).unwrap_err();
            assert_eq!(err, "cell 3 failed", "jobs = {jobs}");
        }
    }

    #[test]
    fn empty_campaign_is_fine() {
        let out = CampaignEngine::new(4)
            .run(&[] as &[u8], |_, _| Ok::<u8, String>(0))
            .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn effective_jobs_resolves_auto_and_clamps() {
        assert!(CampaignEngine::new(0).effective_jobs(100) >= 1);
        assert_eq!(CampaignEngine::new(8).effective_jobs(3), 3);
        assert_eq!(CampaignEngine::new(2).effective_jobs(100), 2);
        assert_eq!(CampaignEngine::new(0).effective_jobs(0), 1);
        assert_eq!(CampaignEngine::default().jobs(), 1);
    }

    #[test]
    fn cell_rngs_are_independent_and_reproducible() {
        let mut a = cell_rng(42, 0);
        let mut a2 = cell_rng(42, 0);
        let mut b = cell_rng(42, 1);
        let draws_a: Vec<f64> = (0..16).map(|_| a.uniform(0.0, 1.0)).collect();
        let draws_a2: Vec<f64> = (0..16).map(|_| a2.uniform(0.0, 1.0)).collect();
        let draws_b: Vec<f64> = (0..16).map(|_| b.uniform(0.0, 1.0)).collect();
        assert_eq!(draws_a, draws_a2);
        assert_ne!(draws_a, draws_b);
    }

    #[test]
    fn ensemble_cells_are_bit_identical_across_jobs() {
        let platform = presets::workstation();
        let seeds: Vec<u64> = (0..4).collect();
        let run_all = |jobs: usize| {
            CampaignEngine::new(jobs)
                .run(&seeds, |_, &seed| {
                    let members = [
                        EnsembleMember {
                            workflow: montage(40, seed)?,
                            arrival: SimTime::ZERO,
                            priority: 1.0,
                        },
                        EnsembleMember {
                            workflow: montage(40, seed + 100)?,
                            arrival: SimTime::from_secs(0.5),
                            priority: 2.0,
                        },
                    ];
                    let config = EngineConfig {
                        seed,
                        noise_cv: 0.05,
                        ..Default::default()
                    };
                    EnsembleRunner::new(config, EnsemblePolicy::Priority).run(&platform, &members)
                })
                .map(|reports| format!("{reports:?}"))
        };
        let seq = run_all(1).unwrap();
        let par = run_all(4).unwrap();
        assert_eq!(seq, par, "parallel campaign must be byte-identical");
    }
}
