//! Declarative campaign sweep specifications.
//!
//! A [`CampaignSpec`] is the file-level description of an evaluation
//! grid: the cross product of workflow families, platform presets,
//! schedulers and seeds, plus the engine knobs (noise, contention,
//! caching, DVFS policy, fault injection) every cell runs under. Specs
//! are plain JSON loaded through the vendored serde stack, so the same
//! grid can be split across processes or hosts and recombined later —
//! see [`super::sweep`] for the sharded driver.
//!
//! Expansion is deterministic: [`CampaignSpec::expand`] enumerates
//! cells in declaration order (family, then platform, then scheduler,
//! then seed), and every cell carries its global index. Two processes
//! expanding the same spec therefore agree on which simulation cell
//! `i` denotes, which is what makes shard unions bit-identical to the
//! unsharded run.

use serde::{Deserialize, Serialize};

use helios_workflow::generators::WorkflowClass;

use super::CampaignError;
use crate::elastic::{ElasticChurn, ElasticEvent, ElasticEventKind, ElasticityConfig};
use crate::resilience::{
    FailureDomain, FailureModel, LinkFaultModel, RecoveryPolicy, ResilienceConfig,
};
use crate::EngineError;

/// A consecutive seed range: `base, base + 1, …, base + count - 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeedRange {
    /// First seed of the range.
    pub base: u64,
    /// Number of seeds (one replicate per seed).
    pub count: usize,
}

impl SeedRange {
    /// Iterates the seeds of the range.
    pub fn iter(self) -> impl Iterator<Item = u64> {
        (0..self.count as u64).map(move |i| self.base.wrapping_add(i))
    }
}

/// The DVFS operating point every placement of a cell is pinned to.
///
/// `Nominal` keeps whatever levels the scheduler chose; `Powersave`
/// rewrites placements to each device's slowest state, `Performance`
/// to its fastest. The engine re-derives timing from the plan's device
/// order, so rewriting levels is safe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DvfsKnob {
    /// Keep the scheduler's chosen levels.
    #[default]
    Nominal,
    /// Pin every placement to the slowest DVFS state.
    Powersave,
    /// Pin every placement to the fastest DVFS state.
    Performance,
}

impl DvfsKnob {
    /// The spec-file spelling of the knob.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            DvfsKnob::Nominal => "nominal",
            DvfsKnob::Powersave => "powersave",
            DvfsKnob::Performance => "performance",
        }
    }
}

// Hand-written impls: spec files spell the knob in lowercase, while the
// vendored derive would use the exact variant names.
impl Serialize for DvfsKnob {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(self.as_str().to_owned())
    }
}

impl<'de> Deserialize<'de> for DvfsKnob {
    fn from_value(value: &serde::Value) -> Result<DvfsKnob, serde::DeError> {
        match value.as_str() {
            Some("nominal") => Ok(DvfsKnob::Nominal),
            Some("powersave") => Ok(DvfsKnob::Powersave),
            Some("performance") => Ok(DvfsKnob::Performance),
            _ => Err(serde::DeError::new(format!(
                "unknown dvfs knob {value:?} (nominal, powersave, performance)"
            ))),
        }
    }
}

/// Fault-injection knobs of a spec, mirroring
/// [`FaultConfig`](crate::FaultConfig).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultKnob {
    /// Mean time between failures per device, seconds.
    pub mtbf_secs: f64,
    /// Restart overhead added to every retry, seconds.
    #[serde(default)]
    pub restart_overhead_secs: f64,
    /// Retry budget per task.
    #[serde(default)]
    pub max_retries: u32,
}

/// Recovery-policy knob of a spec, mirroring
/// [`RecoveryPolicy`](crate::RecoveryPolicy). Spelled in spec files as
/// an object with a `kind` tag, e.g.
/// `{"kind": "retry-backoff", "base_secs": 0.001, "factor": 2.0,
/// "cap_secs": 0.01, "max_retries": 10}`.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyKnob {
    /// `{"kind": "retry-backoff", ...}` →
    /// [`RecoveryPolicy::RetryBackoff`].
    RetryBackoff {
        /// Backoff before the first retry, seconds (0 = flat retry).
        base_secs: f64,
        /// Multiplicative growth per retry.
        factor: f64,
        /// Upper bound on any single backoff, seconds.
        cap_secs: f64,
        /// Retry budget per task.
        max_retries: u32,
    },
    /// `{"kind": "replicate-k", ...}` → [`RecoveryPolicy::ReplicateK`].
    ReplicateK {
        /// Total copies per task, including the primary.
        replicas: usize,
        /// Per-replica retry budget.
        max_retries: u32,
    },
    /// `{"kind": "checkpoint-restart", ...}` →
    /// [`RecoveryPolicy::CheckpointRestart`].
    CheckpointRestart {
        /// Execution time between snapshots, seconds.
        interval_secs: f64,
        /// Cost of writing one snapshot, seconds.
        overhead_secs: f64,
        /// Retry budget per task.
        max_retries: u32,
    },
    /// `{"kind": "reschedule", ...}` → [`RecoveryPolicy::Reschedule`].
    Reschedule {
        /// Scheduler used for re-planning after a permanent loss.
        scheduler: String,
        /// Re-planning overhead, seconds.
        overhead_secs: f64,
        /// Retry budget per task for transient failures.
        max_retries: u32,
    },
}

impl PolicyKnob {
    /// Maps the knob onto the engine-level recovery policy.
    #[must_use]
    pub fn to_policy(&self) -> RecoveryPolicy {
        match *self {
            PolicyKnob::RetryBackoff {
                base_secs,
                factor,
                cap_secs,
                max_retries,
            } => RecoveryPolicy::RetryBackoff {
                base_secs,
                factor,
                cap_secs,
                max_retries,
            },
            PolicyKnob::ReplicateK {
                replicas,
                max_retries,
            } => RecoveryPolicy::ReplicateK {
                replicas,
                max_retries,
            },
            PolicyKnob::CheckpointRestart {
                interval_secs,
                overhead_secs,
                max_retries,
            } => RecoveryPolicy::CheckpointRestart {
                interval_secs,
                overhead_secs,
                max_retries,
            },
            PolicyKnob::Reschedule {
                ref scheduler,
                overhead_secs,
                max_retries,
            } => RecoveryPolicy::Reschedule {
                scheduler: scheduler.clone(),
                overhead_secs,
                max_retries,
            },
        }
    }
}

// Hand-written impls: the vendored derive has no adjacent/internal
// tagging, and spec files spell policies as kebab-case `kind` tags.
impl Serialize for PolicyKnob {
    fn to_value(&self) -> serde::Value {
        let num = serde::Value::Number;
        let mut obj: Vec<(String, serde::Value)> = vec![(
            "kind".to_owned(),
            serde::Value::String(self.to_policy().name().to_owned()),
        )];
        match *self {
            PolicyKnob::RetryBackoff {
                base_secs,
                factor,
                cap_secs,
                max_retries,
            } => {
                obj.push(("base_secs".to_owned(), num(base_secs)));
                obj.push(("factor".to_owned(), num(factor)));
                obj.push(("cap_secs".to_owned(), num(cap_secs)));
                obj.push(("max_retries".to_owned(), num(f64::from(max_retries))));
            }
            PolicyKnob::ReplicateK {
                replicas,
                max_retries,
            } => {
                obj.push(("replicas".to_owned(), num(replicas as f64)));
                obj.push(("max_retries".to_owned(), num(f64::from(max_retries))));
            }
            PolicyKnob::CheckpointRestart {
                interval_secs,
                overhead_secs,
                max_retries,
            } => {
                obj.push(("interval_secs".to_owned(), num(interval_secs)));
                obj.push(("overhead_secs".to_owned(), num(overhead_secs)));
                obj.push(("max_retries".to_owned(), num(f64::from(max_retries))));
            }
            PolicyKnob::Reschedule {
                ref scheduler,
                overhead_secs,
                max_retries,
            } => {
                obj.push((
                    "scheduler".to_owned(),
                    serde::Value::String(scheduler.clone()),
                ));
                obj.push(("overhead_secs".to_owned(), num(overhead_secs)));
                obj.push(("max_retries".to_owned(), num(f64::from(max_retries))));
            }
        }
        serde::Value::Object(obj)
    }
}

/// Required numeric field of a policy object.
fn knob_f64(value: &serde::Value, kind: &str, key: &str) -> Result<f64, serde::DeError> {
    value
        .get(key)
        .and_then(serde::Value::as_f64)
        .ok_or_else(|| {
            serde::DeError::new(format!("policy {kind:?} requires a numeric {key:?} field"))
        })
}

/// Optional retry budget of a policy object (default 3).
fn knob_retries(value: &serde::Value, kind: &str) -> Result<u32, serde::DeError> {
    match value.get("max_retries") {
        None => Ok(3),
        Some(v) => v.as_u64().map(|n| n as u32).ok_or_else(|| {
            serde::DeError::new(format!(
                "policy {kind:?}: max_retries must be a non-negative integer"
            ))
        }),
    }
}

impl<'de> Deserialize<'de> for PolicyKnob {
    fn from_value(value: &serde::Value) -> Result<PolicyKnob, serde::DeError> {
        let kind = value
            .get("kind")
            .and_then(serde::Value::as_str)
            .ok_or_else(|| {
                serde::DeError::new(format!(
                    "resilience policy must be an object with a \"kind\" tag, one of: {}",
                    RecoveryPolicy::names().join(", ")
                ))
            })?;
        match kind {
            "retry-backoff" => Ok(PolicyKnob::RetryBackoff {
                base_secs: knob_f64(value, kind, "base_secs")?,
                factor: knob_f64(value, kind, "factor")?,
                cap_secs: knob_f64(value, kind, "cap_secs")?,
                max_retries: knob_retries(value, kind)?,
            }),
            "replicate-k" => Ok(PolicyKnob::ReplicateK {
                replicas: knob_f64(value, kind, "replicas")? as usize,
                max_retries: knob_retries(value, kind)?,
            }),
            "checkpoint-restart" => Ok(PolicyKnob::CheckpointRestart {
                interval_secs: knob_f64(value, kind, "interval_secs")?,
                overhead_secs: knob_f64(value, kind, "overhead_secs")?,
                max_retries: knob_retries(value, kind)?,
            }),
            "reschedule" => Ok(PolicyKnob::Reschedule {
                scheduler: value
                    .get("scheduler")
                    .and_then(serde::Value::as_str)
                    .ok_or_else(|| {
                        serde::DeError::new(
                            "policy \"reschedule\" requires a string \"scheduler\" field"
                                .to_owned(),
                        )
                    })?
                    .to_owned(),
                overhead_secs: knob_f64(value, kind, "overhead_secs")?,
                max_retries: knob_retries(value, kind)?,
            }),
            other => Err(serde::DeError::new(format!(
                "unknown resilience policy kind {other:?}; legal values: {}",
                RecoveryPolicy::names().join(", ")
            ))),
        }
    }
}

fn default_slowdown() -> f64 {
    2.0
}

fn default_repair() -> f64 {
    1.0
}

/// Failure-domain and recovery knobs of a spec, mirroring
/// [`ResilienceConfig`](crate::ResilienceConfig). Mutually exclusive
/// with the legacy [`FaultKnob`] block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilienceKnob {
    /// Mean time to failure (exponential) or characteristic life
    /// (Weibull), seconds.
    pub mttf_secs: f64,
    /// Weibull shape; omit for the exponential distribution.
    #[serde(default)]
    pub weibull_shape: Option<f64>,
    /// Probability a failure degrades the device instead of only
    /// aborting the running attempt (default 0).
    #[serde(default)]
    pub degraded_prob: f64,
    /// Probability a failure removes the device permanently (default 0).
    #[serde(default)]
    pub permanent_prob: f64,
    /// Execution-time multiplier while degraded (default 2).
    #[serde(default = "default_slowdown")]
    pub degraded_slowdown: f64,
    /// Time until a degraded device is repaired, seconds (default 1).
    #[serde(default = "default_repair")]
    pub degraded_repair_secs: f64,
    /// Fixed overhead paid before every retry, seconds (default 0).
    #[serde(default)]
    pub restart_overhead_secs: f64,
    /// The recovery policy (`kind`-tagged object).
    pub policy: PolicyKnob,
}

impl ResilienceKnob {
    /// Builds the validated engine-level resilience configuration.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] naming the offending parameter.
    pub fn to_config(&self) -> Result<ResilienceConfig, EngineError> {
        let config = ResilienceConfig::new(
            FailureModel {
                mttf_secs: self.mttf_secs,
                weibull_shape: self.weibull_shape,
                degraded_prob: self.degraded_prob,
                permanent_prob: self.permanent_prob,
                degraded_slowdown: self.degraded_slowdown,
                degraded_repair_secs: self.degraded_repair_secs,
                restart_overhead_secs: self.restart_overhead_secs,
            },
            self.policy.to_policy(),
        );
        config.validate()?;
        Ok(config)
    }
}

fn default_degraded_factor() -> f64 {
    2.0
}

fn default_link_repair() -> f64 {
    0.05
}

/// Interconnect-fault knob of a spec, mirroring
/// [`LinkFaultModel`](crate::LinkFaultModel). Spelled in spec files as
/// an object with a `distribution` tag, e.g.
/// `{"distribution": "weibull", "mttf_secs": 0.2, "shape": 1.5,
/// "outage_secs": 0.05}`.
#[derive(Debug, Clone, PartialEq)]
pub struct InterconnectFaultKnob {
    /// Mean time to failure (exponential) or characteristic life
    /// (Weibull) per link, seconds.
    pub mttf_secs: f64,
    /// Weibull shape; `None` selects the exponential distribution.
    pub weibull_shape: Option<f64>,
    /// Probability a fault degrades bandwidth instead of a full outage
    /// (default 0).
    pub degraded_prob: f64,
    /// Transfer-time multiplier while degraded (default 2).
    pub degraded_factor: f64,
    /// Outage downtime before repair, seconds (default 0.05).
    pub outage_secs: f64,
    /// Time until a degraded link recovers, seconds (default 0.05).
    pub degraded_repair_secs: f64,
}

impl InterconnectFaultKnob {
    /// The distribution tags spec files may use.
    #[must_use]
    pub fn distributions() -> &'static [&'static str] {
        &["exponential", "weibull"]
    }

    /// Maps the knob onto the engine-level link-fault model.
    #[must_use]
    pub fn to_model(&self) -> LinkFaultModel {
        LinkFaultModel {
            mttf_secs: self.mttf_secs,
            weibull_shape: self.weibull_shape,
            degraded_prob: self.degraded_prob,
            degraded_factor: self.degraded_factor,
            outage_secs: self.outage_secs,
            degraded_repair_secs: self.degraded_repair_secs,
        }
    }
}

// Hand-written impls: the vendored derive has no tagging, and the
// `distribution` tag decides whether `shape` is required.
impl Serialize for InterconnectFaultKnob {
    fn to_value(&self) -> serde::Value {
        let num = serde::Value::Number;
        let mut obj: Vec<(String, serde::Value)> = vec![(
            "distribution".to_owned(),
            serde::Value::String(
                if self.weibull_shape.is_some() {
                    "weibull"
                } else {
                    "exponential"
                }
                .to_owned(),
            ),
        )];
        obj.push(("mttf_secs".to_owned(), num(self.mttf_secs)));
        if let Some(shape) = self.weibull_shape {
            obj.push(("shape".to_owned(), num(shape)));
        }
        obj.push(("degraded_prob".to_owned(), num(self.degraded_prob)));
        obj.push(("degraded_factor".to_owned(), num(self.degraded_factor)));
        obj.push(("outage_secs".to_owned(), num(self.outage_secs)));
        obj.push((
            "degraded_repair_secs".to_owned(),
            num(self.degraded_repair_secs),
        ));
        serde::Value::Object(obj)
    }
}

/// Optional numeric field with a default.
fn opt_f64(
    value: &serde::Value,
    ctx: &str,
    key: &str,
    default: f64,
) -> Result<f64, serde::DeError> {
    match value.get(key) {
        None => Ok(default),
        Some(v) => v.as_f64().ok_or_else(|| {
            serde::DeError::new(format!("{ctx}: {key:?} must be a number, got {v:?}"))
        }),
    }
}

impl<'de> Deserialize<'de> for InterconnectFaultKnob {
    fn from_value(value: &serde::Value) -> Result<InterconnectFaultKnob, serde::DeError> {
        let ctx = "interconnect_faults";
        let distribution = value
            .get("distribution")
            .and_then(serde::Value::as_str)
            .ok_or_else(|| {
                serde::DeError::new(format!(
                    "{ctx} must be an object with a \"distribution\" tag, one of: {}",
                    InterconnectFaultKnob::distributions().join(", ")
                ))
            })?;
        let weibull_shape = match distribution {
            "exponential" => None,
            "weibull" => Some(
                value
                    .get("shape")
                    .and_then(serde::Value::as_f64)
                    .ok_or_else(|| {
                        serde::DeError::new(format!(
                            "{ctx}: distribution \"weibull\" requires a numeric \"shape\" field"
                        ))
                    })?,
            ),
            other => {
                return Err(serde::DeError::new(format!(
                    "{ctx}: unknown distribution {other:?}; legal values: {}",
                    InterconnectFaultKnob::distributions().join(", ")
                )))
            }
        };
        Ok(InterconnectFaultKnob {
            mttf_secs: value
                .get("mttf_secs")
                .and_then(serde::Value::as_f64)
                .ok_or_else(|| {
                    serde::DeError::new(format!("{ctx} requires a numeric \"mttf_secs\" field"))
                })?,
            weibull_shape,
            degraded_prob: opt_f64(value, ctx, "degraded_prob", 0.0)?,
            degraded_factor: opt_f64(value, ctx, "degraded_factor", default_degraded_factor())?,
            outage_secs: opt_f64(value, ctx, "outage_secs", default_link_repair())?,
            degraded_repair_secs: opt_f64(
                value,
                ctx,
                "degraded_repair_secs",
                default_link_repair(),
            )?,
        })
    }
}

/// Correlated failure-domain knob of a spec, mirroring
/// [`FailureDomain`](crate::FailureDomain): a `kind`-tagged named group
/// of devices and links struck together, e.g.
/// `{"kind": "rack", "name": "r0", "devices": ["gpu0", "gpu1"],
/// "links": ["nvlink"], "mttf_secs": 0.5, "permanent_prob": 0.1}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureDomainKnob {
    /// Domain kind tag; one of [`FailureDomain::kinds`]
    /// (`rack`, `node`, `psu`).
    pub kind: String,
    /// Unique domain name, echoed in validation errors.
    pub name: String,
    /// Member device names, resolved against every spec platform.
    #[serde(default)]
    pub devices: Vec<String>,
    /// Member link names, resolved against every spec platform.
    #[serde(default)]
    pub links: Vec<String>,
    /// Mean time to failure (exponential) or characteristic life
    /// (Weibull) of the domain, seconds.
    pub mttf_secs: f64,
    /// Weibull shape; omit for the exponential distribution.
    #[serde(default)]
    pub weibull_shape: Option<f64>,
    /// Probability a domain event degrades members instead of aborting
    /// their work (default 0).
    #[serde(default)]
    pub degraded_prob: f64,
    /// Probability a domain event removes the whole group permanently
    /// (default 0).
    #[serde(default)]
    pub permanent_prob: f64,
    /// Member-link downtime under non-permanent events, seconds
    /// (default 0.05).
    #[serde(default = "default_link_repair")]
    pub outage_secs: f64,
}

impl FailureDomainKnob {
    /// Maps the knob onto the engine-level failure domain.
    #[must_use]
    pub fn to_domain(&self) -> FailureDomain {
        FailureDomain {
            kind: self.kind.clone(),
            name: self.name.clone(),
            devices: self.devices.clone(),
            links: self.links.clone(),
            mttf_secs: self.mttf_secs,
            weibull_shape: self.weibull_shape,
            degraded_prob: self.degraded_prob,
            permanent_prob: self.permanent_prob,
            outage_secs: self.outage_secs,
        }
    }
}

/// Per-scheduler tuning knobs of a spec. Each key overrides one
/// scheduler's construction in every cell that names it; schedulers
/// without a key keep their lineup defaults, and cells running other
/// schedulers ignore the block entirely. Any override is part of the
/// spec's content [`digest`](CampaignSpec::digest), so shards swept
/// with different knobs refuse to merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedulerParamsKnob {
    /// Iteration budget of the `annealing` scheduler (lineup default
    /// 500).
    pub annealing_iterations: Option<u32>,
    /// Descendant-generation depth of the `lookahead` scheduler
    /// (lineup default 1, the published one-step variant).
    pub lookahead_depth: Option<u32>,
}

impl SchedulerParamsKnob {
    /// The keys spec files may set.
    pub const KEYS: &'static [&'static str] = &["annealing_iterations", "lookahead_depth"];

    /// True when no override is set.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.annealing_iterations.is_none() && self.lookahead_depth.is_none()
    }
}

// Hand-written impls: only the keys actually set are serialized (so a
// knob-free spec keeps its canonical JSON and digest), and unknown keys
// are rejected naming the legal ones — a typoed override must die at
// validation instead of silently sweeping with defaults.
impl Serialize for SchedulerParamsKnob {
    fn to_value(&self) -> serde::Value {
        let mut obj: Vec<(String, serde::Value)> = Vec::new();
        if let Some(n) = self.annealing_iterations {
            obj.push((
                "annealing_iterations".to_owned(),
                serde::Value::Number(f64::from(n)),
            ));
        }
        if let Some(d) = self.lookahead_depth {
            obj.push((
                "lookahead_depth".to_owned(),
                serde::Value::Number(f64::from(d)),
            ));
        }
        serde::Value::Object(obj)
    }
}

impl<'de> Deserialize<'de> for SchedulerParamsKnob {
    fn from_value(value: &serde::Value) -> Result<SchedulerParamsKnob, serde::DeError> {
        let ctx = "scheduler_params";
        let serde::Value::Object(entries) = value else {
            return Err(serde::DeError::new(format!(
                "{ctx} must be an object; legal keys: {}",
                SchedulerParamsKnob::KEYS.join(", ")
            )));
        };
        let mut knob = SchedulerParamsKnob::default();
        for (key, v) in entries {
            let slot = match key.as_str() {
                "annealing_iterations" => &mut knob.annealing_iterations,
                "lookahead_depth" => &mut knob.lookahead_depth,
                other => {
                    return Err(serde::DeError::new(format!(
                        "{ctx}: unknown key {other:?}; legal keys: {}",
                        SchedulerParamsKnob::KEYS.join(", ")
                    )))
                }
            };
            let n = v.as_u64().filter(|&n| n >= 1).ok_or_else(|| {
                serde::DeError::new(format!("{ctx}: {key:?} must be an integer >= 1, got {v:?}"))
            })?;
            *slot = Some(n as u32);
        }
        Ok(knob)
    }
}

/// Elastic-capacity knob of a spec, mirroring
/// [`ElasticityConfig`](crate::ElasticityConfig): timed `kind`-tagged
/// capacity events plus stochastic spot churn. Spelled in spec files
/// as, e.g.
/// `{"events": [{"kind": "preempt", "device": "gpu0", "at_secs": 0.2,
/// "notice_secs": 0.05}], "churn": [{"device": "cpu1",
/// "mtbp_secs": 0.5, "notice_secs": 0.02, "rejoin_secs": 0.2}]}`.
/// Any elasticity block is part of the spec's content
/// [`digest`](CampaignSpec::digest).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ElasticityKnob {
    /// Timed capacity events, executed in time order.
    pub events: Vec<ElasticEvent>,
    /// Stochastic churn processes, at most one per device.
    pub churn: Vec<ElasticChurn>,
}

impl ElasticityKnob {
    /// Maps the knob onto the engine-level elasticity configuration.
    #[must_use]
    pub fn to_config(&self) -> ElasticityConfig {
        ElasticityConfig {
            events: self.events.clone(),
            churn: self.churn.clone(),
        }
    }
}

// Hand-written impls: the vendored derive has no tagging, and the
// `kind` tag decides which extra field (`deadline_secs`,
// `notice_secs`) each event requires.
impl Serialize for ElasticityKnob {
    fn to_value(&self) -> serde::Value {
        let num = serde::Value::Number;
        let events: Vec<serde::Value> = self
            .events
            .iter()
            .map(|ev| {
                let mut obj: Vec<(String, serde::Value)> = vec![
                    (
                        "kind".to_owned(),
                        serde::Value::String(ev.kind.name().to_owned()),
                    ),
                    ("device".to_owned(), serde::Value::String(ev.device.clone())),
                    ("at_secs".to_owned(), num(ev.at_secs)),
                ];
                match ev.kind {
                    ElasticEventKind::Drain { deadline_secs } => {
                        obj.push(("deadline_secs".to_owned(), num(deadline_secs)));
                    }
                    ElasticEventKind::Preempt { notice_secs } => {
                        obj.push(("notice_secs".to_owned(), num(notice_secs)));
                    }
                    ElasticEventKind::Join | ElasticEventKind::Leave => {}
                }
                serde::Value::Object(obj)
            })
            .collect();
        let churn: Vec<serde::Value> = self
            .churn
            .iter()
            .map(|c| {
                let mut obj: Vec<(String, serde::Value)> = vec![
                    ("device".to_owned(), serde::Value::String(c.device.clone())),
                    ("mtbp_secs".to_owned(), num(c.mtbp_secs)),
                ];
                if let Some(shape) = c.weibull_shape {
                    obj.push(("weibull_shape".to_owned(), num(shape)));
                }
                obj.push(("notice_secs".to_owned(), num(c.notice_secs)));
                obj.push(("rejoin_secs".to_owned(), num(c.rejoin_secs)));
                serde::Value::Object(obj)
            })
            .collect();
        serde::Value::Object(vec![
            ("events".to_owned(), serde::Value::Array(events)),
            ("churn".to_owned(), serde::Value::Array(churn)),
        ])
    }
}

/// Required numeric field of one elasticity object.
fn req_f64(value: &serde::Value, ctx: &str, key: &str) -> Result<f64, serde::DeError> {
    value
        .get(key)
        .and_then(serde::Value::as_f64)
        .ok_or_else(|| serde::DeError::new(format!("{ctx} requires a numeric {key:?} field")))
}

/// Required string field of one elasticity object.
fn req_str(value: &serde::Value, ctx: &str, key: &str) -> Result<String, serde::DeError> {
    value
        .get(key)
        .and_then(serde::Value::as_str)
        .map(str::to_owned)
        .ok_or_else(|| serde::DeError::new(format!("{ctx} requires a string {key:?} field")))
}

impl<'de> Deserialize<'de> for ElasticityKnob {
    fn from_value(value: &serde::Value) -> Result<ElasticityKnob, serde::DeError> {
        let ctx = "elasticity";
        if !matches!(value, serde::Value::Object(_)) {
            return Err(serde::DeError::new(format!(
                "{ctx} must be an object with \"events\" and/or \"churn\" arrays"
            )));
        }
        let arr = |key: &str| -> Result<&[serde::Value], serde::DeError> {
            match value.get(key) {
                None => Ok(&[]),
                Some(serde::Value::Array(items)) => Ok(items),
                Some(other) => Err(serde::DeError::new(format!(
                    "{ctx}: {key:?} must be an array, got {other:?}"
                ))),
            }
        };
        let mut events = Vec::new();
        for (i, ev) in arr("events")?.iter().enumerate() {
            let ctx = format!("{ctx} event {i}");
            let kind_tag = ev
                .get("kind")
                .and_then(serde::Value::as_str)
                .ok_or_else(|| {
                    serde::DeError::new(format!(
                        "{ctx} must be an object with a \"kind\" tag, one of: {}",
                        ElasticEventKind::kinds().join(", ")
                    ))
                })?;
            let kind = match kind_tag {
                "join" => ElasticEventKind::Join,
                "drain" => ElasticEventKind::Drain {
                    deadline_secs: req_f64(ev, &ctx, "deadline_secs")?,
                },
                "preempt" => ElasticEventKind::Preempt {
                    notice_secs: req_f64(ev, &ctx, "notice_secs")?,
                },
                "leave" => ElasticEventKind::Leave,
                other => {
                    return Err(serde::DeError::new(format!(
                        "{ctx}: unknown kind {other:?}; legal values: {}",
                        ElasticEventKind::kinds().join(", ")
                    )))
                }
            };
            events.push(ElasticEvent {
                device: req_str(ev, &ctx, "device")?,
                at_secs: req_f64(ev, &ctx, "at_secs")?,
                kind,
            });
        }
        let mut churn = Vec::new();
        for (i, c) in arr("churn")?.iter().enumerate() {
            let ctx = format!("{ctx} churn {i}");
            churn.push(ElasticChurn {
                device: req_str(c, &ctx, "device")?,
                mtbp_secs: req_f64(c, &ctx, "mtbp_secs")?,
                weibull_shape: match c.get("weibull_shape") {
                    None => None,
                    Some(v) => Some(v.as_f64().ok_or_else(|| {
                        serde::DeError::new(format!(
                            "{ctx}: \"weibull_shape\" must be a number, got {v:?}"
                        ))
                    })?),
                },
                notice_secs: req_f64(c, &ctx, "notice_secs")?,
                rejoin_secs: req_f64(c, &ctx, "rejoin_secs")?,
            });
        }
        Ok(ElasticityKnob { events, churn })
    }
}

fn default_tasks() -> usize {
    50
}

/// A declarative sweep grid: the cross product of families, platforms,
/// schedulers and seeds, with shared engine knobs.
///
/// # Examples
///
/// ```
/// let spec = helios_core::CampaignSpec::from_json(
///     r#"{
///         "name": "smoke",
///         "families": ["montage"],
///         "platforms": ["workstation"],
///         "schedulers": ["heft"],
///         "seeds": {"base": 0, "count": 2}
///     }"#,
/// )?;
/// assert_eq!(spec.expand()?.len(), 2);
/// # Ok::<(), helios_core::EngineError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Deserialize)]
pub struct CampaignSpec {
    /// Human-readable grid name, echoed into every report.
    pub name: String,
    /// Workflow families (`montage`, `cybershake`, `epigenomics`,
    /// `ligo`, `sipht`).
    pub families: Vec<String>,
    /// Platform preset names (`workstation`, `hpc_node`, `cluster<N>`,
    /// `edge_soc`).
    pub platforms: Vec<String>,
    /// Scheduler report names (see `helios_sched::all_schedulers`).
    pub schedulers: Vec<String>,
    /// Optional per-scheduler tuning overrides (annealing iteration
    /// budget, lookahead depth). Omitted from the canonical JSON when
    /// absent, so knob-free specs keep their digests.
    #[serde(default)]
    pub scheduler_params: Option<SchedulerParamsKnob>,
    /// Seed replicates per (family, platform, scheduler) combination.
    pub seeds: SeedRange,
    /// Tasks per generated workflow (default 50).
    #[serde(default = "default_tasks")]
    pub tasks: usize,
    /// Runtime noise coefficient of variation (default 0).
    #[serde(default)]
    pub noise_cv: f64,
    /// Model link contention (default off).
    #[serde(default)]
    pub link_contention: bool,
    /// Cache data products per device (default off).
    #[serde(default)]
    pub data_caching: bool,
    /// DVFS operating point (default `nominal`).
    #[serde(default)]
    pub dvfs: DvfsKnob,
    /// Optional fault injection.
    #[serde(default)]
    pub faults: Option<FaultKnob>,
    /// Optional failure-domain model and recovery policy; cells run
    /// through the [`ResilientRunner`](crate::ResilientRunner).
    /// Mutually exclusive with `faults`.
    #[serde(default)]
    pub resilience: Option<ResilienceKnob>,
    /// Optional per-link interconnect faults (outages and bandwidth
    /// degradations). Requires a `resilience` block.
    #[serde(default)]
    pub interconnect_faults: Option<InterconnectFaultKnob>,
    /// Optional correlated failure domains (racks, nodes, PSUs) whose
    /// members fail together. Requires a `resilience` block.
    #[serde(default)]
    pub failure_domains: Vec<FailureDomainKnob>,
    /// Optional elastic-capacity plan: timed join/drain/preempt/leave
    /// events and stochastic spot churn. Cells run through the
    /// [`ResilientRunner`](crate::ResilientRunner) (a benign default
    /// resilience config is synthesized when no `resilience` block is
    /// present). Mutually exclusive with `faults`; omitted from the
    /// canonical JSON when absent, so elasticity-free specs keep their
    /// digests.
    #[serde(default)]
    pub elasticity: Option<ElasticityKnob>,
    /// Optional watchdog budget on simulated events per cell; a cell
    /// exceeding it is recorded as timed out instead of grinding the
    /// campaign. Overridable at run time via the
    /// `HELIOS_CELL_STEP_BUDGET` environment variable.
    #[serde(default)]
    pub cell_step_budget: Option<u64>,
}

// Hand-written Serialize: identical to the derive output except that
// `scheduler_params` and `elasticity` are *omitted* when absent (the
// vendored `Option` impl would write `null`, which would shift the
// canonical JSON — and therefore the content digest of every existing
// spec — the day the field was added). Field order mirrors the
// declaration, like the derive.
impl Serialize for CampaignSpec {
    fn to_value(&self) -> serde::Value {
        let mut fields: Vec<(String, serde::Value)> = vec![
            ("name".to_owned(), self.name.to_value()),
            ("families".to_owned(), self.families.to_value()),
            ("platforms".to_owned(), self.platforms.to_value()),
            ("schedulers".to_owned(), self.schedulers.to_value()),
        ];
        if let Some(params) = &self.scheduler_params {
            fields.push(("scheduler_params".to_owned(), params.to_value()));
        }
        fields.push(("seeds".to_owned(), self.seeds.to_value()));
        fields.push(("tasks".to_owned(), self.tasks.to_value()));
        fields.push(("noise_cv".to_owned(), self.noise_cv.to_value()));
        fields.push((
            "link_contention".to_owned(),
            self.link_contention.to_value(),
        ));
        fields.push(("data_caching".to_owned(), self.data_caching.to_value()));
        fields.push(("dvfs".to_owned(), self.dvfs.to_value()));
        fields.push(("faults".to_owned(), self.faults.to_value()));
        fields.push(("resilience".to_owned(), self.resilience.to_value()));
        fields.push((
            "interconnect_faults".to_owned(),
            self.interconnect_faults.to_value(),
        ));
        fields.push((
            "failure_domains".to_owned(),
            self.failure_domains.to_value(),
        ));
        if let Some(el) = &self.elasticity {
            fields.push(("elasticity".to_owned(), el.to_value()));
        }
        fields.push((
            "cell_step_budget".to_owned(),
            self.cell_step_budget.to_value(),
        ));
        serde::Value::Object(fields)
    }
}

/// One expanded grid point: a single deterministic simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepCell {
    /// Global cell index in expansion order (stable across shards).
    pub index: usize,
    /// Workflow family name.
    pub family: String,
    /// Platform preset name.
    pub platform: String,
    /// Scheduler name.
    pub scheduler: String,
    /// Workflow-generation and engine seed.
    pub seed: u64,
}

/// Resolves a spec family name to its generator class.
#[must_use]
pub fn family_class(name: &str) -> Option<WorkflowClass> {
    WorkflowClass::ALL.into_iter().find(|c| c.as_str() == name)
}

impl CampaignSpec {
    /// Parses and validates a spec from its JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::MalformedSpec`] (wrapped in
    /// [`EngineError::Campaign`]) for JSON that does not deserialize,
    /// and [`CampaignError::InvalidSpec`] for unknown grid axis values
    /// or an empty grid.
    pub fn from_json(json: &str) -> Result<CampaignSpec, EngineError> {
        let spec: CampaignSpec =
            serde_json::from_str(json).map_err(|e| CampaignError::MalformedSpec(e.to_string()))?;
        spec.validate()?;
        Ok(spec)
    }

    /// Checks every grid axis is non-empty and resolvable, and that
    /// every fault block is legal (interconnect faults and failure
    /// domains require a resilience block, domain members must resolve
    /// on every spec platform).
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::InvalidSpec`] (wrapped in
    /// [`EngineError::Campaign`]) naming the offending field; an empty
    /// axis is a hard error because it silently expands to zero cells.
    pub fn validate(&self) -> Result<(), EngineError> {
        let fail = |msg: String| {
            Err(EngineError::Campaign(CampaignError::InvalidSpec {
                spec: self.name.clone(),
                detail: msg,
            }))
        };
        if self.families.is_empty() {
            return fail(
                "`families` is empty, so the grid has no cells; list at least one of \
                 montage, cybershake, epigenomics, ligo, sipht"
                    .into(),
            );
        }
        for f in &self.families {
            if family_class(f).is_none() {
                return fail(format!(
                    "unknown family {f:?} (montage, cybershake, epigenomics, ligo, sipht)"
                ));
            }
        }
        if self.platforms.is_empty() {
            return fail(
                "`platforms` is empty, so the grid has no cells; list at least one of \
                 workstation, hpc_node, cluster<N>, edge_soc"
                    .into(),
            );
        }
        for p in &self.platforms {
            if helios_platform::presets::by_name(p).is_none() {
                return fail(format!(
                    "unknown platform {p:?} (workstation, hpc_node, cluster<N>, edge_soc)"
                ));
            }
        }
        if self.schedulers.is_empty() {
            return fail(
                "`schedulers` is empty, so the grid has no cells; list at least one \
                 scheduler name (e.g. heft)"
                    .into(),
            );
        }
        for s in &self.schedulers {
            if helios_sched::scheduler_by_name(s).is_none() {
                let names: Vec<String> = helios_sched::all_schedulers()
                    .iter()
                    .map(|s| s.name().to_owned())
                    .collect();
                return fail(format!(
                    "unknown scheduler {s:?} (available: {})",
                    names.join(", ")
                ));
            }
        }
        if let Some(sp) = &self.scheduler_params {
            if sp.annealing_iterations == Some(0) {
                return fail(format!(
                    "`scheduler_params.annealing_iterations` must be >= 1; legal keys: {}",
                    SchedulerParamsKnob::KEYS.join(", ")
                ));
            }
            if sp.lookahead_depth == Some(0) {
                return fail(format!(
                    "`scheduler_params.lookahead_depth` must be >= 1; legal keys: {}",
                    SchedulerParamsKnob::KEYS.join(", ")
                ));
            }
        }
        if self.seeds.count == 0 {
            return fail("`seeds.count` must be >= 1, a zero-seed sweep has no cells".into());
        }
        if self.tasks == 0 {
            return fail("`tasks` must be >= 1".into());
        }
        if !(self.noise_cv.is_finite() && self.noise_cv >= 0.0) {
            return fail(format!(
                "`noise_cv` must be finite and >= 0, got {}",
                self.noise_cv
            ));
        }
        if let Some(fk) = &self.faults {
            if !(fk.mtbf_secs.is_finite() && fk.mtbf_secs > 0.0) {
                return fail(format!(
                    "`faults.mtbf_secs` must be positive, got {}",
                    fk.mtbf_secs
                ));
            }
            if !(fk.restart_overhead_secs.is_finite() && fk.restart_overhead_secs >= 0.0) {
                return fail(format!(
                    "`faults.restart_overhead_secs` must be finite and >= 0, got {}",
                    fk.restart_overhead_secs
                ));
            }
        }
        if self.resilience.is_some() && self.faults.is_some() {
            return fail(
                "`faults` and `resilience` are mutually exclusive; flat retry is \
                 `resilience.policy = {\"kind\": \"retry-backoff\", \"base_secs\": 0, ...}`"
                    .into(),
            );
        }
        if self.elasticity.is_some() && self.faults.is_some() {
            return fail(
                "`faults` and `elasticity` are mutually exclusive: capacity events run \
                 through the resilient runner, which replaces the legacy fault path"
                    .into(),
            );
        }
        if self.resilience.is_none()
            && (self.interconnect_faults.is_some() || !self.failure_domains.is_empty())
        {
            return fail(
                "`interconnect_faults` and `failure_domains` require a `resilience` block: \
                 link outages and correlated strikes need a recovery policy to run under"
                    .into(),
            );
        }
        if self.cell_step_budget == Some(0) {
            return fail("`cell_step_budget` must be at least 1 simulated event".into());
        }
        // Builds the full engine-level config, which validates the fault
        // model, the link-fault parameters, every domain (kind tag,
        // members, probabilities) and domain-name uniqueness.
        self.resilience_config().map_err(|e| {
            EngineError::Campaign(CampaignError::InvalidSpec {
                spec: self.name.clone(),
                detail: format!("`resilience`: {e}"),
            })
        })?;
        // Times, notices and churn rates are validated by the
        // engine-level elasticity config; device names below, per
        // platform.
        if let Some(el) = &self.elasticity {
            el.to_config().validate().map_err(|e| {
                EngineError::Campaign(CampaignError::InvalidSpec {
                    spec: self.name.clone(),
                    detail: format!("`elasticity`: {e}"),
                })
            })?;
        }
        // Domain members and elasticity targets must resolve on *every*
        // platform of the grid — a typo must die at validation, not in
        // shard 7 of 32.
        for pname in &self.platforms {
            let Some(platform) = helios_platform::presets::by_name(pname) else {
                continue; // Unknown platforms were rejected above.
            };
            for domain in &self.failure_domains {
                for dev in &domain.devices {
                    if platform.device_by_name(dev).is_none() {
                        let names: Vec<&str> =
                            platform.devices().iter().map(|d| d.name()).collect();
                        return fail(format!(
                            "failure domain {:?}: unknown device {dev:?} on platform \
                             {pname:?} (devices: {})",
                            domain.name,
                            names.join(", ")
                        ));
                    }
                }
                for link in &domain.links {
                    if platform.interconnect().links_by_name(link).is_empty() {
                        let mut names: Vec<&str> = platform
                            .interconnect()
                            .links()
                            .iter()
                            .map(|l| l.name())
                            .collect();
                        names.dedup();
                        return fail(format!(
                            "failure domain {:?}: unknown link {link:?} on platform \
                             {pname:?} (links: {})",
                            domain.name,
                            names.join(", ")
                        ));
                    }
                }
            }
            if let Some(el) = &self.elasticity {
                let unknown_device = |what: String, dev: &str| {
                    let names: Vec<&str> = platform.devices().iter().map(|d| d.name()).collect();
                    fail(format!(
                        "{what}: unknown device {dev:?} on platform {pname:?} \
                         (devices: {})",
                        names.join(", ")
                    ))
                };
                for (i, ev) in el.events.iter().enumerate() {
                    if platform.device_by_name(&ev.device).is_none() {
                        return unknown_device(
                            format!("elasticity event {i} ({})", ev.kind.name()),
                            &ev.device,
                        );
                    }
                }
                for c in &el.churn {
                    if platform.device_by_name(&c.device).is_none() {
                        return unknown_device("elasticity churn".to_owned(), &c.device);
                    }
                }
            }
        }
        Ok(())
    }

    /// The full engine-level resilience configuration of the spec:
    /// failure model, recovery policy, interconnect faults and failure
    /// domains, validated as a whole. `None` without a `resilience`
    /// block.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] naming the offending parameter.
    pub fn resilience_config(&self) -> Result<Option<ResilienceConfig>, EngineError> {
        let Some(rk) = &self.resilience else {
            return Ok(None);
        };
        let mut config = rk.to_config()?;
        if let Some(knob) = &self.interconnect_faults {
            config = config.with_link_faults(knob.to_model());
        }
        if !self.failure_domains.is_empty() {
            config =
                config.with_domains(self.failure_domains.iter().map(|d| d.to_domain()).collect());
        }
        config.validate()?;
        Ok(Some(config))
    }

    /// The engine-level elasticity configuration of the spec, validated.
    /// `None` without an `elasticity` block.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] naming the offending field.
    pub fn elasticity_config(&self) -> Result<Option<ElasticityConfig>, EngineError> {
        let Some(ek) = &self.elasticity else {
            return Ok(None);
        };
        let config = ek.to_config();
        config.validate()?;
        Ok(Some(config))
    }

    /// The number of cells the spec expands to.
    #[must_use]
    pub fn num_cells(&self) -> usize {
        self.families.len() * self.platforms.len() * self.schedulers.len() * self.seeds.count
    }

    /// Expands the grid into cells, in declaration order (family ×
    /// platform × scheduler × seed, seed innermost).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] if the spec is invalid or the
    /// grid is empty.
    pub fn expand(&self) -> Result<Vec<SweepCell>, EngineError> {
        self.validate()?;
        let mut cells = Vec::with_capacity(self.num_cells());
        for family in &self.families {
            for platform in &self.platforms {
                for scheduler in &self.schedulers {
                    for seed in self.seeds.iter() {
                        cells.push(SweepCell {
                            index: cells.len(),
                            family: family.clone(),
                            platform: platform.clone(),
                            scheduler: scheduler.clone(),
                            seed,
                        });
                    }
                }
            }
        }
        if cells.is_empty() {
            return Err(EngineError::Campaign(CampaignError::InvalidSpec {
                spec: self.name.clone(),
                detail: "expands to zero cells".into(),
            }));
        }
        Ok(cells)
    }

    /// A stable digest of the canonical spec JSON, used by the merge
    /// path to refuse mixing shards from different specs. Stored as a
    /// hex string (the JSON number space cannot carry 64 bits exactly).
    #[must_use]
    pub fn digest(&self) -> String {
        let canonical = serde_json::to_string(self).expect("spec serialization is infallible");
        format!("{:016x}", fnv1a(canonical.as_bytes()))
    }
}

/// 64-bit FNV-1a over a byte string.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal_json() -> String {
        r#"{
            "name": "t",
            "families": ["montage", "sipht"],
            "platforms": ["workstation"],
            "schedulers": ["heft", "min-min"],
            "seeds": {"base": 5, "count": 3}
        }"#
        .to_owned()
    }

    #[test]
    fn parses_with_defaults_and_expands_in_declaration_order() {
        let spec = CampaignSpec::from_json(&minimal_json()).unwrap();
        assert_eq!(spec.tasks, 50);
        assert_eq!(spec.noise_cv, 0.0);
        assert_eq!(spec.dvfs, DvfsKnob::Nominal);
        assert!(spec.faults.is_none());

        let cells = spec.expand().unwrap();
        assert_eq!(cells.len(), 2 * 2 * 3);
        assert_eq!(spec.num_cells(), cells.len());
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
        }
        // Seed is the innermost axis, family the outermost.
        assert_eq!(cells[0].seed, 5);
        assert_eq!(cells[1].seed, 6);
        assert_eq!(cells[3].scheduler, "min-min");
        assert_eq!(cells[6].family, "sipht");
    }

    #[test]
    fn malformed_json_is_a_config_error() {
        let err = CampaignSpec::from_json("{not json").unwrap_err();
        assert!(err.to_string().contains("malformed campaign spec"), "{err}");
        let err = CampaignSpec::from_json("{}").unwrap_err();
        assert!(err.to_string().contains("missing field"), "{err}");
    }

    #[test]
    fn empty_axes_and_unknown_names_are_hard_errors() {
        let checks = [
            (
                r#""families": ["montage", "sipht"]"#,
                r#""families": []"#,
                "families",
            ),
            (
                r#""platforms": ["workstation"]"#,
                r#""platforms": []"#,
                "platforms",
            ),
            (
                r#""schedulers": ["heft", "min-min"]"#,
                r#""schedulers": []"#,
                "schedulers",
            ),
            (
                r#""seeds": {"base": 5, "count": 3}"#,
                r#""seeds": {"base": 5, "count": 0}"#,
                "seeds.count",
            ),
            (
                r#""families": ["montage"#,
                r#""families": ["warptage"#,
                "unknown family",
            ),
            (
                r#""platforms": ["workstation"#,
                r#""platforms": ["laptop"#,
                "unknown platform",
            ),
            (
                r#""schedulers": ["heft"#,
                r#""schedulers": ["sjf"#,
                "unknown scheduler",
            ),
        ];
        for (from, to, needle) in checks {
            let json = minimal_json().replace(from, to);
            let err = CampaignSpec::from_json(&json).unwrap_err();
            assert!(err.to_string().contains(needle), "{needle}: {err}");
        }
    }

    #[test]
    fn dvfs_knob_roundtrips_lowercase() {
        for knob in [
            DvfsKnob::Nominal,
            DvfsKnob::Powersave,
            DvfsKnob::Performance,
        ] {
            let v = knob.to_value();
            assert_eq!(v.as_str(), Some(knob.as_str()));
            assert_eq!(DvfsKnob::from_value(&v).unwrap(), knob);
        }
        assert!(DvfsKnob::from_value(&serde::Value::String("turbo".into())).is_err());
    }

    #[test]
    fn digest_is_stable_and_distinguishes_specs() {
        let a = CampaignSpec::from_json(&minimal_json()).unwrap();
        let b = CampaignSpec::from_json(&minimal_json()).unwrap();
        assert_eq!(a.digest(), b.digest());
        let c = CampaignSpec {
            noise_cv: 0.1,
            ..a.clone()
        };
        assert_ne!(a.digest(), c.digest());
        assert_eq!(a.digest().len(), 16);
    }

    fn resilience_json(policy: &str) -> String {
        minimal_json().trim_end().trim_end_matches('}').to_owned()
            + &format!(
                r#", "resilience": {{
                    "mttf_secs": 0.25,
                    "weibull_shape": 1.5,
                    "degraded_prob": 0.08,
                    "permanent_prob": 0.02,
                    "degraded_repair_secs": 0.05,
                    "restart_overhead_secs": 0.001,
                    "policy": {policy}
                }}}}"#
            )
    }

    #[test]
    fn resilience_knob_parses_every_policy_kind() {
        let policies = [
            r#"{"kind": "retry-backoff", "base_secs": 0.001, "factor": 2.0, "cap_secs": 0.01, "max_retries": 10}"#,
            r#"{"kind": "replicate-k", "replicas": 2}"#,
            r#"{"kind": "checkpoint-restart", "interval_secs": 0.005, "overhead_secs": 0.0002}"#,
            r#"{"kind": "reschedule", "scheduler": "heft", "overhead_secs": 0.001}"#,
        ];
        for policy in policies {
            let spec = CampaignSpec::from_json(&resilience_json(policy)).unwrap();
            let rk = spec.resilience.as_ref().expect("resilience block parsed");
            assert_eq!(rk.mttf_secs, 0.25);
            assert_eq!(rk.weibull_shape, Some(1.5));
            assert_eq!(rk.degraded_slowdown, 2.0, "defaulted");
            let cfg = rk.to_config().unwrap();
            assert!(policy.contains(cfg.policy.name()), "{policy}");
            // And the knob round-trips through canonical JSON.
            let round = CampaignSpec::from_json(&serde_json::to_string(&spec).unwrap()).unwrap();
            assert_eq!(spec, round);
        }
        // max_retries defaults to 3 when omitted.
        let spec = CampaignSpec::from_json(&resilience_json(
            r#"{"kind": "replicate-k", "replicas": 2}"#,
        ))
        .unwrap();
        assert_eq!(
            spec.resilience.unwrap().policy,
            PolicyKnob::ReplicateK {
                replicas: 2,
                max_retries: 3
            }
        );
    }

    #[test]
    fn resilience_knob_rejects_bad_input() {
        let err = CampaignSpec::from_json(&resilience_json(r#"{"kind": "pray"}"#)).unwrap_err();
        assert!(
            err.to_string().contains("retry-backoff"),
            "error must name the legal policy kinds: {err}"
        );
        let err = CampaignSpec::from_json(&resilience_json(r#"{"base_secs": 1.0}"#)).unwrap_err();
        assert!(err.to_string().contains("kind"), "{err}");
        let err = CampaignSpec::from_json(&resilience_json(
            r#"{"kind": "replicate-k", "replicas": 1}"#,
        ))
        .unwrap_err();
        assert!(err.to_string().contains("replicas"), "{err}");

        // Legacy faults and resilience cannot be combined.
        let json = resilience_json(r#"{"kind": "replicate-k", "replicas": 2}"#)
            .trim_end()
            .trim_end_matches('}')
            .to_owned()
            + r#"}, "faults": {"mtbf_secs": 2.0}}"#;
        let err = CampaignSpec::from_json(&json).unwrap_err();
        assert!(err.to_string().contains("mutually exclusive"), "{err}");
    }

    #[test]
    fn resilience_knob_changes_the_digest() {
        let base = CampaignSpec::from_json(&minimal_json()).unwrap();
        let with = CampaignSpec::from_json(&resilience_json(
            r#"{"kind": "retry-backoff", "base_secs": 0.001, "factor": 2.0, "cap_secs": 0.01}"#,
        ))
        .unwrap();
        assert_ne!(base.digest(), with.digest());
        let tweaked = CampaignSpec::from_json(&resilience_json(
            r#"{"kind": "retry-backoff", "base_secs": 0.002, "factor": 2.0, "cap_secs": 0.01}"#,
        ))
        .unwrap();
        assert_ne!(
            with.digest(),
            tweaked.digest(),
            "policy parameters are part of the content digest"
        );
    }

    /// A spec with a resilience block plus arbitrary extra top-level
    /// JSON fields spliced in before the closing brace.
    fn faulty_json(extra: &str) -> String {
        resilience_json(
            r#"{"kind": "retry-backoff", "base_secs": 0.001, "factor": 2.0, "cap_secs": 0.01}"#,
        )
        .trim_end()
        .trim_end_matches('}')
        .to_owned()
            + &format!("}}, {extra}}}")
    }

    #[test]
    fn interconnect_fault_knob_parses_and_roundtrips() {
        let spec = CampaignSpec::from_json(&faulty_json(
            r#""interconnect_faults": {
                "distribution": "weibull",
                "shape": 1.4,
                "mttf_secs": 0.5,
                "degraded_prob": 0.3,
                "degraded_factor": 4.0,
                "outage_secs": 0.02
            }"#,
        ))
        .unwrap();
        let knob = spec.interconnect_faults.as_ref().expect("knob parsed");
        assert_eq!(knob.mttf_secs, 0.5);
        assert_eq!(knob.weibull_shape, Some(1.4));
        assert_eq!(knob.degraded_prob, 0.3);
        assert_eq!(knob.degraded_factor, 4.0);
        assert_eq!(knob.outage_secs, 0.02);
        assert_eq!(knob.degraded_repair_secs, 0.05, "defaulted");
        let round = CampaignSpec::from_json(&serde_json::to_string(&spec).unwrap()).unwrap();
        assert_eq!(spec, round);

        // Exponential variant: no shape, optional fields defaulted.
        let spec = CampaignSpec::from_json(&faulty_json(
            r#""interconnect_faults": {"distribution": "exponential", "mttf_secs": 2.0}"#,
        ))
        .unwrap();
        let knob = spec.interconnect_faults.as_ref().unwrap();
        assert_eq!(knob.weibull_shape, None);
        assert_eq!(knob.degraded_factor, 2.0, "defaulted");
        let round = CampaignSpec::from_json(&serde_json::to_string(&spec).unwrap()).unwrap();
        assert_eq!(spec, round);
        // And the knob lowers into a validating model.
        spec.resilience_config().unwrap().unwrap();
    }

    #[test]
    fn interconnect_fault_knob_rejects_bad_input() {
        let err = CampaignSpec::from_json(&faulty_json(
            r#""interconnect_faults": {"distribution": "gamma", "mttf_secs": 1.0}"#,
        ))
        .unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("exponential") && msg.contains("weibull"),
            "error must name the legal distributions: {msg}"
        );
        let err =
            CampaignSpec::from_json(&faulty_json(r#""interconnect_faults": {"mttf_secs": 1.0}"#))
                .unwrap_err();
        assert!(err.to_string().contains("distribution"), "{err}");
        let err = CampaignSpec::from_json(&faulty_json(
            r#""interconnect_faults": {"distribution": "weibull", "mttf_secs": 1.0}"#,
        ))
        .unwrap_err();
        assert!(err.to_string().contains("shape"), "{err}");
    }

    #[test]
    fn failure_domains_parse_and_resolve_against_every_platform() {
        let spec = CampaignSpec::from_json(&faulty_json(
            r#""failure_domains": [
                {"kind": "rack", "name": "r0",
                 "devices": ["cpu0", "gpu0"], "links": ["pcie3-x16"],
                 "mttf_secs": 0.5, "degraded_prob": 0.2, "outage_secs": 0.01},
                {"kind": "psu", "name": "p0",
                 "devices": ["cpu1"], "mttf_secs": 3.0, "permanent_prob": 1.0}
            ]"#,
        ))
        .unwrap();
        assert_eq!(spec.failure_domains.len(), 2);
        assert_eq!(spec.failure_domains[0].links, vec!["pcie3-x16"]);
        let round = CampaignSpec::from_json(&serde_json::to_string(&spec).unwrap()).unwrap();
        assert_eq!(spec, round);
        let config = spec.resilience_config().unwrap().unwrap();
        assert_eq!(config.domains.len(), 2);
    }

    #[test]
    fn failure_domain_validation_catches_user_errors() {
        // Unknown member device: names the platform's real devices.
        let err = CampaignSpec::from_json(&faulty_json(
            r#""failure_domains": [{"kind": "rack", "name": "r0",
                "devices": ["xpu9"], "mttf_secs": 1.0, "degraded_prob": 1.0}]"#,
        ))
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("xpu9") && msg.contains("cpu0"), "{msg}");

        // Unknown member link: names the platform's real links.
        let err = CampaignSpec::from_json(&faulty_json(
            r#""failure_domains": [{"kind": "rack", "name": "r0",
                "links": ["infiniband"], "mttf_secs": 1.0, "degraded_prob": 1.0}]"#,
        ))
        .unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("infiniband") && msg.contains("pcie3-x16"),
            "{msg}"
        );

        // Unknown domain kind: names the legal kinds.
        let err = CampaignSpec::from_json(&faulty_json(
            r#""failure_domains": [{"kind": "blast-radius", "name": "r0",
                "devices": ["cpu0"], "mttf_secs": 1.0, "degraded_prob": 1.0}]"#,
        ))
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("rack") && msg.contains("psu"), "{msg}");

        // Duplicate domain names collide in the metrics rollup.
        let err = CampaignSpec::from_json(&faulty_json(
            r#""failure_domains": [
                {"kind": "rack", "name": "r0", "devices": ["cpu0"],
                 "mttf_secs": 1.0, "degraded_prob": 1.0},
                {"kind": "rack", "name": "r0", "devices": ["cpu1"],
                 "mttf_secs": 1.0, "degraded_prob": 1.0}
            ]"#,
        ))
        .unwrap_err();
        assert!(err.to_string().contains("r0"), "{err}");
    }

    #[test]
    fn fault_topology_blocks_require_a_resilience_block() {
        for block in [
            r#""interconnect_faults": {"distribution": "exponential", "mttf_secs": 1.0}"#,
            r#""failure_domains": [{"kind": "rack", "name": "r0",
                "devices": ["cpu0"], "mttf_secs": 1.0, "degraded_prob": 1.0}]"#,
        ] {
            let json = minimal_json().trim_end().trim_end_matches('}').to_owned()
                + &format!(", {block}}}");
            let err = CampaignSpec::from_json(&json).unwrap_err();
            assert!(err.to_string().contains("resilience"), "{block}: {err}");
        }
    }

    #[test]
    fn fault_topology_blocks_change_the_digest() {
        let base = CampaignSpec::from_json(&faulty_json(r#""tasks": 50"#)).unwrap();
        let with_links = CampaignSpec::from_json(&faulty_json(
            r#""interconnect_faults": {"distribution": "exponential", "mttf_secs": 1.0}"#,
        ))
        .unwrap();
        let with_domains = CampaignSpec::from_json(&faulty_json(
            r#""failure_domains": [{"kind": "rack", "name": "r0",
                "devices": ["cpu0"], "mttf_secs": 1.0, "degraded_prob": 1.0}]"#,
        ))
        .unwrap();
        let with_budget =
            CampaignSpec::from_json(&faulty_json(r#""cell_step_budget": 100000"#)).unwrap();
        let digests = [
            base.digest(),
            with_links.digest(),
            with_domains.digest(),
            with_budget.digest(),
        ];
        for i in 0..digests.len() {
            for j in i + 1..digests.len() {
                assert_ne!(digests[i], digests[j], "digest {i} vs {j}");
            }
        }
        // Tweaking a fault parameter moves the digest too.
        let tweaked = CampaignSpec::from_json(&faulty_json(
            r#""interconnect_faults": {"distribution": "exponential", "mttf_secs": 2.0}"#,
        ))
        .unwrap();
        assert_ne!(with_links.digest(), tweaked.digest());
    }

    #[test]
    fn zero_cell_step_budget_is_rejected() {
        let err = CampaignSpec::from_json(&faulty_json(r#""cell_step_budget": 0"#)).unwrap_err();
        assert!(err.to_string().contains("cell_step_budget"), "{err}");
        let spec = CampaignSpec::from_json(&faulty_json(r#""cell_step_budget": 7"#)).unwrap();
        assert_eq!(spec.cell_step_budget, Some(7));
    }

    #[test]
    fn scheduler_params_parse_roundtrip_and_stay_out_of_knobfree_json() {
        // Knob-free spec: no scheduler_params key in the canonical JSON,
        // so pre-existing digests are untouched by the field's existence.
        let spec = CampaignSpec::from_json(&minimal_json()).unwrap();
        assert!(spec.scheduler_params.is_none());
        let canonical = serde_json::to_string(&spec).unwrap();
        assert!(
            !canonical.contains("scheduler_params"),
            "absent knob must be omitted, not serialized as null: {canonical}"
        );

        let json = minimal_json().trim_end().trim_end_matches('}').to_owned()
            + r#", "scheduler_params": {"annealing_iterations": 50, "lookahead_depth": 2}}"#;
        let spec = CampaignSpec::from_json(&json).unwrap();
        let params = spec.scheduler_params.expect("params parsed");
        assert_eq!(params.annealing_iterations, Some(50));
        assert_eq!(params.lookahead_depth, Some(2));
        let round = CampaignSpec::from_json(&serde_json::to_string(&spec).unwrap()).unwrap();
        assert_eq!(spec, round);

        // Partial knob: unset keys stay unset through the round trip.
        let json = minimal_json().trim_end().trim_end_matches('}').to_owned()
            + r#", "scheduler_params": {"lookahead_depth": 3}}"#;
        let spec = CampaignSpec::from_json(&json).unwrap();
        let params = spec.scheduler_params.unwrap();
        assert_eq!(params.annealing_iterations, None);
        assert_eq!(params.lookahead_depth, Some(3));
    }

    #[test]
    fn scheduler_params_reject_bad_input_naming_legal_keys() {
        let with = |body: &str| {
            minimal_json().trim_end().trim_end_matches('}').to_owned()
                + &format!(r#", "scheduler_params": {body}}}"#)
        };
        // Unknown key: the error names every legal key.
        let err = CampaignSpec::from_json(&with(r#"{"annealing_temp": 3}"#)).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("annealing_iterations") && msg.contains("lookahead_depth"),
            "error must name the legal keys: {msg}"
        );
        // Non-integer and zero values are rejected.
        let err = CampaignSpec::from_json(&with(r#"{"lookahead_depth": "deep"}"#)).unwrap_err();
        assert!(err.to_string().contains("lookahead_depth"), "{err}");
        let err = CampaignSpec::from_json(&with(r#"{"annealing_iterations": 0}"#)).unwrap_err();
        assert!(err.to_string().contains("annealing_iterations"), "{err}");
        // Non-object knob.
        let err = CampaignSpec::from_json(&with("7")).unwrap_err();
        assert!(err.to_string().contains("legal keys"), "{err}");
    }

    #[test]
    fn scheduler_params_change_the_digest() {
        let base = CampaignSpec::from_json(&minimal_json()).unwrap();
        let with = |body: &str| {
            CampaignSpec::from_json(
                &(minimal_json().trim_end().trim_end_matches('}').to_owned()
                    + &format!(r#", "scheduler_params": {body}}}"#)),
            )
            .unwrap()
        };
        let iters = with(r#"{"annealing_iterations": 100}"#);
        let more_iters = with(r#"{"annealing_iterations": 200}"#);
        let depth = with(r#"{"lookahead_depth": 2}"#);
        let digests = [
            base.digest(),
            iters.digest(),
            more_iters.digest(),
            depth.digest(),
        ];
        for i in 0..digests.len() {
            for j in i + 1..digests.len() {
                assert_ne!(digests[i], digests[j], "digest {i} vs {j}");
            }
        }
    }

    /// A spec with an elasticity block spliced in before the closing
    /// brace.
    fn elastic_json(body: &str) -> String {
        minimal_json().trim_end().trim_end_matches('}').to_owned()
            + &format!(r#", "elasticity": {body}}}"#)
    }

    #[test]
    fn elasticity_parses_roundtrips_and_stays_out_of_knobfree_json() {
        // Knob-free spec: no elasticity key in the canonical JSON, so
        // pre-existing digests are untouched by the field's existence.
        let spec = CampaignSpec::from_json(&minimal_json()).unwrap();
        assert!(spec.elasticity.is_none());
        let canonical = serde_json::to_string(&spec).unwrap();
        assert!(
            !canonical.contains("elasticity"),
            "absent knob must be omitted, not serialized as null: {canonical}"
        );

        let spec = CampaignSpec::from_json(&elastic_json(
            r#"{"events": [
                {"kind": "join", "device": "gpu0", "at_secs": 0.5},
                {"kind": "drain", "device": "cpu0", "at_secs": 0.2, "deadline_secs": 0.4},
                {"kind": "preempt", "device": "cpu1", "at_secs": 0.1, "notice_secs": 0.05},
                {"kind": "leave", "device": "gpu0", "at_secs": 2.0}
            ],
            "churn": [
                {"device": "cpu1", "mtbp_secs": 0.5, "weibull_shape": 1.4,
                 "notice_secs": 0.02, "rejoin_secs": 0.2}
            ]}"#,
        ))
        .unwrap();
        let el = spec.elasticity.as_ref().expect("elasticity parsed");
        assert_eq!(el.events.len(), 4);
        assert_eq!(el.events[0].kind, ElasticEventKind::Join);
        assert_eq!(
            el.events[1].kind,
            ElasticEventKind::Drain { deadline_secs: 0.4 }
        );
        assert_eq!(
            el.events[2].kind,
            ElasticEventKind::Preempt { notice_secs: 0.05 }
        );
        assert_eq!(el.churn[0].weibull_shape, Some(1.4));
        let round = CampaignSpec::from_json(&serde_json::to_string(&spec).unwrap()).unwrap();
        assert_eq!(spec, round);
        // And the knob lowers into a validating engine config.
        spec.elasticity_config().unwrap().unwrap();

        // Churn-only block, exponential (no shape).
        let spec = CampaignSpec::from_json(&elastic_json(
            r#"{"churn": [{"device": "gpu0", "mtbp_secs": 1.0,
                           "notice_secs": 0.01, "rejoin_secs": 0.5}]}"#,
        ))
        .unwrap();
        assert_eq!(
            spec.elasticity.as_ref().unwrap().churn[0].weibull_shape,
            None
        );
        let round = CampaignSpec::from_json(&serde_json::to_string(&spec).unwrap()).unwrap();
        assert_eq!(spec, round);
    }

    #[test]
    fn elasticity_rejects_bad_input_naming_legal_values() {
        // Unknown kind: the error names every legal kind tag.
        let err = CampaignSpec::from_json(&elastic_json(
            r#"{"events": [{"kind": "vanish", "device": "cpu0", "at_secs": 1.0}]}"#,
        ))
        .unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("join") && msg.contains("drain") && msg.contains("preempt"),
            "error must name the legal kinds: {msg}"
        );
        // Missing kind tag and missing required fields are typed errors.
        let err = CampaignSpec::from_json(&elastic_json(
            r#"{"events": [{"device": "cpu0", "at_secs": 1.0}]}"#,
        ))
        .unwrap_err();
        assert!(err.to_string().contains("kind"), "{err}");
        let err = CampaignSpec::from_json(&elastic_json(
            r#"{"events": [{"kind": "drain", "device": "cpu0", "at_secs": 1.0}]}"#,
        ))
        .unwrap_err();
        assert!(err.to_string().contains("deadline_secs"), "{err}");
        let err = CampaignSpec::from_json(&elastic_json(
            r#"{"events": [{"kind": "join", "device": "cpu0"}]}"#,
        ))
        .unwrap_err();
        assert!(err.to_string().contains("at_secs"), "{err}");
        // Engine-level parameter validation is surfaced as InvalidSpec:
        // negative times, zero notice, drain deadline at/before notice.
        let err = CampaignSpec::from_json(&elastic_json(
            r#"{"events": [{"kind": "join", "device": "cpu0", "at_secs": -1.0}]}"#,
        ))
        .unwrap_err();
        assert!(err.to_string().contains("at_secs"), "{err}");
        let err = CampaignSpec::from_json(&elastic_json(
            r#"{"events": [{"kind": "preempt", "device": "cpu0",
                            "at_secs": 1.0, "notice_secs": 0.0}]}"#,
        ))
        .unwrap_err();
        assert!(err.to_string().contains("notice_secs"), "{err}");
        let err = CampaignSpec::from_json(&elastic_json(
            r#"{"events": [{"kind": "drain", "device": "cpu0",
                            "at_secs": 1.0, "deadline_secs": 1.0}]}"#,
        ))
        .unwrap_err();
        assert!(err.to_string().contains("deadline_secs"), "{err}");
        // An empty block is rejected — it would silently change nothing.
        let err = CampaignSpec::from_json(&elastic_json(r#"{"events": []}"#)).unwrap_err();
        assert!(err.to_string().contains("at least one"), "{err}");
        // Unknown device: the error names the platform's real devices.
        let err = CampaignSpec::from_json(&elastic_json(
            r#"{"events": [{"kind": "join", "device": "xpu9", "at_secs": 1.0}]}"#,
        ))
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("xpu9") && msg.contains("cpu0"), "{msg}");
        let err = CampaignSpec::from_json(&elastic_json(
            r#"{"churn": [{"device": "xpu9", "mtbp_secs": 1.0,
                           "notice_secs": 0.01, "rejoin_secs": 0.5}]}"#,
        ))
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("xpu9") && msg.contains("cpu0"), "{msg}");
        // Legacy faults and elasticity cannot be combined.
        let json =
            elastic_json(r#"{"events": [{"kind": "join", "device": "gpu0", "at_secs": 1.0}]}"#)
                .trim_end()
                .trim_end_matches('}')
                .to_owned()
                + r#"}, "faults": {"mtbf_secs": 2.0}}"#;
        let err = CampaignSpec::from_json(&json).unwrap_err();
        assert!(err.to_string().contains("mutually exclusive"), "{err}");
    }

    #[test]
    fn elasticity_changes_the_digest() {
        let base = CampaignSpec::from_json(&minimal_json()).unwrap();
        let with = CampaignSpec::from_json(&elastic_json(
            r#"{"events": [{"kind": "preempt", "device": "gpu0",
                            "at_secs": 0.2, "notice_secs": 0.05}]}"#,
        ))
        .unwrap();
        assert_ne!(base.digest(), with.digest());
        let tweaked = CampaignSpec::from_json(&elastic_json(
            r#"{"events": [{"kind": "preempt", "device": "gpu0",
                            "at_secs": 0.3, "notice_secs": 0.05}]}"#,
        ))
        .unwrap();
        assert_ne!(
            with.digest(),
            tweaked.digest(),
            "event parameters are part of the content digest"
        );
        let churned = CampaignSpec::from_json(&elastic_json(
            r#"{"churn": [{"device": "gpu0", "mtbp_secs": 1.0,
                           "notice_secs": 0.01, "rejoin_secs": 0.5}]}"#,
        ))
        .unwrap();
        assert_ne!(with.digest(), churned.digest());
    }

    #[test]
    fn spec_roundtrips_through_json() {
        let json = minimal_json().trim_end().trim_end_matches('}').to_owned()
            + r#", "tasks": 30, "noise_cv": 0.1, "dvfs": "powersave",
                  "faults": {"mtbf_secs": 2.0, "max_retries": 4}}"#;
        let spec = CampaignSpec::from_json(&json).unwrap();
        let round = CampaignSpec::from_json(&serde_json::to_string(&spec).unwrap()).unwrap();
        assert_eq!(spec, round);
        assert_eq!(round.dvfs, DvfsKnob::Powersave);
        assert_eq!(round.faults.unwrap().max_retries, 4);
    }
}
