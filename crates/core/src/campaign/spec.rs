//! Declarative campaign sweep specifications.
//!
//! A [`CampaignSpec`] is the file-level description of an evaluation
//! grid: the cross product of workflow families, platform presets,
//! schedulers and seeds, plus the engine knobs (noise, contention,
//! caching, DVFS policy, fault injection) every cell runs under. Specs
//! are plain JSON loaded through the vendored serde stack, so the same
//! grid can be split across processes or hosts and recombined later —
//! see [`super::sweep`] for the sharded driver.
//!
//! Expansion is deterministic: [`CampaignSpec::expand`] enumerates
//! cells in declaration order (family, then platform, then scheduler,
//! then seed), and every cell carries its global index. Two processes
//! expanding the same spec therefore agree on which simulation cell
//! `i` denotes, which is what makes shard unions bit-identical to the
//! unsharded run.

use serde::{Deserialize, Serialize};

use helios_workflow::generators::WorkflowClass;

use crate::EngineError;

/// A consecutive seed range: `base, base + 1, …, base + count - 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeedRange {
    /// First seed of the range.
    pub base: u64,
    /// Number of seeds (one replicate per seed).
    pub count: usize,
}

impl SeedRange {
    /// Iterates the seeds of the range.
    pub fn iter(self) -> impl Iterator<Item = u64> {
        (0..self.count as u64).map(move |i| self.base.wrapping_add(i))
    }
}

/// The DVFS operating point every placement of a cell is pinned to.
///
/// `Nominal` keeps whatever levels the scheduler chose; `Powersave`
/// rewrites placements to each device's slowest state, `Performance`
/// to its fastest. The engine re-derives timing from the plan's device
/// order, so rewriting levels is safe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DvfsKnob {
    /// Keep the scheduler's chosen levels.
    #[default]
    Nominal,
    /// Pin every placement to the slowest DVFS state.
    Powersave,
    /// Pin every placement to the fastest DVFS state.
    Performance,
}

impl DvfsKnob {
    /// The spec-file spelling of the knob.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            DvfsKnob::Nominal => "nominal",
            DvfsKnob::Powersave => "powersave",
            DvfsKnob::Performance => "performance",
        }
    }
}

// Hand-written impls: spec files spell the knob in lowercase, while the
// vendored derive would use the exact variant names.
impl Serialize for DvfsKnob {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(self.as_str().to_owned())
    }
}

impl<'de> Deserialize<'de> for DvfsKnob {
    fn from_value(value: &serde::Value) -> Result<DvfsKnob, serde::DeError> {
        match value.as_str() {
            Some("nominal") => Ok(DvfsKnob::Nominal),
            Some("powersave") => Ok(DvfsKnob::Powersave),
            Some("performance") => Ok(DvfsKnob::Performance),
            _ => Err(serde::DeError::new(format!(
                "unknown dvfs knob {value:?} (nominal, powersave, performance)"
            ))),
        }
    }
}

/// Fault-injection knobs of a spec, mirroring
/// [`FaultConfig`](crate::FaultConfig).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultKnob {
    /// Mean time between failures per device, seconds.
    pub mtbf_secs: f64,
    /// Restart overhead added to every retry, seconds.
    #[serde(default)]
    pub restart_overhead_secs: f64,
    /// Retry budget per task.
    #[serde(default)]
    pub max_retries: u32,
}

fn default_tasks() -> usize {
    50
}

/// A declarative sweep grid: the cross product of families, platforms,
/// schedulers and seeds, with shared engine knobs.
///
/// # Examples
///
/// ```
/// let spec = helios_core::CampaignSpec::from_json(
///     r#"{
///         "name": "smoke",
///         "families": ["montage"],
///         "platforms": ["workstation"],
///         "schedulers": ["heft"],
///         "seeds": {"base": 0, "count": 2}
///     }"#,
/// )?;
/// assert_eq!(spec.expand()?.len(), 2);
/// # Ok::<(), helios_core::EngineError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Human-readable grid name, echoed into every report.
    pub name: String,
    /// Workflow families (`montage`, `cybershake`, `epigenomics`,
    /// `ligo`, `sipht`).
    pub families: Vec<String>,
    /// Platform preset names (`workstation`, `hpc_node`, `cluster<N>`,
    /// `edge_soc`).
    pub platforms: Vec<String>,
    /// Scheduler report names (see `helios_sched::all_schedulers`).
    pub schedulers: Vec<String>,
    /// Seed replicates per (family, platform, scheduler) combination.
    pub seeds: SeedRange,
    /// Tasks per generated workflow (default 50).
    #[serde(default = "default_tasks")]
    pub tasks: usize,
    /// Runtime noise coefficient of variation (default 0).
    #[serde(default)]
    pub noise_cv: f64,
    /// Model link contention (default off).
    #[serde(default)]
    pub link_contention: bool,
    /// Cache data products per device (default off).
    #[serde(default)]
    pub data_caching: bool,
    /// DVFS operating point (default `nominal`).
    #[serde(default)]
    pub dvfs: DvfsKnob,
    /// Optional fault injection.
    #[serde(default)]
    pub faults: Option<FaultKnob>,
}

/// One expanded grid point: a single deterministic simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepCell {
    /// Global cell index in expansion order (stable across shards).
    pub index: usize,
    /// Workflow family name.
    pub family: String,
    /// Platform preset name.
    pub platform: String,
    /// Scheduler name.
    pub scheduler: String,
    /// Workflow-generation and engine seed.
    pub seed: u64,
}

/// Resolves a spec family name to its generator class.
#[must_use]
pub fn family_class(name: &str) -> Option<WorkflowClass> {
    WorkflowClass::ALL.into_iter().find(|c| c.as_str() == name)
}

impl CampaignSpec {
    /// Parses and validates a spec from its JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] with an actionable message for
    /// malformed JSON, unknown grid axis values, or an empty grid.
    pub fn from_json(json: &str) -> Result<CampaignSpec, EngineError> {
        let spec: CampaignSpec = serde_json::from_str(json)
            .map_err(|e| EngineError::Config(format!("malformed campaign spec: {e}")))?;
        spec.validate()?;
        Ok(spec)
    }

    /// Checks every grid axis is non-empty and resolvable.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] naming the offending axis; an
    /// empty axis is a hard error because it silently expands to zero
    /// cells.
    pub fn validate(&self) -> Result<(), EngineError> {
        let fail = |msg: String| Err(EngineError::Config(format!("spec {:?}: {msg}", self.name)));
        if self.families.is_empty() {
            return fail(
                "`families` is empty, so the grid has no cells; list at least one of \
                 montage, cybershake, epigenomics, ligo, sipht"
                    .into(),
            );
        }
        for f in &self.families {
            if family_class(f).is_none() {
                return fail(format!(
                    "unknown family {f:?} (montage, cybershake, epigenomics, ligo, sipht)"
                ));
            }
        }
        if self.platforms.is_empty() {
            return fail(
                "`platforms` is empty, so the grid has no cells; list at least one of \
                 workstation, hpc_node, cluster<N>, edge_soc"
                    .into(),
            );
        }
        for p in &self.platforms {
            if helios_platform::presets::by_name(p).is_none() {
                return fail(format!(
                    "unknown platform {p:?} (workstation, hpc_node, cluster<N>, edge_soc)"
                ));
            }
        }
        if self.schedulers.is_empty() {
            return fail(
                "`schedulers` is empty, so the grid has no cells; list at least one \
                 scheduler name (e.g. heft)"
                    .into(),
            );
        }
        for s in &self.schedulers {
            if helios_sched::scheduler_by_name(s).is_none() {
                let names: Vec<String> = helios_sched::all_schedulers()
                    .iter()
                    .map(|s| s.name().to_owned())
                    .collect();
                return fail(format!(
                    "unknown scheduler {s:?} (available: {})",
                    names.join(", ")
                ));
            }
        }
        if self.seeds.count == 0 {
            return fail("`seeds.count` must be >= 1, a zero-seed sweep has no cells".into());
        }
        if self.tasks == 0 {
            return fail("`tasks` must be >= 1".into());
        }
        if !(self.noise_cv.is_finite() && self.noise_cv >= 0.0) {
            return fail(format!(
                "`noise_cv` must be finite and >= 0, got {}",
                self.noise_cv
            ));
        }
        if let Some(fk) = &self.faults {
            if !(fk.mtbf_secs.is_finite() && fk.mtbf_secs > 0.0) {
                return fail(format!(
                    "`faults.mtbf_secs` must be positive, got {}",
                    fk.mtbf_secs
                ));
            }
            if !(fk.restart_overhead_secs.is_finite() && fk.restart_overhead_secs >= 0.0) {
                return fail(format!(
                    "`faults.restart_overhead_secs` must be finite and >= 0, got {}",
                    fk.restart_overhead_secs
                ));
            }
        }
        Ok(())
    }

    /// The number of cells the spec expands to.
    #[must_use]
    pub fn num_cells(&self) -> usize {
        self.families.len() * self.platforms.len() * self.schedulers.len() * self.seeds.count
    }

    /// Expands the grid into cells, in declaration order (family ×
    /// platform × scheduler × seed, seed innermost).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] if the spec is invalid or the
    /// grid is empty.
    pub fn expand(&self) -> Result<Vec<SweepCell>, EngineError> {
        self.validate()?;
        let mut cells = Vec::with_capacity(self.num_cells());
        for family in &self.families {
            for platform in &self.platforms {
                for scheduler in &self.schedulers {
                    for seed in self.seeds.iter() {
                        cells.push(SweepCell {
                            index: cells.len(),
                            family: family.clone(),
                            platform: platform.clone(),
                            scheduler: scheduler.clone(),
                            seed,
                        });
                    }
                }
            }
        }
        if cells.is_empty() {
            return Err(EngineError::Config(format!(
                "spec {:?} expands to zero cells",
                self.name
            )));
        }
        Ok(cells)
    }

    /// A stable digest of the canonical spec JSON, used by the merge
    /// path to refuse mixing shards from different specs. Stored as a
    /// hex string (the JSON number space cannot carry 64 bits exactly).
    #[must_use]
    pub fn digest(&self) -> String {
        let canonical = serde_json::to_string(self).expect("spec serialization is infallible");
        format!("{:016x}", fnv1a(canonical.as_bytes()))
    }
}

/// 64-bit FNV-1a over a byte string.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal_json() -> String {
        r#"{
            "name": "t",
            "families": ["montage", "sipht"],
            "platforms": ["workstation"],
            "schedulers": ["heft", "min-min"],
            "seeds": {"base": 5, "count": 3}
        }"#
        .to_owned()
    }

    #[test]
    fn parses_with_defaults_and_expands_in_declaration_order() {
        let spec = CampaignSpec::from_json(&minimal_json()).unwrap();
        assert_eq!(spec.tasks, 50);
        assert_eq!(spec.noise_cv, 0.0);
        assert_eq!(spec.dvfs, DvfsKnob::Nominal);
        assert!(spec.faults.is_none());

        let cells = spec.expand().unwrap();
        assert_eq!(cells.len(), 2 * 2 * 3);
        assert_eq!(spec.num_cells(), cells.len());
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
        }
        // Seed is the innermost axis, family the outermost.
        assert_eq!(cells[0].seed, 5);
        assert_eq!(cells[1].seed, 6);
        assert_eq!(cells[3].scheduler, "min-min");
        assert_eq!(cells[6].family, "sipht");
    }

    #[test]
    fn malformed_json_is_a_config_error() {
        let err = CampaignSpec::from_json("{not json").unwrap_err();
        assert!(err.to_string().contains("malformed campaign spec"), "{err}");
        let err = CampaignSpec::from_json("{}").unwrap_err();
        assert!(err.to_string().contains("missing field"), "{err}");
    }

    #[test]
    fn empty_axes_and_unknown_names_are_hard_errors() {
        let checks = [
            (
                r#""families": ["montage", "sipht"]"#,
                r#""families": []"#,
                "families",
            ),
            (
                r#""platforms": ["workstation"]"#,
                r#""platforms": []"#,
                "platforms",
            ),
            (
                r#""schedulers": ["heft", "min-min"]"#,
                r#""schedulers": []"#,
                "schedulers",
            ),
            (
                r#""seeds": {"base": 5, "count": 3}"#,
                r#""seeds": {"base": 5, "count": 0}"#,
                "seeds.count",
            ),
            (
                r#""families": ["montage"#,
                r#""families": ["warptage"#,
                "unknown family",
            ),
            (
                r#""platforms": ["workstation"#,
                r#""platforms": ["laptop"#,
                "unknown platform",
            ),
            (
                r#""schedulers": ["heft"#,
                r#""schedulers": ["sjf"#,
                "unknown scheduler",
            ),
        ];
        for (from, to, needle) in checks {
            let json = minimal_json().replace(from, to);
            let err = CampaignSpec::from_json(&json).unwrap_err();
            assert!(err.to_string().contains(needle), "{needle}: {err}");
        }
    }

    #[test]
    fn dvfs_knob_roundtrips_lowercase() {
        for knob in [
            DvfsKnob::Nominal,
            DvfsKnob::Powersave,
            DvfsKnob::Performance,
        ] {
            let v = knob.to_value();
            assert_eq!(v.as_str(), Some(knob.as_str()));
            assert_eq!(DvfsKnob::from_value(&v).unwrap(), knob);
        }
        assert!(DvfsKnob::from_value(&serde::Value::String("turbo".into())).is_err());
    }

    #[test]
    fn digest_is_stable_and_distinguishes_specs() {
        let a = CampaignSpec::from_json(&minimal_json()).unwrap();
        let b = CampaignSpec::from_json(&minimal_json()).unwrap();
        assert_eq!(a.digest(), b.digest());
        let c = CampaignSpec {
            noise_cv: 0.1,
            ..a.clone()
        };
        assert_ne!(a.digest(), c.digest());
        assert_eq!(a.digest().len(), 16);
    }

    #[test]
    fn spec_roundtrips_through_json() {
        let json = minimal_json().trim_end().trim_end_matches('}').to_owned()
            + r#", "tasks": 30, "noise_cv": 0.1, "dvfs": "powersave",
                  "faults": {"mtbf_secs": 2.0, "max_retries": 4}}"#;
        let spec = CampaignSpec::from_json(&json).unwrap();
        let round = CampaignSpec::from_json(&serde_json::to_string(&spec).unwrap()).unwrap();
        assert_eq!(spec, round);
        assert_eq!(round.dvfs, DvfsKnob::Powersave);
        assert_eq!(round.faults.unwrap().max_retries, 4);
    }
}
