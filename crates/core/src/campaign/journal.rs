//! The write-ahead cell journal: crash-consistent sweep durability.
//!
//! A journal is an append-only binary file recording sweep progress at
//! cell granularity. The layout is
//!
//! ```text
//! magic  "HELIOSJ1"                                    (8 bytes)
//! header [len: u32][crc32: u32][JournalHeader JSON]    (checksummed)
//! record [kind: u8][len: u32][crc32: u32][payload]     (repeated)
//! ```
//!
//! with little-endian integers and IEEE CRC-32 over the payload. Two
//! record kinds exist: an *attempt* (kind 1, `{"cell":N}`) appended
//! before a cell executes, and a *completion* (kind 2, a compact-JSON
//! [`CellResult`]) appended after. Every append is `fsync`'d, so a
//! `kill -9` at any instant loses at most the record being written —
//! never a cell that was reported durable.
//!
//! Recovery is longest-valid-prefix salvage: [`read_journal`] scans
//! records until the first length/bounds/CRC/decode failure and treats
//! everything after as the torn tail; [`recover_journal`] additionally
//! truncates that tail in place so the file can be appended to again.
//! Because cells are pure functions of the spec and their coordinates,
//! a resumed sweep re-runs exactly the missing cells and compiles a
//! report byte-identical to an uninterrupted run.
//!
//! Attempt records make crash *loops* observable: a cell whose attempt
//! count reaches the poison limit with no completion record has killed
//! the process that many times and is quarantined by the driver
//! (recorded `completed = false, incomplete_reason = "poisoned"`)
//! instead of being retried forever.
//!
//! The module also salvages the *legacy* resume artifact: a truncated
//! pretty-printed JSON [`ShardReport`] (the pre-journal `--out` file,
//! torn by a crash mid-rewrite) can be cut back to its longest valid
//! cell prefix by [`salvage_json_shard_report`].

use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use super::sweep::{CellResult, ShardReport};
use super::CampaignError;
use crate::EngineError;

/// File magic: identifies a helios cell journal, version 1.
pub const JOURNAL_MAGIC: [u8; 8] = *b"HELIOSJ1";

/// Message prefix of the injected torn-write error, so harnesses can
/// tell the synthetic tear from a real I/O failure.
pub const TORN_WRITE_INJECTED: &str = "injected torn journal write";

/// Attempts without a completion record before the driver quarantines
/// a cell as poisoned.
pub const DEFAULT_POISON_LIMIT: u32 = 3;

/// Upper bound on a single record payload; anything larger in the
/// length field is torn-tail garbage, not a record.
const MAX_RECORD_LEN: u32 = 16 * 1024 * 1024;

const KIND_ATTEMPT: u8 = 1;
const KIND_CELL: u8 = 2;

/// The checksummed first record: binds the journal to one campaign
/// (spec name + content digest + grid size) and one shard geometry, so
/// resume and merge can refuse foreign journals with typed errors.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalHeader {
    /// Spec name, echoed for human consumption.
    pub spec_name: String,
    /// Digest of the canonical spec JSON (see `CampaignSpec::digest`).
    pub spec_digest: String,
    /// Cells in the full (unsharded) grid.
    pub total_cells: usize,
    /// This journal's 1-based shard index.
    pub shard_index: usize,
    /// Shards in the partition.
    pub shard_count: usize,
}

#[derive(Debug, Serialize, Deserialize)]
struct AttemptRecord {
    cell: usize,
}

/// IEEE CRC-32 lookup table, built at compile time.
const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// IEEE CRC-32 of `bytes` (the checksum guarding every record).
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Whether `bytes` begin with the journal magic.
#[must_use]
pub fn is_journal_bytes(bytes: &[u8]) -> bool {
    bytes.len() >= JOURNAL_MAGIC.len() && bytes[..JOURNAL_MAGIC.len()] == JOURNAL_MAGIC
}

/// The salvageable state of a journal: header, the longest valid
/// record prefix, and how much torn tail follows it.
#[derive(Debug, Clone, PartialEq)]
pub struct Salvage {
    /// The validated header record.
    pub header: JournalHeader,
    /// Completion records in append order, first occurrence per cell.
    pub cells: Vec<CellResult>,
    /// Attempt records in append order (may repeat a cell).
    pub attempts: Vec<usize>,
    /// Bytes of valid prefix (magic + header + intact records).
    pub valid_bytes: u64,
    /// Bytes of torn tail after the valid prefix.
    pub dropped_bytes: u64,
}

impl Salvage {
    /// The salvaged completions as a [`ShardReport`] — the bridge that
    /// lets `merge_shards` consume journal files directly.
    #[must_use]
    pub fn to_shard_report(&self) -> ShardReport {
        let mut cells = self.cells.clone();
        cells.sort_by_key(|c| c.cell);
        ShardReport {
            spec_name: self.header.spec_name.clone(),
            spec_digest: self.header.spec_digest.clone(),
            total_cells: self.header.total_cells,
            shard_index: self.header.shard_index,
            shard_count: self.header.shard_count,
            cells,
        }
    }

    /// Cells with attempt records but no completion record, with their
    /// attempt counts — the poisoned-cell candidates. Sorted by cell.
    #[must_use]
    pub fn pending_attempts(&self) -> Vec<(usize, u32)> {
        let mut out: Vec<(usize, u32)> = Vec::new();
        for &cell in &self.attempts {
            if self.cells.iter().any(|c| c.cell == cell) {
                continue;
            }
            match out.iter_mut().find(|(c, _)| *c == cell) {
                Some((_, n)) => *n += 1,
                None => out.push((cell, 1)),
            }
        }
        out.sort_unstable_by_key(|&(c, _)| c);
        out
    }
}

fn io_err(path: &Path, what: &str, e: &std::io::Error) -> EngineError {
    EngineError::Config(format!("journal {}: {what}: {e}", path.display()))
}

fn corrupt(path: &Path, offset: u64, detail: String) -> EngineError {
    CampaignError::CorruptResume {
        file: path.display().to_string(),
        offset,
        detail,
    }
    .into()
}

/// Reads and salvages a journal without modifying it: the longest
/// valid record prefix plus the size of the torn tail.
///
/// # Errors
///
/// Returns [`CampaignError::CorruptResume`] when the file is not a
/// journal (bad magic) or its header record is torn — there is nothing
/// to salvage without a trusted header — and I/O errors as
/// [`EngineError::Config`].
pub fn read_journal(path: &Path) -> Result<Salvage, EngineError> {
    let bytes = std::fs::read(path).map_err(|e| io_err(path, "read", &e))?;
    salvage_bytes(path, &bytes)
}

/// Salvages a journal **in place**: scans like [`read_journal`], then
/// truncates the torn tail (fsync'd) so the file ends on a record
/// boundary and can be appended to again.
///
/// # Errors
///
/// As [`read_journal`], plus I/O errors from the truncation itself.
pub fn recover_journal(path: &Path) -> Result<Salvage, EngineError> {
    let salvage = read_journal(path)?;
    if salvage.dropped_bytes > 0 {
        let file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| io_err(path, "open for truncate", &e))?;
        file.set_len(salvage.valid_bytes)
            .map_err(|e| io_err(path, "truncate torn tail", &e))?;
        file.sync_all()
            .map_err(|e| io_err(path, "fsync after truncate", &e))?;
    }
    Ok(salvage)
}

fn salvage_bytes(path: &Path, bytes: &[u8]) -> Result<Salvage, EngineError> {
    if !is_journal_bytes(bytes) {
        return Err(corrupt(
            path,
            0,
            "not a helios cell journal (bad magic); point --journal at a journal \
             file, or delete the file to start fresh"
                .into(),
        ));
    }
    let mut at = JOURNAL_MAGIC.len();

    // Header record: [len][crc][payload], no kind byte.
    let torn_header = |at: usize| {
        corrupt(
            path,
            at as u64,
            "journal header record is torn or corrupt; the file cannot be \
             trusted — delete it to start fresh"
                .into(),
        )
    };
    if bytes.len() < at + 8 {
        return Err(torn_header(at));
    }
    let len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().expect("4 bytes"));
    if len as u32 > MAX_RECORD_LEN || bytes.len() < at + 8 + len {
        return Err(torn_header(at));
    }
    let payload = &bytes[at + 8..at + 8 + len];
    if crc32(payload) != crc {
        return Err(torn_header(at));
    }
    let header: JournalHeader = match std::str::from_utf8(payload)
        .ok()
        .and_then(|s| serde_json::from_str(s).ok())
    {
        Some(h) => h,
        None => return Err(torn_header(at)),
    };
    at += 8 + len;

    // Cell records: longest valid prefix; the first bad record starts
    // the torn tail.
    let mut cells: Vec<CellResult> = Vec::new();
    let mut attempts: Vec<usize> = Vec::new();
    let mut valid = at;
    while at + 9 <= bytes.len() {
        let kind = bytes[at];
        if kind != KIND_ATTEMPT && kind != KIND_CELL {
            break;
        }
        let len = u32::from_le_bytes(bytes[at + 1..at + 5].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[at + 5..at + 9].try_into().expect("4 bytes"));
        if len as u32 > MAX_RECORD_LEN || bytes.len() < at + 9 + len {
            break;
        }
        let payload = &bytes[at + 9..at + 9 + len];
        if crc32(payload) != crc {
            break;
        }
        let Ok(text) = std::str::from_utf8(payload) else {
            break;
        };
        if kind == KIND_ATTEMPT {
            let Ok(a) = serde_json::from_str::<AttemptRecord>(text) else {
                break;
            };
            attempts.push(a.cell);
        } else {
            let Ok(c) = serde_json::from_str::<CellResult>(text) else {
                break;
            };
            // Deterministic cells make duplicates identical; keep the
            // first occurrence so salvage is order-stable.
            if !cells.iter().any(|d| d.cell == c.cell) {
                cells.push(c);
            }
        }
        at += 9 + len;
        valid = at;
    }

    Ok(Salvage {
        header,
        cells,
        attempts,
        valid_bytes: valid as u64,
        dropped_bytes: (bytes.len() - valid) as u64,
    })
}

/// Appends checksummed, fsync'd records to a journal file.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
    path: PathBuf,
    /// Record appends completed since this writer opened (attempt +
    /// completion records; the header is not counted).
    appends: u64,
    /// Crash-injection hook: the append with this ordinal writes only
    /// half its bytes, fsyncs, and fails with [`TORN_WRITE_INJECTED`].
    tear_after: Option<u64>,
}

impl JournalWriter {
    /// Creates (truncating) a journal and durably writes magic+header.
    ///
    /// # Errors
    ///
    /// I/O failures as [`EngineError::Config`].
    pub fn create(
        path: &Path,
        header: &JournalHeader,
        tear_after: Option<u64>,
    ) -> Result<JournalWriter, EngineError> {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| io_err(path, "create", &e))?;
        let payload = serde_json::to_string(header)
            .map_err(|e| EngineError::Config(format!("serialize journal header: {e}")))?;
        let payload = payload.as_bytes();
        let mut buf = Vec::with_capacity(JOURNAL_MAGIC.len() + 8 + payload.len());
        buf.extend_from_slice(&JOURNAL_MAGIC);
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&crc32(payload).to_le_bytes());
        buf.extend_from_slice(payload);
        file.write_all(&buf)
            .map_err(|e| io_err(path, "write header", &e))?;
        file.sync_data()
            .map_err(|e| io_err(path, "fsync header", &e))?;
        Ok(JournalWriter {
            file,
            path: path.to_path_buf(),
            appends: 0,
            tear_after,
        })
    }

    /// Opens an existing journal for appending. The caller is expected
    /// to have validated/salvaged it first ([`recover_journal`]).
    ///
    /// # Errors
    ///
    /// I/O failures as [`EngineError::Config`].
    pub fn open_append(path: &Path, tear_after: Option<u64>) -> Result<JournalWriter, EngineError> {
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| io_err(path, "open for append", &e))?;
        Ok(JournalWriter {
            file,
            path: path.to_path_buf(),
            appends: 0,
            tear_after,
        })
    }

    /// Durably records that `cell` is about to execute.
    ///
    /// # Errors
    ///
    /// I/O failures, and the injected tear when armed.
    pub fn append_attempt(&mut self, cell: usize) -> Result<(), EngineError> {
        let payload = serde_json::to_string(&AttemptRecord { cell })
            .map_err(|e| EngineError::Config(format!("serialize attempt record: {e}")))?;
        self.append_record(KIND_ATTEMPT, payload.as_bytes())
    }

    /// Durably records a completed cell.
    ///
    /// # Errors
    ///
    /// I/O failures, and the injected tear when armed.
    pub fn append_cell(&mut self, cell: &CellResult) -> Result<(), EngineError> {
        let payload = serde_json::to_string(cell)
            .map_err(|e| EngineError::Config(format!("serialize cell record: {e}")))?;
        self.append_record(KIND_CELL, payload.as_bytes())
    }

    fn append_record(&mut self, kind: u8, payload: &[u8]) -> Result<(), EngineError> {
        if payload.len() as u64 > u64::from(MAX_RECORD_LEN) {
            return Err(EngineError::Config(format!(
                "journal record payload of {} bytes exceeds the {MAX_RECORD_LEN}-byte cap",
                payload.len()
            )));
        }
        let mut buf = Vec::with_capacity(9 + payload.len());
        buf.push(kind);
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&crc32(payload).to_le_bytes());
        buf.extend_from_slice(payload);
        if self.tear_after == Some(self.appends) {
            // Crash injection: persist half the record — exactly what a
            // power cut mid-write leaves behind — then die.
            let half = (buf.len() / 2).max(1);
            self.file
                .write_all(&buf[..half])
                .map_err(|e| io_err(&self.path, "write torn record", &e))?;
            self.file
                .sync_data()
                .map_err(|e| io_err(&self.path, "fsync torn record", &e))?;
            return Err(EngineError::Config(format!(
                "{TORN_WRITE_INJECTED}: wrote {half} of {} record bytes to {} and aborted",
                buf.len(),
                self.path.display()
            )));
        }
        self.file
            .write_all(&buf)
            .map_err(|e| io_err(&self.path, "append record", &e))?;
        self.file
            .sync_data()
            .map_err(|e| io_err(&self.path, "fsync record", &e))?;
        self.appends += 1;
        Ok(())
    }
}

/// A salvaged legacy JSON resume artifact: the report rebuilt from the
/// longest valid cell prefix plus how many bytes were torn off.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonSalvage {
    /// Shard metadata plus every cell that parsed intact.
    pub report: ShardReport,
    /// Bytes after the last intact cell object (the torn tail).
    pub dropped_bytes: u64,
}

/// Salvages a truncated pretty-printed [`ShardReport`] JSON file — the
/// pre-journal `--out` artifact a crash mid-rewrite leaves behind.
///
/// The serializer emits shard metadata before the `"cells"` array, so
/// a torn file still carries trustworthy spec/shard identity; cells
/// are recovered one balanced JSON object at a time until the first
/// torn or unparseable one. Returns `None` when even the metadata
/// prefix is damaged (nothing salvageable).
#[must_use]
pub fn salvage_json_shard_report(text: &str) -> Option<JsonSalvage> {
    let cells_key = text.find("\"cells\"")?;
    let meta_prefix = text[..cells_key].trim_end();
    if !meta_prefix.ends_with(',') {
        return None;
    }
    let mut meta = meta_prefix.to_string();
    meta.push_str("\"cells\":[]}");
    let mut report: ShardReport = serde_json::from_str(&meta).ok()?;

    let bytes = text.as_bytes();
    let mut i = cells_key + "\"cells\"".len();
    let skip_ws = |bytes: &[u8], mut i: usize| {
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        i
    };
    i = skip_ws(bytes, i);
    if bytes.get(i) != Some(&b':') {
        return None;
    }
    i = skip_ws(bytes, i + 1);
    if bytes.get(i) != Some(&b'[') {
        return None;
    }
    i += 1;
    let mut consumed = i;
    loop {
        i = skip_ws(bytes, i);
        match bytes.get(i) {
            Some(b',') => {
                i += 1;
                continue;
            }
            Some(b'{') => {}
            // `]` (file complete) or anything else: stop; a complete
            // file parses whole and never reaches salvage anyway.
            _ => break,
        }
        let Some(end) = scan_balanced_object(bytes, i) else {
            break; // torn mid-object
        };
        let Ok(cell) = serde_json::from_str::<CellResult>(&text[i..end]) else {
            break;
        };
        report.cells.push(cell);
        i = end;
        consumed = end;
    }
    Some(JsonSalvage {
        report,
        dropped_bytes: (text.len() - consumed) as u64,
    })
}

/// Returns the index just past the `}` matching the `{` at `start`,
/// honoring strings and escapes; `None` if the object never closes.
fn scan_balanced_object(bytes: &[u8], start: usize) -> Option<usize> {
    debug_assert_eq!(bytes.get(start), Some(&b'{'));
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for (off, &b) in bytes.iter().enumerate().skip(start) {
        if in_string {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_string = false;
            }
            continue;
        }
        match b {
            b'"' => in_string = true,
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(off + 1);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("helios-journal-test-{}-{name}", std::process::id()));
        p
    }

    fn header() -> JournalHeader {
        JournalHeader {
            spec_name: "t".into(),
            spec_digest: "d".into(),
            total_cells: 4,
            shard_index: 1,
            shard_count: 1,
        }
    }

    fn cell(i: usize) -> CellResult {
        CellResult {
            cell: i,
            family: "montage".into(),
            platform: "workstation".into(),
            scheduler: "heft".into(),
            seed: i as u64,
            makespan_secs: 1.5,
            slr: 1.0,
            energy_j: 2.0,
            transfers: 1,
            transfer_bytes: 10.0,
            failures: 0,
            retries: 0,
            completed: true,
            wasted_work_secs: 0.0,
            recovery_overhead_secs: 0.0,
            makespan_degradation: 0.0,
            reroutes: 0,
            partition_downtime_secs: 0.0,
            rematerialized_tasks: 0,
            rematerialized_bytes: 0.0,
            incomplete_reason: None,
            capacity_secs: 0.0,
            preemptions: 0,
            drain_migrated_tasks: 0,
            join_utilization: 0.0,
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn round_trips_header_attempts_and_cells() {
        let path = tmp("roundtrip.journal");
        let mut w = JournalWriter::create(&path, &header(), None).unwrap();
        w.append_attempt(0).unwrap();
        w.append_cell(&cell(0)).unwrap();
        w.append_attempt(2).unwrap();
        drop(w);

        let s = read_journal(&path).unwrap();
        assert_eq!(s.header, header());
        assert_eq!(s.cells, vec![cell(0)]);
        assert_eq!(s.attempts, vec![0, 2]);
        assert_eq!(s.dropped_bytes, 0);
        assert_eq!(s.pending_attempts(), vec![(2, 1)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_salvaged_and_truncated() {
        let path = tmp("torn.journal");
        let mut w = JournalWriter::create(&path, &header(), None).unwrap();
        w.append_cell(&cell(0)).unwrap();
        w.append_cell(&cell(1)).unwrap();
        drop(w);
        let intact = std::fs::metadata(&path).unwrap().len();
        // Simulate a power cut mid-append: garbage half-record tail.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[KIND_CELL, 200, 0, 0, 0, 1, 2]).unwrap();
        drop(f);

        let s = recover_journal(&path).unwrap();
        assert_eq!(s.cells.len(), 2);
        assert_eq!(s.valid_bytes, intact);
        assert_eq!(s.dropped_bytes, 7);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), intact);
        // After truncation the journal reads clean and appendable.
        let s2 = read_journal(&path).unwrap();
        assert_eq!(s2.dropped_bytes, 0);
        let mut w = JournalWriter::open_append(&path, None).unwrap();
        w.append_cell(&cell(2)).unwrap();
        drop(w);
        assert_eq!(read_journal(&path).unwrap().cells.len(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupted_crc_starts_the_torn_tail() {
        let path = tmp("crc.journal");
        let mut w = JournalWriter::create(&path, &header(), None).unwrap();
        w.append_cell(&cell(0)).unwrap();
        let boundary = std::fs::metadata(&path).unwrap().len();
        w.append_cell(&cell(1)).unwrap();
        drop(w);
        // Flip one payload byte of the second record.
        let mut bytes = std::fs::read(&path).unwrap();
        let at = bytes.len() - 3;
        bytes[at] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let s = read_journal(&path).unwrap();
        assert_eq!(s.cells.len(), 1, "the CRC-failing record is dropped");
        assert_eq!(s.valid_bytes, boundary);
        assert!(s.dropped_bytes > 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn injected_tear_writes_half_a_record() {
        let path = tmp("tear.journal");
        let mut w = JournalWriter::create(&path, &header(), Some(1)).unwrap();
        w.append_cell(&cell(0)).unwrap();
        let err = w.append_cell(&cell(1)).unwrap_err().to_string();
        assert!(err.contains(TORN_WRITE_INJECTED), "{err}");
        drop(w);
        let s = recover_journal(&path).unwrap();
        assert_eq!(s.cells, vec![cell(0)]);
        assert!(s.dropped_bytes > 0, "the half-record must be measurable");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn non_journal_and_torn_header_are_corrupt_resume() {
        let path = tmp("magic.journal");
        std::fs::write(&path, b"{\"not\": \"a journal\"}").unwrap();
        let err = read_journal(&path).unwrap_err().to_string();
        assert!(err.contains("bad magic"), "{err}");
        assert!(err.contains("corrupt resume"), "{err}");

        let mut torn = JOURNAL_MAGIC.to_vec();
        torn.extend_from_slice(&[40, 0, 0, 0, 9, 9]);
        std::fs::write(&path, &torn).unwrap();
        let err = read_journal(&path).unwrap_err().to_string();
        assert!(err.contains("header"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn json_shard_report_salvage_recovers_the_valid_prefix() {
        let report = ShardReport {
            spec_name: "t".into(),
            spec_digest: "d".into(),
            total_cells: 4,
            shard_index: 1,
            shard_count: 1,
            cells: vec![cell(0), cell(1), cell(2)],
        };
        let full = serde_json::to_string_pretty(&report).unwrap();
        // Tear the file in the middle of the last cell object.
        let torn = &full[..full.len() - 40];
        let s = salvage_json_shard_report(torn).expect("salvageable");
        assert_eq!(s.report.spec_digest, "d");
        assert_eq!(s.report.cells, vec![cell(0), cell(1)]);
        assert!(s.dropped_bytes > 0, "the torn object counts as dropped");
        assert!((s.dropped_bytes as usize) < torn.len());

        // Torn before any metadata → nothing salvageable.
        assert!(salvage_json_shard_report(&full[..10]).is_none());
    }
}
