//! The sharded sweep driver: shared-nothing partitions of a spec grid.
//!
//! A [`SweepDriver`] runs the cells of a [`CampaignSpec`] through the
//! [`CampaignEngine`](super::CampaignEngine). Sharding splits the cell
//! space by striding over global cell indices — shard `k` of `n` owns
//! every cell with `index % n == k - 1` — so shards are balanced even
//! when the grid's axes correlate with cost (e.g. seeds innermost).
//!
//! Every cell is a pure function of the spec and its grid coordinates:
//! the workflow, plan and engine seed all derive from the cell's own
//! seed, never from shard-local state. [`merge_shards`] therefore
//! reassembles any complete partition into a [`SweepReport`] that is
//! **byte-identical** to the unsharded sequential run, while refusing
//! overlapping shards, missing cells and shards of different specs.

use std::path::Path;
use std::sync::atomic::AtomicBool;
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use helios_platform::{presets, Platform};
use helios_sched::{AnnealingScheduler, LookaheadScheduler, Placement, Schedule, Scheduler};
use helios_sim::SimDuration;

use super::journal::{self, JournalHeader, JournalWriter, DEFAULT_POISON_LIMIT};
use super::spec::{family_class, CampaignSpec, DvfsKnob, SweepCell};
use super::{CampaignEngine, CampaignError};
use crate::exec::IncompleteReason;
use crate::resilience::ResilientRunner;
use crate::store::{StoreHeader, StoreWriter};
use crate::{Engine, EngineConfig, EngineError, FaultConfig};

/// One shard of a partition: `index` of `count`, 1-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    index: usize,
    count: usize,
}

impl ShardSpec {
    /// Creates shard `index` of `count` (1-based, `1 <= index <= count`).
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::InvalidShard`] (wrapped in
    /// [`EngineError::Campaign`]) when the pair is out of range.
    pub fn new(index: usize, count: usize) -> Result<ShardSpec, EngineError> {
        if count == 0 {
            return Err(CampaignError::InvalidShard(
                "shard count must be >= 1 (use 1/1 for the whole grid)".into(),
            )
            .into());
        }
        if index == 0 || index > count {
            return Err(CampaignError::InvalidShard(format!(
                "shard index must satisfy 1 <= K <= N, got {index}/{count}"
            ))
            .into());
        }
        Ok(ShardSpec { index, count })
    }

    /// The trivial partition: the whole grid as one shard.
    #[must_use]
    pub fn full() -> ShardSpec {
        ShardSpec { index: 1, count: 1 }
    }

    /// Parses the CLI form `K/N` (e.g. `2/4`).
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::InvalidShard`] for anything but two
    /// positive integers joined by `/` with `K <= N`.
    pub fn parse(s: &str) -> Result<ShardSpec, EngineError> {
        let bad = || {
            EngineError::Campaign(CampaignError::InvalidShard(format!(
                "bad shard {s:?}: expected K/N, e.g. 2/4"
            )))
        };
        let (k, n) = s.split_once('/').ok_or_else(bad)?;
        let index: usize = k.trim().parse().map_err(|_| bad())?;
        let count: usize = n.trim().parse().map_err(|_| bad())?;
        ShardSpec::new(index, count)
    }

    /// This shard's 1-based index.
    #[must_use]
    pub fn index(&self) -> usize {
        self.index
    }

    /// Total shards in the partition.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Whether this shard owns global cell `cell_index`.
    #[must_use]
    pub fn owns(&self, cell_index: usize) -> bool {
        cell_index % self.count == self.index - 1
    }
}

impl std::fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// The measured outcome of one grid cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellResult {
    /// Global cell index in spec expansion order.
    pub cell: usize,
    /// Workflow family name.
    pub family: String,
    /// Platform preset name.
    pub platform: String,
    /// Scheduler name.
    pub scheduler: String,
    /// Cell seed (drives generation and execution).
    pub seed: u64,
    /// Realized makespan, seconds.
    pub makespan_secs: f64,
    /// Schedule length ratio of the realized schedule.
    pub slr: f64,
    /// Total energy, joules.
    pub energy_j: f64,
    /// Inter-device transfers performed.
    pub transfers: usize,
    /// Bytes moved across links.
    pub transfer_bytes: f64,
    /// Injected fault count.
    pub failures: u32,
    /// Retries performed.
    pub retries: u32,
    /// Whether the cell ran to completion. `false` when the resilience
    /// policy lost the workload (retry budget exhausted or every
    /// feasible device permanently failed); such cells carry zero
    /// metrics and are excluded from summary means.
    #[serde(default = "default_true")]
    pub completed: bool,
    /// Executed device-seconds that did not contribute to completion
    /// (resilience cells only).
    #[serde(default)]
    pub wasted_work_secs: f64,
    /// Restart, backoff and re-planning overhead, seconds (resilience
    /// cells only).
    #[serde(default)]
    pub recovery_overhead_secs: f64,
    /// `makespan / fault_free_makespan - 1` (resilience cells only).
    #[serde(default)]
    pub makespan_degradation: f64,
    /// Transfers that fell back to the platform's default link because
    /// their primary route was down (resilience cells only).
    #[serde(default)]
    pub reroutes: u32,
    /// Time transfers spent stalled waiting for downed links to heal,
    /// seconds (resilience cells only).
    #[serde(default)]
    pub partition_downtime_secs: f64,
    /// Tasks re-executed because a permanent failure destroyed their
    /// data products (resilience cells only).
    #[serde(default)]
    pub rematerialized_tasks: u32,
    /// Dependency bytes re-staged for those re-executions (resilience
    /// cells only).
    #[serde(default)]
    pub rematerialized_bytes: f64,
    /// Why an incomplete cell stopped: `retries_exhausted`,
    /// `all_devices_lost`, `timed_out`, `infeasible`,
    /// `capacity_exhausted` or `poisoned`. `None` for completed cells.
    #[serde(default)]
    pub incomplete_reason: Option<String>,
    /// Device-seconds of live capacity integrated over the run
    /// (elasticity cells only).
    #[serde(default)]
    pub capacity_secs: f64,
    /// Spot-preemption kills executed (elasticity cells only).
    #[serde(default)]
    pub preemptions: u32,
    /// Queued task copies migrated off draining or preempted devices
    /// (elasticity cells only).
    #[serde(default)]
    pub drain_migrated_tasks: u32,
    /// Busy fraction of capacity contributed by devices that joined
    /// mid-run (elasticity cells only; 0 when nothing joined).
    #[serde(default)]
    pub join_utilization: f64,
}

fn default_true() -> bool {
    true
}

fn default_one() -> f64 {
    1.0
}

/// The result file one shard writes: its cells plus enough partition
/// metadata for [`merge_shards`] to detect overlap, gaps and spec
/// mismatches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardReport {
    /// Spec name, echoed for human consumption.
    pub spec_name: String,
    /// Digest of the canonical spec JSON (see `CampaignSpec::digest`).
    pub spec_digest: String,
    /// Cells in the full (unsharded) grid.
    pub total_cells: usize,
    /// This shard's 1-based index.
    pub shard_index: usize,
    /// Shards in this partition.
    pub shard_count: usize,
    /// Results for the cells this shard owns, in cell order.
    pub cells: Vec<CellResult>,
}

/// Mean metrics over the seed replicates of one grid combination.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SummaryRow {
    /// Workflow family name.
    pub family: String,
    /// Platform preset name.
    pub platform: String,
    /// Scheduler name.
    pub scheduler: String,
    /// Cells aggregated into this row.
    pub cells: usize,
    /// Mean makespan over completed cells, seconds. `None` (serialized
    /// as `null`) when every cell in the row is incomplete: there is
    /// nothing to average, and a missing mean must stay distinguishable
    /// from a genuine zero.
    #[serde(default)]
    pub mean_makespan_secs: Option<f64>,
    /// Mean schedule length ratio over completed cells; `None` for
    /// rows with no completed cells.
    #[serde(default)]
    pub mean_slr: Option<f64>,
    /// Mean energy over completed cells, joules; `None` for rows with
    /// no completed cells.
    #[serde(default)]
    pub mean_energy_j: Option<f64>,
    /// Fraction of the row's cells that ran to completion (1.0 without
    /// fault injection).
    #[serde(default = "default_one")]
    pub completion_probability: f64,
}

/// The merged, complete sweep: every cell plus per-combination means.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// Spec name.
    pub spec_name: String,
    /// Digest of the canonical spec JSON.
    pub spec_digest: String,
    /// Cells in the grid.
    pub total_cells: usize,
    /// Every cell result, sorted by global cell index.
    pub cells: Vec<CellResult>,
    /// Per-(family, platform, scheduler) means, in declaration order.
    pub summary: Vec<SummaryRow>,
}

/// Runs spec grids, whole or shard-by-shard.
#[derive(Debug, Clone, Copy, Default)]
pub struct SweepDriver {
    engine: CampaignEngine,
}

impl SweepDriver {
    /// Creates a driver running up to `jobs` cells concurrently
    /// (0 = one per hardware thread, 1 = sequential reference).
    #[must_use]
    pub fn new(jobs: usize) -> SweepDriver {
        SweepDriver {
            engine: CampaignEngine::new(jobs),
        }
    }

    /// Runs the whole grid and merges it — the unsharded reference
    /// path. Byte-identical to merging any complete shard partition.
    ///
    /// # Errors
    ///
    /// Propagates spec validation and cell execution errors.
    pub fn run(&self, spec: &CampaignSpec) -> Result<SweepReport, EngineError> {
        merge_shards(&[self.run_shard(spec, ShardSpec::full())?])
    }

    /// Runs the cells owned by `shard` (strided over global indices).
    ///
    /// # Errors
    ///
    /// Propagates spec validation and cell execution errors; the error
    /// reported is the one of the lowest-indexed failing cell.
    pub fn run_shard(
        &self,
        spec: &CampaignSpec,
        shard: ShardSpec,
    ) -> Result<ShardReport, EngineError> {
        Ok(self.resume_shard(spec, shard, None, None)?.report)
    }

    /// Runs `shard`, skipping cells already present in `prior` — the
    /// crash-resume path. Because every cell is a pure function of the
    /// spec and its coordinates, the resumed report is byte-identical
    /// to an uninterrupted run of the same shard.
    ///
    /// `limit` caps the number of cells *executed* by this invocation
    /// (the `HELIOS_SWEEP_ABORT_AFTER` crash-injection hook); cells cut
    /// off by the cap are reported in
    /// [`ResumeOutcome::remaining`].
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::ResumeMismatch`] (wrapped in
    /// [`EngineError::Campaign`]) when `prior` belongs to a different
    /// spec (name, digest or grid size mismatch), a different shard
    /// geometry, or claims cells the shard does not own — and
    /// propagates cell execution errors.
    pub fn resume_shard(
        &self,
        spec: &CampaignSpec,
        shard: ShardSpec,
        prior: Option<&ShardReport>,
        limit: Option<usize>,
    ) -> Result<ResumeOutcome, EngineError> {
        let cells = spec.expand()?;
        let total_cells = cells.len();
        let digest = spec.digest();

        let mut done: Vec<CellResult> = Vec::new();
        if let Some(p) = prior {
            if p.spec_name != spec.name || p.spec_digest != digest || p.total_cells != total_cells {
                return Err(CampaignError::ResumeMismatch(format!(
                    "refusing to resume: the existing report is from a different campaign \
                     (spec {:?}, digest {}, {} cells) than this spec ({:?}, digest {}, {} \
                     cells); delete the file or point --out elsewhere",
                    p.spec_name, p.spec_digest, p.total_cells, spec.name, digest, total_cells
                ))
                .into());
            }
            if p.shard_index != shard.index() || p.shard_count != shard.count() {
                return Err(CampaignError::ResumeMismatch(format!(
                    "refusing to resume: the existing report is shard {}/{}, but this run \
                     is shard {shard}; re-run with --shard {}/{} or start fresh",
                    p.shard_index, p.shard_count, p.shard_index, p.shard_count
                ))
                .into());
            }
            done = p.cells.clone();
            done.sort_by_key(|c| c.cell);
            if let Some(bad) = done
                .iter()
                .find(|c| !shard.owns(c.cell) || c.cell >= total_cells)
            {
                return Err(CampaignError::ResumeMismatch(format!(
                    "refusing to resume: the existing report claims cell {}, which shard \
                     {shard} of this {total_cells}-cell grid does not own",
                    bad.cell
                ))
                .into());
            }
            if let Some(pair) = done.windows(2).find(|p| p[0].cell == p[1].cell) {
                return Err(CampaignError::ResumeMismatch(format!(
                    "refusing to resume: the existing report lists cell {} twice",
                    pair[0].cell
                ))
                .into());
            }
        }

        let skipped = done.len();
        let mut pending: Vec<SweepCell> = cells
            .into_iter()
            .filter(|c| {
                shard.owns(c.index) && done.binary_search_by_key(&c.index, |d| d.cell).is_err()
            })
            .collect();
        let mut remaining = 0;
        if let Some(cap) = limit {
            if pending.len() > cap {
                remaining = pending.len() - cap;
                pending.truncate(cap);
            }
        }

        let fresh = self.engine.run(&pending, |_, cell| run_cell(spec, cell))?;
        done.extend(fresh);
        done.sort_by_key(|c| c.cell);
        Ok(ResumeOutcome {
            report: ShardReport {
                spec_name: spec.name.clone(),
                spec_digest: digest,
                total_cells,
                shard_index: shard.index(),
                shard_count: shard.count(),
                cells: done,
            },
            skipped,
            remaining,
        })
    }

    /// Runs `shard` against a write-ahead cell journal at `path` — the
    /// crash-consistent execution path. A fresh path is initialized
    /// with a checksummed header binding the spec digest and shard
    /// geometry; an existing journal is salvaged (torn tail truncated)
    /// and resumed. Every cell appends an fsync'd attempt record before
    /// executing and an fsync'd completion record after, so a `kill -9`
    /// at any instant — including mid-write — loses at most the cell in
    /// flight, and the compiled report is byte-identical to an
    /// uninterrupted run.
    ///
    /// Cells whose attempt count reaches the poison limit with no
    /// completion record have crashed the process that many times; they
    /// are quarantined as `completed = false,
    /// incomplete_reason = "poisoned"` instead of crash-looping.
    ///
    /// # Errors
    ///
    /// [`CampaignError::CorruptResume`] when `path` is not a journal or
    /// its header is unreadable; [`CampaignError::ResumeMismatch`] when
    /// the journal belongs to a different campaign or shard geometry —
    /// plus I/O and cell execution errors.
    pub fn run_journal(
        &self,
        spec: &CampaignSpec,
        shard: ShardSpec,
        path: &Path,
        opts: &JournalOptions<'_>,
    ) -> Result<JournalRun, EngineError> {
        let cells = spec.expand()?;
        let total_cells = cells.len();
        let digest = spec.digest();
        let header = JournalHeader {
            spec_name: spec.name.clone(),
            spec_digest: digest.clone(),
            total_cells,
            shard_index: shard.index(),
            shard_count: shard.count(),
        };

        let exists = std::fs::metadata(path)
            .map(|m| m.len() > 0)
            .unwrap_or(false);
        let (writer, mut done, salvaged_cells, dropped_bytes, pending_attempts);
        if exists {
            let salvage = journal::recover_journal(path)?;
            check_journal_header(&salvage.header, &header, shard)?;
            pending_attempts = salvage.pending_attempts();
            salvaged_cells = salvage.cells.len();
            dropped_bytes = salvage.dropped_bytes;
            done = salvage.cells;
            writer = JournalWriter::open_append(path, opts.tear_after)?;
        } else {
            writer = JournalWriter::create(path, &header, opts.tear_after)?;
            done = Vec::new();
            salvaged_cells = 0;
            dropped_bytes = 0;
            pending_attempts = Vec::new();
        }
        done.sort_by_key(|c| c.cell);
        if let Some(bad) = done
            .iter()
            .find(|c| !shard.owns(c.cell) || c.cell >= total_cells)
        {
            return Err(CampaignError::ResumeMismatch(format!(
                "refusing to resume: the journal claims cell {}, which shard \
                 {shard} of this {total_cells}-cell grid does not own",
                bad.cell
            ))
            .into());
        }

        // Quarantine: a cell that has crashed the process `poison_limit`
        // times becomes a zero-metric measurement, not a fourth attempt.
        let writer = Mutex::new(writer);
        let poison_limit = opts.poison_limit.unwrap_or(DEFAULT_POISON_LIMIT);
        let mut poisoned: Vec<usize> = Vec::new();
        for &(cell_idx, count) in &pending_attempts {
            if count < poison_limit || !shard.owns(cell_idx) || cell_idx >= total_cells {
                continue;
            }
            let result = poisoned_result(&cells[cell_idx]);
            writer
                .lock()
                .expect("no poisoned journal lock")
                .append_cell(&result)?;
            done.push(result);
            poisoned.push(cell_idx);
        }
        done.sort_by_key(|c| c.cell);

        let skipped = done.len();
        let mut pending: Vec<SweepCell> = cells
            .into_iter()
            .filter(|c| {
                shard.owns(c.index) && done.binary_search_by_key(&c.index, |d| d.cell).is_err()
            })
            .collect();
        let mut remaining = 0;
        if let Some(cap) = opts.limit {
            if pending.len() > cap {
                remaining = pending.len() - cap;
                pending.truncate(cap);
            }
        }

        let (fresh, drained) = self.engine.run_partial(&pending, opts.cancel, |_, cell| {
            {
                let mut w = writer.lock().expect("no poisoned journal lock");
                w.append_attempt(cell.index)?;
                if opts.crash_cell == Some(cell.index) {
                    return Err(EngineError::Config(format!(
                        "injected crash while executing cell {}",
                        cell.index
                    )));
                }
            }
            // The cell executes outside the journal lock; only the
            // durable appends serialize.
            let result = run_cell(spec, cell)?;
            writer
                .lock()
                .expect("no poisoned journal lock")
                .append_cell(&result)?;
            Ok(result)
        })?;
        remaining += pending.len() - fresh.len();

        done.extend(fresh);
        done.sort_by_key(|c| c.cell);
        Ok(JournalRun {
            report: ShardReport {
                spec_name: spec.name.clone(),
                spec_digest: digest,
                total_cells,
                shard_index: shard.index(),
                shard_count: shard.count(),
                cells: done,
            },
            skipped,
            remaining,
            salvaged_cells,
            dropped_bytes,
            poisoned,
            drained,
        })
    }

    /// Runs `shard` against a columnar store segment file at `path` —
    /// the append-as-you-go result path. A fresh path is initialized
    /// with a checksummed header binding the spec digest, shard
    /// geometry and row schema; an existing store is salvaged (torn
    /// tail truncated) and resumed, re-running only the missing cells.
    /// Finished cells are appended as columnar row groups, and the
    /// JSON [`ShardReport`] is compiled *from* those rows — byte
    /// identical to an uninterrupted `--out` run.
    ///
    /// # Errors
    ///
    /// [`CampaignError::CorruptResume`] when `path` is not a store or
    /// its header is unreadable; [`CampaignError::ResumeMismatch`] when
    /// the store belongs to a different campaign or shard geometry —
    /// plus I/O and cell execution errors.
    pub fn run_store(
        &self,
        spec: &CampaignSpec,
        shard: ShardSpec,
        path: &Path,
        opts: &StoreOptions<'_>,
    ) -> Result<StoreRun, EngineError> {
        let cells = spec.expand()?;
        let total_cells = cells.len();
        let digest = spec.digest();
        let header = StoreHeader {
            spec_name: spec.name.clone(),
            spec_digest: digest.clone(),
            total_cells,
            shard_index: shard.index(),
            shard_count: shard.count(),
            columns: crate::store::schema_names(),
        };

        let exists = std::fs::metadata(path)
            .map(|m| m.len() > 0)
            .unwrap_or(false);
        let (writer, mut done, salvaged_rows, dropped_bytes);
        if exists {
            let salvage = crate::store::recover_store(path)?;
            check_store_header(&salvage.header, &header, shard)?;
            salvaged_rows = salvage.cells.len();
            dropped_bytes = salvage.dropped_bytes;
            done = salvage.cells;
            writer = StoreWriter::open_append(path)?;
        } else {
            writer = StoreWriter::create(path, &header)?;
            done = Vec::new();
            salvaged_rows = 0;
            dropped_bytes = 0;
        }
        done.sort_by_key(|c| c.cell);
        if let Some(bad) = done
            .iter()
            .find(|c| !shard.owns(c.cell) || c.cell >= total_cells)
        {
            return Err(CampaignError::ResumeMismatch(format!(
                "refusing to resume: the store claims cell {}, which shard \
                 {shard} of this {total_cells}-cell grid does not own",
                bad.cell
            ))
            .into());
        }

        let skipped = done.len();
        let mut pending: Vec<SweepCell> = cells
            .into_iter()
            .filter(|c| {
                shard.owns(c.index) && done.binary_search_by_key(&c.index, |d| d.cell).is_err()
            })
            .collect();
        let mut remaining = 0;
        if let Some(cap) = opts.limit {
            if pending.len() > cap {
                remaining = pending.len() - cap;
                pending.truncate(cap);
            }
        }

        let writer = Mutex::new(writer);
        let run: Result<(Vec<CellResult>, bool), EngineError> =
            self.engine.run_partial(&pending, opts.cancel, |_, cell| {
                // The cell executes outside the store lock; only the
                // columnar appends serialize.
                let result = run_cell(spec, cell)?;
                writer
                    .lock()
                    .expect("no poisoned store lock")
                    .append_cell(&result)?;
                Ok(result)
            });
        // Flush the buffered group tail even when the run failed: rows
        // already appended must become durable before the error (which
        // takes precedence) propagates.
        let flush = writer.lock().expect("no poisoned store lock").flush();
        let (fresh, drained) = run?;
        flush?;
        remaining += pending.len() - fresh.len();

        done.extend(fresh);
        done.sort_by_key(|c| c.cell);
        Ok(StoreRun {
            report: ShardReport {
                spec_name: spec.name.clone(),
                spec_digest: digest,
                total_cells,
                shard_index: shard.index(),
                shard_count: shard.count(),
                cells: done,
            },
            skipped,
            remaining,
            salvaged_rows,
            dropped_bytes,
            drained,
        })
    }
}

/// Refuses a store whose header belongs to a different campaign or
/// shard geometry, with the same actionable messages as journal resume.
fn check_store_header(
    found: &StoreHeader,
    expected: &StoreHeader,
    shard: ShardSpec,
) -> Result<(), EngineError> {
    if found.spec_name != expected.spec_name
        || found.spec_digest != expected.spec_digest
        || found.total_cells != expected.total_cells
    {
        return Err(CampaignError::ResumeMismatch(format!(
            "refusing to resume: the existing store is from a different campaign \
             (spec {:?}, digest {}, {} cells) than this spec ({:?}, digest {}, {} \
             cells); delete the file or point --store elsewhere",
            found.spec_name,
            found.spec_digest,
            found.total_cells,
            expected.spec_name,
            expected.spec_digest,
            expected.total_cells
        ))
        .into());
    }
    if found.shard_index != shard.index() || found.shard_count != shard.count() {
        return Err(CampaignError::ResumeMismatch(format!(
            "refusing to resume: the existing store is shard {}/{}, but this run \
             is shard {shard}; re-run with --shard {}/{} or start fresh",
            found.shard_index, found.shard_count, found.shard_index, found.shard_count
        ))
        .into());
    }
    Ok(())
}

/// Refuses a journal whose header belongs to a different campaign or
/// shard geometry, with the same actionable messages as JSON resume.
fn check_journal_header(
    found: &JournalHeader,
    expected: &JournalHeader,
    shard: ShardSpec,
) -> Result<(), EngineError> {
    if found.spec_name != expected.spec_name
        || found.spec_digest != expected.spec_digest
        || found.total_cells != expected.total_cells
    {
        return Err(CampaignError::ResumeMismatch(format!(
            "refusing to resume: the existing journal is from a different campaign \
             (spec {:?}, digest {}, {} cells) than this spec ({:?}, digest {}, {} \
             cells); delete the file or point --journal elsewhere",
            found.spec_name,
            found.spec_digest,
            found.total_cells,
            expected.spec_name,
            expected.spec_digest,
            expected.total_cells
        ))
        .into());
    }
    if found.shard_index != shard.index() || found.shard_count != shard.count() {
        return Err(CampaignError::ResumeMismatch(format!(
            "refusing to resume: the existing journal is shard {}/{}, but this run \
             is shard {shard}; re-run with --shard {}/{} or start fresh",
            found.shard_index, found.shard_count, found.shard_index, found.shard_count
        ))
        .into());
    }
    Ok(())
}

/// The quarantine measurement for a cell that repeatedly killed the
/// process: zero metrics, `completed = false`, the pinned `poisoned`
/// reason.
fn poisoned_result(cell: &SweepCell) -> CellResult {
    let mut result = blank_result(cell);
    result.completed = false;
    result.incomplete_reason = Some(IncompleteReason::Poisoned.as_str().to_owned());
    result
}

/// What [`SweepDriver::resume_shard`] did: the merged report plus how
/// much work was reused and how much is still missing.
#[derive(Debug, Clone, PartialEq)]
pub struct ResumeOutcome {
    /// The shard report after this invocation (partial iff
    /// `remaining > 0`).
    pub report: ShardReport,
    /// Cells taken over from the prior report instead of re-run.
    pub skipped: usize,
    /// Owned cells still missing (nonzero only when a `limit` cut the
    /// run short).
    pub remaining: usize,
}

/// Knobs for [`SweepDriver::run_journal`]: the drain flag plus the
/// crash-injection hooks. Hooks are explicit fields (not environment
/// variables) so parallel tests cannot race on process state; the CLI
/// translates its `HELIOS_*` variables into these.
#[derive(Debug, Default)]
pub struct JournalOptions<'a> {
    /// Cap on cells *executed* by this invocation (the
    /// `HELIOS_SWEEP_ABORT_AFTER` crash-injection hook).
    pub limit: Option<usize>,
    /// Cooperative drain: once set, in-flight cells finish and are
    /// journaled, no new cells start ([`JournalRun::drained`] reports
    /// the cut). The CLI arms this from SIGINT/SIGTERM.
    pub cancel: Option<&'a AtomicBool>,
    /// Synthetic crash: error out right after durably appending the
    /// attempt record for this global cell index — the repeatable
    /// "this cell kills the process" poisoning scenario.
    pub crash_cell: Option<usize>,
    /// Torn-write injection: the Nth record append (0-based, attempts
    /// and completions counted together) persists only half its bytes
    /// and fails (the `HELIOS_JOURNAL_TORN_WRITE` hook).
    pub tear_after: Option<u64>,
    /// Attempts without completion before a cell is quarantined;
    /// `None` means [`DEFAULT_POISON_LIMIT`].
    pub poison_limit: Option<u32>,
}

/// What [`SweepDriver::run_journal`] did: the compiled report plus the
/// salvage, quarantine and drain accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalRun {
    /// The shard report compiled from the journal after this
    /// invocation (partial iff `remaining > 0` or `drained`).
    pub report: ShardReport,
    /// Cells taken over from the journal instead of re-run (salvaged
    /// completions plus freshly quarantined cells).
    pub skipped: usize,
    /// Owned cells still missing (a `limit` or drain cut the run).
    pub remaining: usize,
    /// Completion records salvaged from the existing journal.
    pub salvaged_cells: usize,
    /// Torn-tail bytes truncated during salvage.
    pub dropped_bytes: u64,
    /// Cells quarantined as poisoned by *this* invocation, sorted.
    pub poisoned: Vec<usize>,
    /// Whether a drain request cut the run short.
    pub drained: bool,
}

/// Knobs for [`SweepDriver::run_store`]: the drain flag plus the
/// crash-injection cap, mirroring [`JournalOptions`] for the columnar
/// result path.
#[derive(Debug, Default)]
pub struct StoreOptions<'a> {
    /// Cap on cells *executed* by this invocation (the
    /// `HELIOS_SWEEP_ABORT_AFTER` crash-injection hook).
    pub limit: Option<usize>,
    /// Cooperative drain: once set, in-flight cells finish and are
    /// appended, no new cells start ([`StoreRun::drained`] reports the
    /// cut). The CLI arms this from SIGINT/SIGTERM.
    pub cancel: Option<&'a AtomicBool>,
}

/// What [`SweepDriver::run_store`] did: the compiled report plus the
/// salvage and drain accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreRun {
    /// The shard report compiled from the store after this invocation
    /// (partial iff `remaining > 0` or `drained`).
    pub report: ShardReport,
    /// Cells taken over from the store instead of re-run.
    pub skipped: usize,
    /// Owned cells still missing (a `limit` or drain cut the run).
    pub remaining: usize,
    /// Rows salvaged from the existing store file.
    pub salvaged_rows: usize,
    /// Torn-tail bytes truncated during salvage.
    pub dropped_bytes: u64,
    /// Whether a drain request cut the run short.
    pub drained: bool,
}

/// Builds the scheduler for one cell, honoring the spec's per-scheduler
/// tuning overrides; schedulers without an override come from the
/// default lineup, so a knob-free spec is byte-identical to one swept
/// before the knobs existed. Shared with the [`fuzz`](crate::fuzz)
/// oracles, which must plan cells exactly the way the sweep does.
pub(crate) fn cell_scheduler(spec: &CampaignSpec, name: &str) -> Option<Box<dyn Scheduler>> {
    if let Some(params) = &spec.scheduler_params {
        match name {
            "annealing" => {
                if let Some(iterations) = params.annealing_iterations {
                    return Some(Box::new(AnnealingScheduler::new(iterations, 0)));
                }
            }
            "lookahead" => {
                if let Some(depth) = params.lookahead_depth {
                    return Some(Box::new(LookaheadScheduler::with_depth(depth)));
                }
            }
            _ => {}
        }
    }
    helios_sched::scheduler_by_name(name)
}

/// Executes one grid cell: generate, plan, apply the DVFS knob, run.
fn run_cell(spec: &CampaignSpec, cell: &SweepCell) -> Result<CellResult, EngineError> {
    let platform = presets::by_name(&cell.platform)
        .ok_or_else(|| EngineError::Config(format!("unknown platform {:?}", cell.platform)))?;
    let class = family_class(&cell.family)
        .ok_or_else(|| EngineError::Config(format!("unknown family {:?}", cell.family)))?;
    let scheduler = cell_scheduler(spec, &cell.scheduler)
        .ok_or_else(|| EngineError::Config(format!("unknown scheduler {:?}", cell.scheduler)))?;

    let wf = class.generate(spec.tasks, cell.seed)?;

    let faults = match &spec.faults {
        None => None,
        Some(fk) => Some(FaultConfig::new(
            fk.mtbf_secs,
            SimDuration::from_secs(fk.restart_overhead_secs),
            fk.max_retries,
        )?),
    };
    // Elastic cells always run through the resilient runner: departures
    // feed its recovery machinery. A spec with capacity events but no
    // `resilience` block gets a benign stack — failures effectively
    // never fire, departures recover through flat retry.
    let elasticity = spec.elasticity_config()?;
    let mut resilience = spec.resilience_config()?;
    if elasticity.is_some() && resilience.is_none() {
        resilience = Some(benign_resilience());
    }
    let config = EngineConfig {
        seed: cell.seed,
        noise_cv: spec.noise_cv,
        link_contention: spec.link_contention,
        data_caching: spec.data_caching,
        faults,
        resilience,
        elasticity,
        step_budget: cell_step_budget(spec)?,
        ..Default::default()
    };

    let mut result = blank_result(cell);

    let resilient = config.resilience.is_some();
    // Planning and execution share one error funnel: an infeasible
    // family × platform pairing fails in `schedule`, everything else in
    // the runner, and both must become measurements when classifiable.
    let outcome = scheduler
        .schedule(&wf, &platform)
        .map_err(EngineError::from)
        .and_then(|plan| apply_dvfs(spec.dvfs, &platform, plan))
        .and_then(|plan| {
            if resilient {
                ResilientRunner::new(config).execute_plan(&platform, &wf, &plan)
            } else {
                Engine::new(config).execute_plan(&platform, &wf, &plan)
            }
        });
    let report = match outcome {
        Ok(report) => report,
        // A lost, stalled or never-placeable workload is a measurement,
        // not a driver error: the cell records completed = false, zero
        // metrics and why it stopped, and its failure depresses the
        // row's completion probability. All paths classify through
        // [`IncompleteReason`], the one normalized vocabulary — no
        // runner gets to invent its own reason strings.
        Err(e) => match IncompleteReason::from_error(&e) {
            Some(reason) => {
                result.completed = false;
                result.incomplete_reason = Some(reason.as_str().to_owned());
                return Ok(result);
            }
            None => return Err(e),
        },
    };

    result.makespan_secs = report.makespan().as_secs();
    result.slr = report.slr(&wf, &platform)?;
    result.energy_j = report.energy().total_j();
    result.transfers = report.transfers().count;
    result.transfer_bytes = report.transfers().bytes;
    result.failures = report.failures();
    result.retries = report.retries();
    if let Some(m) = report.resilience() {
        result.wasted_work_secs = m.wasted_work_secs;
        result.recovery_overhead_secs = m.recovery_overhead_secs;
        result.makespan_degradation = m.makespan_degradation;
        result.reroutes = m.reroutes;
        result.partition_downtime_secs = m.partition_downtime_secs;
        result.rematerialized_tasks = m.rematerialized_tasks;
        result.rematerialized_bytes = m.rematerialized_bytes;
    }
    if let Some(m) = report.elasticity() {
        result.capacity_secs = m.capacity_secs;
        result.preemptions = m.preemptions;
        result.drain_migrated_tasks = m.drain_migrated_tasks;
        result.join_utilization = m.join_utilization;
    }
    Ok(result)
}

/// A zero-metric result carrying only the cell's coordinates: the
/// starting point of [`run_cell`] and the body of quarantine records.
fn blank_result(cell: &SweepCell) -> CellResult {
    CellResult {
        cell: cell.index,
        family: cell.family.clone(),
        platform: cell.platform.clone(),
        scheduler: cell.scheduler.clone(),
        seed: cell.seed,
        makespan_secs: 0.0,
        slr: 0.0,
        energy_j: 0.0,
        transfers: 0,
        transfer_bytes: 0.0,
        failures: 0,
        retries: 0,
        completed: true,
        wasted_work_secs: 0.0,
        recovery_overhead_secs: 0.0,
        makespan_degradation: 0.0,
        reroutes: 0,
        partition_downtime_secs: 0.0,
        rematerialized_tasks: 0,
        rematerialized_bytes: 0.0,
        incomplete_reason: None,
        capacity_secs: 0.0,
        preemptions: 0,
        drain_migrated_tasks: 0,
        join_utilization: 0.0,
    }
}

/// The resilience stack backing elastic cells of a spec without a
/// `resilience` block: an astronomical MTTF keeps the failure machinery
/// quiet, and flat retry with a generous budget recovers work lost to
/// departures.
fn benign_resilience() -> crate::resilience::ResilienceConfig {
    use crate::resilience::{FailureModel, RecoveryPolicy, ResilienceConfig};
    ResilienceConfig::new(
        FailureModel {
            mttf_secs: 1e12,
            weibull_shape: None,
            degraded_prob: 0.0,
            permanent_prob: 0.0,
            degraded_slowdown: 2.0,
            degraded_repair_secs: 1.0,
            restart_overhead_secs: 0.0,
        },
        RecoveryPolicy::RetryBackoff {
            base_secs: 0.0,
            factor: 2.0,
            cap_secs: 0.0,
            max_retries: 100,
        },
    )
}

/// The per-cell simulated-event watchdog budget: the
/// `HELIOS_CELL_STEP_BUDGET` environment variable when set (an
/// operational override for stuck campaigns), else the spec's
/// `cell_step_budget`.
fn cell_step_budget(spec: &CampaignSpec) -> Result<Option<u64>, EngineError> {
    match std::env::var("HELIOS_CELL_STEP_BUDGET") {
        Ok(v) if !v.trim().is_empty() => v.trim().parse::<u64>().map(Some).map_err(|_| {
            EngineError::Config(format!(
                "HELIOS_CELL_STEP_BUDGET must be a non-negative integer, got {v:?}"
            ))
        }),
        _ => Ok(spec.cell_step_budget),
    }
}

/// Rewrites plan placements to the knob's DVFS level. The engine
/// re-derives timing from device order and levels, so the stale
/// start/finish times in the rewritten plan are harmless.
fn apply_dvfs(
    knob: DvfsKnob,
    platform: &Platform,
    plan: Schedule,
) -> Result<Schedule, EngineError> {
    if knob == DvfsKnob::Nominal {
        return Ok(plan);
    }
    let placements = plan
        .placements()
        .iter()
        .map(|p| {
            let device = platform.device(p.device)?;
            let level = match knob {
                DvfsKnob::Powersave => device.min_level(),
                DvfsKnob::Performance | DvfsKnob::Nominal => device.nominal_level(),
            };
            Ok(Placement { level, ..*p })
        })
        .collect::<Result<Vec<Placement>, EngineError>>()?;
    Ok(Schedule::new(placements)?)
}

/// Recombines shard result files into the aggregate sweep report.
///
/// Accepts the shards in any order; the output depends only on the
/// cell set, so merging `[1/2, 2/2]` equals merging `[2/2, 1/2]`
/// equals the unsharded run, byte for byte.
///
/// # Errors
///
/// Returns [`CampaignError::MergeConflict`] (wrapped in
/// [`EngineError::Campaign`]) when
///
/// * no shards are given,
/// * shards come from different specs (name/digest/size mismatch),
/// * two shards claim the same cell (overlap), or
/// * the union does not cover the grid (gap), e.g. a missing shard.
pub fn merge_shards(shards: &[ShardReport]) -> Result<SweepReport, EngineError> {
    let first = shards.first().ok_or_else(|| {
        EngineError::Campaign(CampaignError::MergeConflict(
            "cannot merge zero shard reports; pass at least one --in file".into(),
        ))
    })?;
    for s in shards {
        if s.spec_name != first.spec_name
            || s.spec_digest != first.spec_digest
            || s.total_cells != first.total_cells
        {
            return Err(CampaignError::MergeConflict(format!(
                "shard reports disagree on the spec: {:?} (digest {}, {} cells) vs \
                 {:?} (digest {}, {} cells) — merge only shards of one campaign run",
                first.spec_name,
                first.spec_digest,
                first.total_cells,
                s.spec_name,
                s.spec_digest,
                s.total_cells
            ))
            .into());
        }
    }

    let mut cells: Vec<CellResult> = shards.iter().flat_map(|s| s.cells.clone()).collect();
    cells.sort_by_key(|c| c.cell);
    for pair in cells.windows(2) {
        if pair[0].cell == pair[1].cell {
            return Err(CampaignError::MergeConflict(format!(
                "overlapping shards: cell {} appears more than once",
                pair[0].cell
            ))
            .into());
        }
    }
    if let Some(out_of_range) = cells.iter().find(|c| c.cell >= first.total_cells) {
        return Err(CampaignError::MergeConflict(format!(
            "shard cell index {} is outside the {}-cell grid",
            out_of_range.cell, first.total_cells
        ))
        .into());
    }
    if cells.len() != first.total_cells {
        let have: Vec<usize> = cells.iter().map(|c| c.cell).collect();
        let missing: Vec<usize> = (0..first.total_cells)
            .filter(|i| have.binary_search(i).is_err())
            .take(8)
            .collect();
        return Err(CampaignError::MergeConflict(format!(
            "incomplete partition: {} of {} cells present, missing cells {missing:?}{} — \
             merge every shard of the partition",
            cells.len(),
            first.total_cells,
            if first.total_cells - cells.len() > missing.len() {
                "…"
            } else {
                ""
            }
        ))
        .into());
    }

    let summary = summarize(&cells);
    Ok(SweepReport {
        spec_name: first.spec_name.clone(),
        spec_digest: first.spec_digest.clone(),
        total_cells: first.total_cells,
        cells,
        summary,
    })
}

/// Means per (family, platform, scheduler), rows in first-seen order —
/// i.e. spec declaration order, since cells are sorted by index.
///
/// Means cover completed cells only (a lost workload has no makespan);
/// incomplete cells count toward the row's size and depress its
/// completion probability instead. A row where *every* cell is
/// incomplete carries `None` means: `0.0` would be indistinguishable
/// from a genuinely instant run.
/// Since PR 10 this is a group-by plan over the columnar executor
/// pipeline — `SUMMARY_KEYS`/`SUMMARY_AGGREGATES` in
/// [`crate::store::schema`] are the single description of the keys,
/// the aggregates and the null-mean rule, shared with `helios query`
/// and the CLI printer. The plan accumulates sums in the same
/// cell-sorted order as the original sequential loop, so its output is
/// bit-identical.
fn summarize(cells: &[CellResult]) -> Vec<SummaryRow> {
    crate::store::summarize_cells(cells)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_spec_parses_and_strides() {
        let s = ShardSpec::parse("2/4").unwrap();
        assert_eq!((s.index(), s.count()), (2, 4));
        assert_eq!(s.to_string(), "2/4");
        assert!(s.owns(1) && s.owns(5) && !s.owns(0) && !s.owns(2));
        assert!(ShardSpec::full().owns(0) && ShardSpec::full().owns(123));
        for bad in ["0/4", "5/4", "x/y", "3", "1/0", "/", "2/"] {
            assert!(ShardSpec::parse(bad).is_err(), "{bad} must not parse");
        }
    }

    #[test]
    fn every_partition_covers_every_cell_exactly_once() {
        for n in 1..=5usize {
            for cell in 0..23usize {
                let owners = (1..=n)
                    .filter(|&k| ShardSpec::new(k, n).unwrap().owns(cell))
                    .count();
                assert_eq!(owners, 1, "cell {cell} with {n} shards");
            }
        }
    }

    #[test]
    fn merge_rejects_bad_partitions() {
        let shard = |index: usize, count: usize, cells: Vec<usize>| ShardReport {
            spec_name: "t".into(),
            spec_digest: "d".into(),
            total_cells: 4,
            shard_index: index,
            shard_count: count,
            cells: cells
                .into_iter()
                .map(|i| CellResult {
                    cell: i,
                    family: "montage".into(),
                    platform: "workstation".into(),
                    scheduler: "heft".into(),
                    seed: i as u64,
                    makespan_secs: 1.0,
                    slr: 1.0,
                    energy_j: 1.0,
                    transfers: 0,
                    transfer_bytes: 0.0,
                    failures: 0,
                    retries: 0,
                    completed: true,
                    wasted_work_secs: 0.0,
                    recovery_overhead_secs: 0.0,
                    makespan_degradation: 0.0,
                    reroutes: 0,
                    partition_downtime_secs: 0.0,
                    rematerialized_tasks: 0,
                    rematerialized_bytes: 0.0,
                    incomplete_reason: None,
                    capacity_secs: 0.0,
                    preemptions: 0,
                    drain_migrated_tasks: 0,
                    join_utilization: 0.0,
                })
                .collect(),
        };

        let err = merge_shards(&[]).unwrap_err().to_string();
        assert!(err.contains("zero shard"), "{err}");

        let err = merge_shards(&[shard(1, 2, vec![0, 2]), shard(1, 2, vec![0, 2])])
            .unwrap_err()
            .to_string();
        assert!(err.contains("overlapping"), "{err}");

        let err = merge_shards(&[shard(1, 2, vec![0, 2])])
            .unwrap_err()
            .to_string();
        assert!(err.contains("missing cells [1, 3]"), "{err}");

        let mut other = shard(2, 2, vec![1, 3]);
        other.spec_digest = "different".into();
        let err = merge_shards(&[shard(1, 2, vec![0, 2]), other])
            .unwrap_err()
            .to_string();
        assert!(err.contains("disagree"), "{err}");

        let err = merge_shards(&[shard(1, 1, vec![0, 1, 2, 7])])
            .unwrap_err()
            .to_string();
        assert!(err.contains("outside"), "{err}");

        let ok = merge_shards(&[shard(2, 2, vec![1, 3]), shard(1, 2, vec![0, 2])]).unwrap();
        assert_eq!(ok.cells.len(), 4);
        assert_eq!(ok.summary.len(), 1);
        assert_eq!(ok.summary[0].cells, 4);
        assert_eq!(ok.summary[0].completion_probability, 1.0);
    }

    fn spec_json(extra: &str) -> String {
        format!(
            r#"{{
                "name": "t8",
                "families": ["montage"],
                "platforms": ["workstation"],
                "schedulers": ["heft"],
                "seeds": {{"base": 0, "count": 4}},
                "tasks": 30,
                "noise_cv": 0.1{extra}
            }}"#
        )
    }

    fn resilient_spec(policy: &str) -> CampaignSpec {
        CampaignSpec::from_json(&spec_json(&format!(
            r#", "resilience": {{
                "mttf_secs": 0.02,
                "degraded_prob": 0.1,
                "degraded_repair_secs": 0.01,
                "restart_overhead_secs": 0.0005,
                "policy": {policy}
            }}"#
        )))
        .expect("spec parses")
    }

    #[test]
    fn resilient_cells_are_jobs_and_shard_invariant() {
        let spec = resilient_spec(
            r#"{"kind": "retry-backoff", "base_secs": 0.0005, "factor": 2.0,
                "cap_secs": 0.005, "max_retries": 10000}"#,
        );
        let seq = SweepDriver::new(1).run(&spec).unwrap();
        assert!(seq.cells.iter().all(|c| c.completed));
        assert!(
            seq.cells.iter().any(|c| c.failures > 0),
            "a 20 ms MTTF must inject failures somewhere in the grid"
        );
        assert!(seq.cells.iter().all(|c| c.makespan_degradation >= 0.0));
        assert!(
            seq.cells
                .iter()
                .any(|c| c.wasted_work_secs > 0.0 || c.recovery_overhead_secs > 0.0),
            "recovery must cost something somewhere"
        );
        assert_eq!(seq.summary[0].completion_probability, 1.0);

        let par = SweepDriver::new(4).run(&spec).unwrap();
        assert_eq!(seq, par, "--jobs must not affect resilient results");

        let s1 = SweepDriver::new(2)
            .run_shard(&spec, ShardSpec::new(1, 2).unwrap())
            .unwrap();
        let s2 = SweepDriver::new(1)
            .run_shard(&spec, ShardSpec::new(2, 2).unwrap())
            .unwrap();
        let merged = merge_shards(&[s2, s1]).unwrap();
        assert_eq!(seq, merged, "shard partitioning must not affect results");
    }

    #[test]
    fn lost_workloads_depress_completion_probability() {
        // A 1 ms MTTF with a 1-retry budget is lethal for most seeds;
        // lost cells must become measurements, not errors.
        let spec = resilient_spec(
            r#"{"kind": "retry-backoff", "base_secs": 0.0, "factor": 2.0,
                "cap_secs": 0.0, "max_retries": 1}"#,
        );
        let spec = CampaignSpec {
            resilience: spec.resilience.map(|mut rk| {
                rk.mttf_secs = 0.001;
                rk
            }),
            ..spec
        };
        let report = SweepDriver::new(1).run(&spec).unwrap();
        let lost: Vec<&CellResult> = report.cells.iter().filter(|c| !c.completed).collect();
        assert!(!lost.is_empty(), "a 1 ms MTTF must lose some cell");
        for c in &lost {
            assert_eq!(c.makespan_secs, 0.0, "lost cells carry zero metrics");
            assert_eq!(c.slr, 0.0);
            assert_eq!(c.incomplete_reason.as_deref(), Some("retries_exhausted"));
        }
        assert!(
            report
                .cells
                .iter()
                .filter(|c| c.completed)
                .all(|c| c.incomplete_reason.is_none()),
            "completed cells carry no incomplete reason"
        );
        let row = &report.summary[0];
        assert!(row.completion_probability < 1.0);
        assert_eq!(
            row.completion_probability,
            (report.cells.len() - lost.len()) as f64 / report.cells.len() as f64
        );
        if lost.len() < report.cells.len() {
            assert!(
                row.mean_makespan_secs.expect("some cell completed") > 0.0,
                "means cover completed cells only"
            );
        }
    }

    #[test]
    fn rows_with_no_completed_cells_have_null_means() {
        // A lethal failure model (sub-millisecond MTTF, one retry) loses
        // every cell: the row must carry absent means — `0.0` would be
        // indistinguishable from a genuinely instant run — and the JSON
        // form must say `null`, not `0.0`.
        let spec = resilient_spec(
            r#"{"kind": "retry-backoff", "base_secs": 0.0, "factor": 2.0,
                "cap_secs": 0.0, "max_retries": 1}"#,
        );
        let spec = CampaignSpec {
            resilience: spec.resilience.map(|mut rk| {
                rk.mttf_secs = 0.0001;
                rk
            }),
            ..spec
        };
        let report = SweepDriver::new(1).run(&spec).unwrap();
        assert!(
            report.cells.iter().all(|c| !c.completed),
            "a 0.1 ms MTTF with one retry must lose every cell"
        );
        let row = &report.summary[0];
        assert_eq!(row.completion_probability, 0.0);
        assert_eq!(row.mean_makespan_secs, None);
        assert_eq!(row.mean_slr, None);
        assert_eq!(row.mean_energy_j, None);
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"mean_makespan_secs\":null"), "{json}");
        // And the null round-trips.
        let back: SweepReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn infeasible_combinations_are_measurements_not_errors() {
        // cybershake working sets exceed every edge_soc device: the
        // planner can never place them. Such cells must come back as
        // incomplete measurements with the pinned `infeasible` reason —
        // a grid mixing heavyweight families with small platforms would
        // otherwise crash the whole sweep.
        let spec = CampaignSpec::from_json(
            r#"{
                "name": "infeasible",
                "families": ["cybershake", "montage"],
                "platforms": ["edge_soc"],
                "schedulers": ["heft"],
                "seeds": {"base": 0, "count": 2},
                "tasks": 30,
                "noise_cv": 0.1
            }"#,
        )
        .unwrap();
        let report = SweepDriver::new(1).run(&spec).unwrap();
        let (cyber, montage): (Vec<&CellResult>, Vec<&CellResult>) =
            report.cells.iter().partition(|c| c.family == "cybershake");
        assert!(
            cyber.iter().all(|c| !c.completed
                && c.incomplete_reason.as_deref() == Some("infeasible")
                && c.makespan_secs == 0.0),
            "infeasible cells are zero-metric measurements"
        );
        assert!(
            montage.iter().all(|c| c.completed),
            "feasible families in the same grid still run"
        );
        let cyber_row = report
            .summary
            .iter()
            .find(|r| r.family == "cybershake")
            .unwrap();
        assert_eq!(cyber_row.completion_probability, 0.0);
        assert_eq!(cyber_row.mean_makespan_secs, None);
        // Jobs-invariance holds for infeasible cells too.
        let par = SweepDriver::new(4).run(&spec).unwrap();
        assert_eq!(report, par);
    }

    #[test]
    fn step_budget_turns_grinding_cells_into_timed_out_measurements() {
        // 10 simulated events cannot finish a 30-task montage: every
        // cell must come back as a measurement, not an error — for both
        // the plain-engine and the resilient-runner cell paths.
        let plain = CampaignSpec::from_json(&spec_json(r#", "cell_step_budget": 10"#)).unwrap();
        let resilient = CampaignSpec {
            cell_step_budget: Some(10),
            ..resilient_spec(
                r#"{"kind": "retry-backoff", "base_secs": 0.0005, "factor": 2.0,
                    "cap_secs": 0.005, "max_retries": 10000}"#,
            )
        };
        for spec in [plain, resilient] {
            let report = SweepDriver::new(1).run(&spec).unwrap();
            assert!(
                report.cells.iter().all(|c| !c.completed
                    && c.incomplete_reason.as_deref() == Some("timed_out")
                    && c.makespan_secs == 0.0),
                "every budget-starved cell is a timed-out measurement"
            );
            assert_eq!(report.summary[0].completion_probability, 0.0);
            let par = SweepDriver::new(4).run(&spec).unwrap();
            assert_eq!(report, par, "timed-out cells are jobs-invariant");
        }
    }

    #[test]
    fn every_incomplete_reason_comes_from_the_normalized_vocabulary() {
        // Three ways a cell can stop short, across both cell paths:
        // legacy flat faults on the plain engine, a lethal failure model
        // on the resilient runner, and the step-budget watchdog. Every
        // reason string must come from `IncompleteReason::as_str` — no
        // path gets to invent free-form prose.
        let legacy = CampaignSpec::from_json(&spec_json(
            r#", "faults": {"mtbf_secs": 0.0005, "max_retries": 1}"#,
        ))
        .unwrap();
        let lethal_policy = resilient_spec(
            r#"{"kind": "retry-backoff", "base_secs": 0.0, "factor": 2.0,
                "cap_secs": 0.0, "max_retries": 1}"#,
        );
        let lethal = CampaignSpec {
            resilience: lethal_policy.resilience.map(|mut rk| {
                rk.mttf_secs = 0.001;
                rk
            }),
            ..lethal_policy
        };
        let starved = CampaignSpec::from_json(&spec_json(r#", "cell_step_budget": 10"#)).unwrap();

        let legal: Vec<&str> = IncompleteReason::ALL.iter().map(|r| r.as_str()).collect();
        for (fixture, spec) in [("legacy", legacy), ("lethal", lethal), ("starved", starved)] {
            let report = SweepDriver::new(1).run(&spec).unwrap();
            let mut incomplete = 0;
            for c in &report.cells {
                match &c.incomplete_reason {
                    Some(reason) => {
                        assert!(!c.completed, "{fixture}: reason implies incomplete");
                        assert!(
                            legal.contains(&reason.as_str()),
                            "{fixture}: free-form incomplete reason {reason:?} \
                             (legal: {legal:?})"
                        );
                        incomplete += 1;
                    }
                    None => assert!(c.completed, "{fixture}: incomplete cell without reason"),
                }
            }
            assert!(
                incomplete > 0,
                "{fixture}: fixture must stop some cell short"
            );
        }
    }

    #[test]
    fn scheduler_params_steer_cell_schedulers() {
        let json = |extra: &str| {
            format!(
                r#"{{
                    "name": "knobs",
                    "families": ["montage"],
                    "platforms": ["workstation"],
                    "schedulers": ["lookahead", "annealing"],
                    "seeds": {{"base": 0, "count": 2}},
                    "tasks": 30{extra}
                }}"#
            )
        };
        let base = CampaignSpec::from_json(&json("")).unwrap();
        let explicit = CampaignSpec::from_json(&json(
            r#", "scheduler_params": {"annealing_iterations": 500, "lookahead_depth": 1}"#,
        ))
        .unwrap();
        let tuned = CampaignSpec::from_json(&json(
            r#", "scheduler_params": {"annealing_iterations": 25, "lookahead_depth": 2}"#,
        ))
        .unwrap();

        let driver = SweepDriver::new(1);
        let base_run = driver.run(&base).unwrap();
        let explicit_run = driver.run(&explicit).unwrap();
        // Spelling out the lineup defaults changes the digest but must
        // reproduce the knob-free cells exactly.
        assert_ne!(base.digest(), explicit.digest());
        assert_eq!(base_run.cells, explicit_run.cells);

        // A tuned sweep is deterministic, completes, and actually
        // reaches the schedulers: shrinking the annealing budget and
        // deepening the lookahead must move at least one cell.
        let tuned_run = driver.run(&tuned).unwrap();
        assert_eq!(tuned_run, driver.run(&tuned).unwrap());
        assert!(tuned_run.cells.iter().all(|c| c.completed));
        assert_ne!(
            base_run.cells, tuned_run.cells,
            "tuning overrides must change some cell"
        );
    }

    #[test]
    fn resume_skips_done_cells_byte_identically() {
        let spec = CampaignSpec::from_json(&spec_json("")).unwrap();
        let driver = SweepDriver::new(1);
        let full = driver.run_shard(&spec, ShardSpec::full()).unwrap();

        // Crash after 2 of 4 cells, then resume against the partial file.
        let partial = driver
            .resume_shard(&spec, ShardSpec::full(), None, Some(2))
            .unwrap();
        assert_eq!(partial.report.cells.len(), 2);
        assert_eq!(partial.remaining, 2);
        let resumed = driver
            .resume_shard(&spec, ShardSpec::full(), Some(&partial.report), None)
            .unwrap();
        assert_eq!(resumed.skipped, 2, "done cells are skipped, not re-run");
        assert_eq!(resumed.remaining, 0);
        assert_eq!(
            resumed.report, full,
            "kill-and-resume must be byte-identical to the uninterrupted run"
        );

        // Resuming a complete shard is a no-op.
        let again = driver
            .resume_shard(&spec, ShardSpec::full(), Some(&full), None)
            .unwrap();
        assert_eq!(again.skipped, 4);
        assert_eq!(again.report, full);
    }

    #[test]
    fn resume_refuses_foreign_and_mismatched_reports() {
        let spec = CampaignSpec::from_json(&spec_json("")).unwrap();
        let driver = SweepDriver::new(1);
        let partial = driver
            .resume_shard(&spec, ShardSpec::full(), None, Some(1))
            .unwrap()
            .report;

        // A spec with any knob changed has a different digest.
        let foreign = CampaignSpec {
            noise_cv: 0.2,
            ..spec.clone()
        };
        let err = driver
            .resume_shard(&foreign, ShardSpec::full(), Some(&partial), None)
            .unwrap_err()
            .to_string();
        assert!(err.contains("different campaign"), "{err}");

        // Same spec, different shard geometry.
        let err = driver
            .resume_shard(&spec, ShardSpec::new(1, 2).unwrap(), Some(&partial), None)
            .unwrap_err()
            .to_string();
        assert!(err.contains("shard 1/1"), "{err}");

        // A report claiming a cell the shard does not own.
        let mut bad = partial.clone();
        bad.shard_index = 2;
        bad.shard_count = 2;
        let err = driver
            .resume_shard(&spec, ShardSpec::new(2, 2).unwrap(), Some(&bad), None)
            .unwrap_err()
            .to_string();
        assert!(err.contains("does not own"), "{err}");
    }
}
