//! Tests of the online dispatcher (split out of `online.rs` so the
//! path source holds only the hook implementation).

use super::*;
use crate::Engine;
use helios_energy::{OnDemand, Powersave};
use helios_platform::presets;
use helios_sched::{HeftScheduler, Scheduler};
use helios_workflow::generators::{montage, sipht};

#[test]
fn online_completes_all_tasks() {
    let p = presets::hpc_node();
    let wf = montage(60, 1).unwrap();
    for policy in [OnlinePolicy::Jit, OnlinePolicy::RankedJit] {
        let r = OnlineRunner::new(EngineConfig::default(), policy)
            .run(&p, &wf)
            .unwrap();
        assert_eq!(r.schedule().placements().len(), wf.num_tasks());
        assert!(r.makespan().as_secs() > 0.0);
    }
}

#[test]
fn online_respects_precedence() {
    let p = presets::hpc_node();
    let wf = sipht(50, 2).unwrap();
    let r = OnlineRunner::new(EngineConfig::default(), OnlinePolicy::Jit)
        .run(&p, &wf)
        .unwrap();
    for pl in r.schedule().placements() {
        for &e in wf.predecessors(pl.task) {
            let edge = wf.edge(e);
            let pred = r.schedule().placement(edge.src).unwrap();
            assert!(
                pred.finish.as_secs() <= pl.start.as_secs() + 1e-9,
                "{} started before {} finished",
                pl.task,
                edge.src
            );
        }
    }
}

#[test]
fn online_is_competitive_without_noise() {
    let p = presets::hpc_node();
    let wf = montage(80, 3).unwrap();
    let static_report = Engine::default()
        .run(&p, &wf, &HeftScheduler::default())
        .unwrap();
    let online = OnlineRunner::new(EngineConfig::default(), OnlinePolicy::RankedJit)
        .run(&p, &wf)
        .unwrap();
    let ratio = online.makespan().as_secs() / static_report.makespan().as_secs();
    assert!(ratio < 2.0, "online {ratio}x of static HEFT");
}

#[test]
fn online_gains_under_heavy_noise() {
    // Average over several seeds: with large duration noise the
    // static plan's device order goes stale, while JIT adapts.
    let p = presets::hpc_node();
    let mut static_total = 0.0;
    let mut online_total = 0.0;
    for seed in 0..8 {
        let wf = sipht(60, seed).unwrap();
        let plan = HeftScheduler::default().schedule(&wf, &p).unwrap();
        let cfg = EngineConfig {
            noise_cv: 0.6,
            seed,
            ..Default::default()
        };
        static_total += Engine::new(cfg.clone())
            .execute_plan(&p, &wf, &plan)
            .unwrap()
            .makespan()
            .as_secs();
        online_total += OnlineRunner::new(cfg, OnlinePolicy::RankedJit)
            .run(&p, &wf)
            .unwrap()
            .makespan()
            .as_secs();
    }
    assert!(
        online_total < 1.35 * static_total,
        "online {online_total} should track static {static_total} under noise"
    );
}

#[test]
fn governor_changes_levels_and_energy() {
    let p = presets::hpc_node();
    let wf = montage(60, 4).unwrap();
    let perf = OnlineRunner::new(EngineConfig::default(), OnlinePolicy::Jit)
        .run(&p, &wf)
        .unwrap();
    let save = OnlineRunner::new(EngineConfig::default(), OnlinePolicy::Jit)
        .with_governor(Box::new(Powersave))
        .run(&p, &wf)
        .unwrap();
    assert!(save.makespan() > perf.makespan(), "powersave is slower");
    assert!(
        save.energy().active_j < perf.energy().active_j,
        "powersave must cut active energy"
    );
    let ondemand = OnlineRunner::new(EngineConfig::default(), OnlinePolicy::Jit)
        .with_governor(Box::new(OnDemand::default()))
        .run(&p, &wf)
        .unwrap();
    assert!(ondemand.makespan() >= perf.makespan());
    assert!(ondemand.makespan() <= save.makespan());
}

#[test]
fn online_deterministic_per_seed() {
    let p = presets::workstation();
    let wf = montage(40, 5).unwrap();
    let cfg = EngineConfig {
        noise_cv: 0.3,
        seed: 9,
        ..Default::default()
    };
    let a = OnlineRunner::new(cfg.clone(), OnlinePolicy::Jit)
        .run(&p, &wf)
        .unwrap();
    let b = OnlineRunner::new(cfg, OnlinePolicy::Jit)
        .run(&p, &wf)
        .unwrap();
    assert_eq!(a, b);
}
