//! Tests of the static-plan executor (split out of `engine.rs` so the
//! path source holds only the hook implementation).

use super::*;
use crate::config::{CheckpointConfig, FaultConfig};
use helios_platform::presets;
use helios_sched::HeftScheduler;
use helios_sim::trace::TraceKind;
use helios_sim::SimDuration;
use helios_workflow::generators::{cybershake, montage};

#[test]
fn ideal_execution_reproduces_the_plan() {
    let p = presets::hpc_node();
    let wf = montage(60, 1).unwrap();
    let plan = HeftScheduler::default().schedule(&wf, &p).unwrap();
    let report = Engine::default().execute_plan(&p, &wf, &plan).unwrap();
    // Insertion-based plans may interleave; the realized makespan can
    // only match or beat the plan (no non-idealities configured).
    let planned = plan.makespan().as_secs();
    let realized = report.makespan().as_secs();
    assert!(
        (realized - planned).abs() / planned < 1e-9,
        "realized {realized} vs planned {planned}"
    );
    report.schedule().validate(&wf, &p).unwrap();
    assert_eq!(report.failures(), 0);
    assert!(report.transfers().count > 0);
    assert!(report.energy().total_j() > 0.0);
}

#[test]
fn noise_perturbs_but_preserves_validity_of_precedence() {
    let p = presets::hpc_node();
    let wf = montage(60, 2).unwrap();
    let plan = HeftScheduler::default().schedule(&wf, &p).unwrap();
    let config = EngineConfig {
        noise_cv: 0.3,
        seed: 42,
        ..Default::default()
    };
    let report = Engine::new(config).execute_plan(&p, &wf, &plan).unwrap();
    // All tasks completed with coherent event ordering.
    assert_eq!(report.schedule().placements().len(), wf.num_tasks());
    let realized = report.makespan().as_secs();
    let planned = plan.makespan().as_secs();
    assert!(
        (realized - planned).abs() / planned > 1e-6,
        "noise must actually perturb timing"
    );
    // Precedence holds on realized times (durations differ from
    // model, so only check arrival ordering).
    for pl in report.schedule().placements() {
        for &e in wf.predecessors(pl.task) {
            let edge = wf.edge(e);
            let pred = report.schedule().placement(edge.src).unwrap();
            assert!(pred.finish <= pl.start + SimDuration::from_secs(1e-9));
        }
    }
}

#[test]
fn determinism_per_seed() {
    let p = presets::hpc_node();
    let wf = montage(50, 3).unwrap();
    let plan = HeftScheduler::default().schedule(&wf, &p).unwrap();
    let mut config = EngineConfig {
        noise_cv: 0.2,
        seed: 7,
        ..Default::default()
    };
    let a = Engine::new(config.clone())
        .execute_plan(&p, &wf, &plan)
        .unwrap();
    let b = Engine::new(config.clone())
        .execute_plan(&p, &wf, &plan)
        .unwrap();
    assert_eq!(a, b);
    config.seed = 8;
    let c = Engine::new(config).execute_plan(&p, &wf, &plan).unwrap();
    assert_ne!(a, c);
}

#[test]
fn contention_never_speeds_things_up() {
    let p = presets::hpc_node();
    let wf = cybershake(80, 1).unwrap();
    let plan = HeftScheduler::default().schedule(&wf, &p).unwrap();
    let free = Engine::default().execute_plan(&p, &wf, &plan).unwrap();
    let config = EngineConfig {
        link_contention: true,
        ..Default::default()
    };
    let contended = Engine::new(config).execute_plan(&p, &wf, &plan).unwrap();
    assert!(
        contended.makespan().as_secs() >= free.makespan().as_secs() - 1e-9,
        "contention {} vs free {}",
        contended.makespan(),
        free.makespan()
    );
}

#[test]
fn faults_extend_makespan_and_count() {
    let p = presets::hpc_node();
    let wf = montage(60, 4).unwrap();
    let plan = HeftScheduler::default().schedule(&wf, &p).unwrap();
    let clean = Engine::default().execute_plan(&p, &wf, &plan).unwrap();
    let config = EngineConfig {
        seed: 5,
        faults: Some(FaultConfig::new(0.01, SimDuration::from_secs(0.002), 1_000).unwrap()),
        ..Default::default()
    };
    let faulty = Engine::new(config).execute_plan(&p, &wf, &plan).unwrap();
    assert!(faulty.failures() > 0, "MTBF 10ms must trigger failures");
    assert_eq!(faulty.failures(), faulty.retries());
    assert!(faulty.makespan() > clean.makespan());
}

#[test]
fn checkpointing_reduces_fault_overhead() {
    let p = presets::hpc_node();
    let wf = cybershake(60, 5).unwrap();
    let plan = HeftScheduler::default().schedule(&wf, &p).unwrap();
    let base = EngineConfig {
        seed: 11,
        faults: Some(FaultConfig::new(0.05, SimDuration::from_secs(0.002), 100_000).unwrap()),
        ..Default::default()
    };
    let without = Engine::new(base.clone())
        .execute_plan(&p, &wf, &plan)
        .unwrap();
    let mut with = base;
    with.checkpointing = Some(
        CheckpointConfig::new(SimDuration::from_secs(0.01), SimDuration::from_secs(0.0005))
            .unwrap(),
    );
    let ckpt = Engine::new(with).execute_plan(&p, &wf, &plan).unwrap();
    assert!(
        ckpt.makespan() < without.makespan(),
        "checkpointing {} should beat restart-from-scratch {}",
        ckpt.makespan(),
        without.makespan()
    );
}

#[test]
fn retry_budget_enforced() {
    let p = presets::hpc_node();
    let wf = cybershake(60, 6).unwrap();
    let plan = HeftScheduler::default().schedule(&wf, &p).unwrap();
    // MTBF far below task lengths and zero retries: must abort.
    let config = EngineConfig {
        seed: 13,
        faults: Some(FaultConfig::new(0.01, SimDuration::ZERO, 0).unwrap()),
        ..Default::default()
    };
    let err = Engine::new(config)
        .execute_plan(&p, &wf, &plan)
        .unwrap_err();
    assert!(matches!(err, EngineError::RetriesExhausted { .. }));
}

#[test]
fn tracing_records_executions_and_transfers() {
    let p = presets::hpc_node();
    let wf = montage(40, 6).unwrap();
    let plan = HeftScheduler::default().schedule(&wf, &p).unwrap();
    let config = EngineConfig {
        tracing: true,
        ..Default::default()
    };
    let report = Engine::new(config).execute_plan(&p, &wf, &plan).unwrap();
    let trace = report.trace().expect("tracing was requested");
    let execs = trace
        .events()
        .iter()
        .filter(|e| e.kind == TraceKind::Execution)
        .count();
    assert_eq!(execs, wf.num_tasks());
    let xfers = trace
        .events()
        .iter()
        .filter(|e| e.kind == TraceKind::Transfer)
        .count();
    assert_eq!(xfers, report.transfers().count);
    let json = report.chrome_trace(&p).unwrap();
    assert!(serde_json::from_str::<serde_json::Value>(&json).is_ok());
    // Without tracing: no trace in the report.
    let plain = Engine::default().execute_plan(&p, &wf, &plan).unwrap();
    assert!(plain.trace().is_none());
    assert!(plain.chrome_trace(&p).is_none());
}

#[test]
fn caching_reduces_transfers_and_never_hurts() {
    // CyberShake: two root products fan out to every synthesis task,
    // so per-device caching collapses most root transfers.
    let p = presets::hpc_node();
    let wf = cybershake(120, 3).unwrap();
    let plan = HeftScheduler::default().schedule(&wf, &p).unwrap();
    let plain = Engine::default().execute_plan(&p, &wf, &plan).unwrap();
    let config = EngineConfig {
        data_caching: true,
        ..Default::default()
    };
    let cached = Engine::new(config).execute_plan(&p, &wf, &plan).unwrap();
    assert!(
        cached.transfers().count < plain.transfers().count,
        "caching {} vs plain {} transfers",
        cached.transfers().count,
        plain.transfers().count
    );
    assert!(
        cached.makespan().as_secs() <= plain.makespan().as_secs() + 1e-9,
        "caching must never slow a run down"
    );
    assert_eq!(
        cached.schedule().placements().len(),
        wf.num_tasks(),
        "all tasks still complete"
    );
}

#[test]
fn caching_matters_most_under_contention() {
    let p = presets::hpc_node();
    let wf = cybershake(120, 4).unwrap();
    let plan = HeftScheduler::default().schedule(&wf, &p).unwrap();
    let base = EngineConfig {
        link_contention: true,
        ..Default::default()
    };
    let congested = Engine::new(base.clone())
        .execute_plan(&p, &wf, &plan)
        .unwrap();
    let mut cached_cfg = base;
    cached_cfg.data_caching = true;
    let cached = Engine::new(cached_cfg)
        .execute_plan(&p, &wf, &plan)
        .unwrap();
    assert!(
        cached.makespan() < congested.makespan(),
        "under contention, eliminating duplicate transfers must pay: {} vs {}",
        cached.makespan(),
        congested.makespan()
    );
}

#[test]
fn mtbf_overrides_resolve_per_device() {
    let f = FaultConfig::new(10.0, SimDuration::ZERO, 5)
        .unwrap()
        .with_per_device_mtbf(vec![None, Some(0.5)])
        .unwrap();
    assert_eq!(f.mtbf_for(0), 10.0);
    assert_eq!(f.mtbf_for(1), 0.5);
    assert_eq!(f.mtbf_for(7), 10.0, "out of range falls back");
    assert!(FaultConfig::new(10.0, SimDuration::ZERO, 5)
        .unwrap()
        .with_per_device_mtbf(vec![Some(0.0)])
        .is_err());
}

#[test]
fn flaky_devices_attract_the_failures() {
    let p = presets::hpc_node();
    let wf = montage(80, 2).unwrap();
    let plan = HeftScheduler::default().schedule(&wf, &p).unwrap();
    // Everything reliable (MTBF 1e6 s) except gpu0 (MTBF 5 ms).
    let mut overrides = vec![None; p.num_devices()];
    overrides[2] = Some(0.005);
    let config = EngineConfig {
        seed: 4,
        faults: Some(
            FaultConfig::new(1e6, SimDuration::from_secs(0.001), 1_000_000)
                .unwrap()
                .with_per_device_mtbf(overrides)
                .unwrap(),
        ),
        ..Default::default()
    };
    let report = Engine::new(config).execute_plan(&p, &wf, &plan).unwrap();
    assert!(report.failures() > 0, "the flaky GPU must fail");
    // All reliable-device tasks ran fault-free, so every retry was
    // on gpu0: spot-check by rerunning with gpu0 also reliable.
    let config = EngineConfig {
        seed: 4,
        faults: Some(FaultConfig::new(1e6, SimDuration::from_secs(0.001), 1_000_000).unwrap()),
        ..Default::default()
    };
    let clean = Engine::new(config).execute_plan(&p, &wf, &plan).unwrap();
    assert_eq!(clean.failures(), 0);
}
