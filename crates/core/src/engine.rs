//! The simulated plan executor.

use std::collections::BTreeMap;

use helios_energy::account;
use helios_platform::{DeviceId, Platform};
use helios_sched::{Placement, Schedule, Scheduler};
use helios_sim::{EventQueue, SimDuration, SimRng, SimTime};
use helios_workflow::{TaskId, Workflow};

use crate::config::{EngineConfig, FaultView};
use crate::error::EngineError;
use crate::report::{ExecutionReport, TransferStats};

/// Disjoint RNG stream bases, so every task's noise, every task's fault
/// draws and every device's failure trace come from their own streams:
/// task `t` uses `NOISE_STREAM_BASE + t` and `FAULT_STREAM_BASE + t`,
/// device `d` uses `FAILURE_TRACE_STREAM_BASE + d`. Keying by task and
/// device id (never by event order) is what makes executions
/// byte-identical per seed regardless of how faults reshuffle the event
/// timeline — and makes a faulty task's occupancy provably contain its
/// fault-free occupancy.
pub(crate) const NOISE_STREAM_BASE: u64 = 1 << 32;
pub(crate) const FAULT_STREAM_BASE: u64 = 2 << 32;
pub(crate) const FAILURE_TRACE_STREAM_BASE: u64 = 3 << 32;
/// Link `l` draws its interconnect-fault trace from
/// `LINK_FAULT_STREAM_BASE + l`; correlated failure domain `i` (in spec
/// order) draws its shared event trace from `DOMAIN_STREAM_BASE + i`.
/// Same keying discipline as above: streams are owned by platform
/// entities, never positional in the event timeline.
pub(crate) const LINK_FAULT_STREAM_BASE: u64 = 4 << 32;
pub(crate) const DOMAIN_STREAM_BASE: u64 = 5 << 32;

/// The `helios` execution engine: runs workflows in simulated time under
/// a static plan, modeling noise, link contention and faults.
///
/// Under the default (ideal) [`EngineConfig`], executing a plan
/// reproduces the plan's timing exactly; every non-ideality moves the
/// realized schedule away from it, which is precisely what the
/// evaluation experiments measure.
#[derive(Debug, Clone, Default)]
pub struct Engine {
    config: EngineConfig,
}

/// Per-attempt execution outcome used by both the static and online
/// executors.
pub(crate) struct Occupancy {
    /// Total device time from start to completion, including retries.
    pub total: SimDuration,
    /// Fault-free device time (work + checkpoint writes, no retries):
    /// the duration dispatchers should calibrate their models against,
    /// since fault stalls carry no information about task cost.
    pub work: SimDuration,
    /// Faults that hit this task.
    pub failures: u32,
    /// Retries performed.
    pub retries: u32,
}

/// Computes how long a task occupies its device, folding in noise
/// already applied to `actual_work`, plus checkpoint overheads and fault
/// retries.
#[cfg(test)]
pub(crate) fn occupancy(
    config: &EngineConfig,
    actual_work: SimDuration,
    task: TaskId,
    fault_rng: &mut SimRng,
) -> Result<Occupancy, EngineError> {
    occupancy_on(&config.fault_view()?, actual_work, task, 0, fault_rng)
}

/// [`occupancy`](self) with per-device MTBF resolution.
pub(crate) fn occupancy_on(
    view: &FaultView,
    actual_work: SimDuration,
    task: TaskId,
    device_id: usize,
    fault_rng: &mut SimRng,
) -> Result<Occupancy, EngineError> {
    let ckpt_inflate = |work: SimDuration| match view.checkpointing {
        Some(ck) => {
            let snapshots = (work.as_secs() / ck.interval.as_secs()).floor();
            work + ck.overhead * snapshots
        }
        None => work,
    };
    let work = ckpt_inflate(actual_work);
    let Some(faults) = view.faults.as_ref() else {
        // No faults: only checkpoint overhead (if configured) applies.
        return Ok(Occupancy {
            total: work,
            work,
            failures: 0,
            retries: 0,
        });
    };

    let mut remaining = actual_work;
    let mut total = SimDuration::ZERO;
    let mut failures = 0u32;
    let mut retries = 0u32;
    loop {
        let effective = ckpt_inflate(remaining);
        let unit = view.checkpointing.map(|ck| (ck.interval, ck.overhead));
        let fault_at = SimDuration::from_secs(fault_rng.exponential(faults.mtbf_for(device_id)));
        if fault_at >= effective {
            total += effective;
            return Ok(Occupancy {
                total,
                work,
                failures,
                retries,
            });
        }
        failures += 1;
        if retries >= faults.max_retries {
            return Err(EngineError::RetriesExhausted {
                task,
                attempts: failures,
            });
        }
        retries += 1;
        let preserved = match unit {
            Some((interval, overhead)) => {
                let stride = interval + overhead;
                let completed_units = (fault_at.as_secs() / stride.as_secs()).floor();
                interval * completed_units
            }
            None => SimDuration::ZERO,
        };
        remaining = remaining - preserved;
        let backoff = view.backoff.map_or(0.0, |(b, f, c)| {
            crate::config::backoff_delay_secs(b, f, c, retries)
        });
        // The attempt's time, the restart overhead and any backoff all
        // occupy the device timeline: a faulty run can only be slower.
        total += fault_at + faults.restart_overhead + SimDuration::from_secs(backoff);
    }
}

/// Per-link FIFO state for contention modeling.
#[derive(Debug, Clone)]
pub(crate) struct LinkState {
    free_at: Vec<SimTime>,
}

impl LinkState {
    pub(crate) fn new(platform: &Platform) -> LinkState {
        LinkState {
            free_at: vec![SimTime::ZERO; platform.interconnect().links().len()],
        }
    }

    /// Computes the arrival time of a transfer over an explicit `route`
    /// whose duration is stretched by `scale` (≥ 1 while any crossed
    /// link is bandwidth-degraded), updating link occupancy when
    /// contention is enabled. The resilient runner uses this to route
    /// around — or crawl across — faulty links; an empty route is a
    /// same-device transfer and costs nothing.
    #[allow(clippy::too_many_arguments)] // mirrors transfer_arrival plus route + scale
    pub(crate) fn transfer_arrival_on_route(
        &mut self,
        platform: &Platform,
        contention: bool,
        bytes: f64,
        route: &[helios_platform::LinkId],
        ready: SimTime,
        scale: f64,
        stats: &mut TransferStats,
    ) -> Result<SimTime, EngineError> {
        if route.is_empty() {
            return Ok(ready);
        }
        let ic = platform.interconnect();
        let mut latency = SimDuration::ZERO;
        let mut min_bw = f64::INFINITY;
        for &id in route {
            let link = ic.link(id)?;
            latency += link.latency();
            min_bw = min_bw.min(link.bandwidth_gbs());
        }
        let duration = (latency + SimDuration::from_secs(bytes / (min_bw * 1e9))) * scale;
        let start = if contention {
            let mut start = ready;
            for link in route {
                start = start.max(self.free_at[link.0]);
            }
            let arrival = start + duration;
            for link in route {
                self.free_at[link.0] = arrival;
            }
            start
        } else {
            ready
        };
        let arrival = start + duration;
        stats.count += 1;
        stats.bytes += bytes;
        stats.total_secs += duration.as_secs();
        Ok(arrival)
    }

    /// Computes the arrival time of a transfer leaving `from` at `ready`
    /// toward `to`, updating link occupancy when contention is enabled.
    /// Optionally records a transfer span on the trace (track = first
    /// link of the route).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn transfer_arrival(
        &mut self,
        platform: &Platform,
        contention: bool,
        bytes: f64,
        from: DeviceId,
        to: DeviceId,
        ready: SimTime,
        stats: &mut TransferStats,
        trace: Option<(&mut helios_sim::trace::Trace, &str)>,
    ) -> Result<SimTime, EngineError> {
        if from == to {
            return Ok(ready);
        }
        let duration = platform.transfer_time(bytes, from, to)?;
        let start = if contention {
            let route = platform.interconnect().route(from, to)?;
            let mut start = ready;
            for link in &route {
                start = start.max(self.free_at[link.0]);
            }
            let arrival = start + duration;
            for link in route {
                self.free_at[link.0] = arrival;
            }
            start
        } else {
            ready
        };
        let arrival = start + duration;
        stats.count += 1;
        stats.bytes += bytes;
        stats.total_secs += duration.as_secs();
        if let Some((trace, label)) = trace {
            let track = platform
                .interconnect()
                .route(from, to)?
                .first()
                .map_or(0, |l| l.0);
            trace.record(
                label.to_owned(),
                helios_sim::trace::TraceKind::Transfer,
                track,
                start,
                arrival,
            );
        }
        Ok(arrival)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// One input data product arrived at the consumer's device.
    Arrival(TaskId),
    /// A task finished on its device.
    Finish(TaskId),
}

impl Engine {
    /// Creates an engine with the given configuration.
    #[must_use]
    pub fn new(config: EngineConfig) -> Engine {
        Engine { config }
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Plans with `scheduler`, then executes the plan.
    ///
    /// # Errors
    ///
    /// Propagates planning and execution errors.
    pub fn run(
        &self,
        platform: &Platform,
        wf: &Workflow,
        scheduler: &dyn Scheduler,
    ) -> Result<ExecutionReport, EngineError> {
        let plan = scheduler.schedule(wf, platform)?;
        self.execute_plan(platform, wf, &plan)
    }

    /// Executes a precomputed plan: device assignments, per-device order
    /// and DVFS levels are honored; times are re-derived event by event
    /// under the configured non-idealities.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::RetriesExhausted`] under fault injection
    /// when a task exceeds its retry budget, or propagates model errors.
    pub fn execute_plan(
        &self,
        platform: &Platform,
        wf: &Workflow,
        plan: &Schedule,
    ) -> Result<ExecutionReport, EngineError> {
        self.config.validate()?;
        let n = wf.num_tasks();

        // Plan-derived structures.
        let by_device = plan.tasks_by_device();
        let device_queue: BTreeMap<DeviceId, Vec<TaskId>> = by_device;
        let mut device_pos: BTreeMap<DeviceId, usize> =
            device_queue.keys().map(|&d| (d, 0)).collect();
        let mut device_busy: BTreeMap<DeviceId, bool> =
            device_queue.keys().map(|&d| (d, false)).collect();
        let mut assigned_device = vec![DeviceId(0); n];
        let mut level = vec![helios_platform::DvfsLevel(0); n];
        for p in plan.placements() {
            assigned_device[p.task.0] = p.device;
            level[p.task.0] = p.level;
        }

        let mut inputs_pending: Vec<usize> =
            (0..n).map(|i| wf.predecessors(TaskId(i)).len()).collect();
        let mut started = vec![false; n];
        let mut finished = vec![false; n];
        let mut realized: Vec<Option<Placement>> = vec![None; n];

        let view = self.config.fault_view()?;
        let base_rng = SimRng::seed_from(self.config.seed);

        let mut links = LinkState::new(platform);
        let mut stats = TransferStats::default();
        let mut failures = 0u32;
        let mut retries = 0u32;
        let mut trace = self.config.tracing.then(helios_sim::trace::Trace::new);
        // data_caching: (producer, destination) -> availability instant.
        let mut delivered: BTreeMap<(TaskId, DeviceId), SimTime> = BTreeMap::new();

        let mut queue: EventQueue<Event> = EventQueue::new();
        let mut completed = 0usize;

        // A task starts when its inputs are at its device, it heads its
        // device's plan queue, and the device is idle.
        macro_rules! try_start {
            ($dev:expr, $now:expr) => {{
                let dev: DeviceId = $dev;
                let now: SimTime = $now;
                if !device_busy[&dev] {
                    let pos = device_pos[&dev];
                    let q = &device_queue[&dev];
                    if pos < q.len() {
                        let task = q[pos];
                        if inputs_pending[task.0] == 0 && !started[task.0] {
                            started[task.0] = true;
                            *device_busy.get_mut(&dev).expect("known device") = true;
                            let device = platform.device(dev)?;
                            let modeled =
                                device.execution_time(wf.task(task)?.cost(), level[task.0])?;
                            let noise = if self.config.noise_cv > 0.0 {
                                let mut rng = base_rng.fork(NOISE_STREAM_BASE + task.0 as u64);
                                rng.normal(1.0, self.config.noise_cv).max(0.05)
                            } else {
                                1.0
                            };
                            let slow = self
                                .config
                                .device_slowdown
                                .as_ref()
                                .and_then(|v| v.get(dev.0))
                                .copied()
                                .unwrap_or(1.0);
                            let actual = modeled * noise * slow;
                            let mut fault_rng = base_rng.fork(FAULT_STREAM_BASE + task.0 as u64);
                            let occ = occupancy_on(&view, actual, task, dev.0, &mut fault_rng)?;
                            failures += occ.failures;
                            retries += occ.retries;
                            let finish = now + occ.total;
                            realized[task.0] = Some(Placement {
                                task,
                                device: dev,
                                level: level[task.0],
                                start: now,
                                finish,
                            });
                            queue.push(finish, Event::Finish(task));
                        }
                    }
                }
            }};
        }

        // Kick off: every device tries its queue head at t = 0.
        let devices: Vec<DeviceId> = device_queue.keys().copied().collect();
        for &d in &devices {
            try_start!(d, SimTime::ZERO);
        }

        let mut steps: u64 = 0;
        while let Some((now, event)) = queue.pop() {
            if let Some(budget) = self.config.step_budget {
                if steps >= budget {
                    // Watchdog: this run is grinding through more
                    // simulated events than the caller budgeted for.
                    return Err(EngineError::StepBudgetExceeded {
                        steps: budget,
                        completed,
                        total: n,
                    });
                }
            }
            steps += 1;
            match event {
                Event::Arrival(task) => {
                    inputs_pending[task.0] -= 1;
                    let dev = assigned_device[task.0];
                    try_start!(dev, now);
                }
                Event::Finish(task) => {
                    finished[task.0] = true;
                    completed += 1;
                    let dev = assigned_device[task.0];
                    *device_busy.get_mut(&dev).expect("known device") = false;
                    *device_pos.get_mut(&dev).expect("known device") += 1;
                    // Launch output transfers.
                    for &e in wf.successors(task) {
                        let edge = wf.edge(e);
                        let dst_dev = assigned_device[edge.dst.0];
                        if self.config.data_caching {
                            if let Some(&at) = delivered.get(&(task, dst_dev)) {
                                // The product is already on (or en route
                                // to) that device: no second transfer.
                                queue.push(at.max(now), Event::Arrival(edge.dst));
                                continue;
                            }
                        }
                        let label = format!("{}->{}", edge.src, edge.dst);
                        let arrival = links.transfer_arrival(
                            platform,
                            self.config.link_contention,
                            edge.bytes,
                            dev,
                            dst_dev,
                            now,
                            &mut stats,
                            trace.as_mut().map(|t| (t, label.as_str())),
                        )?;
                        if self.config.data_caching {
                            delivered.insert((task, dst_dev), arrival);
                        }
                        queue.push(arrival, Event::Arrival(edge.dst));
                    }
                    try_start!(dev, now);
                }
            }
        }

        if completed != n {
            return Err(EngineError::Stalled {
                completed,
                total: n,
            });
        }
        let placements: Vec<Placement> = realized
            .into_iter()
            .map(|p| p.expect("all tasks completed"))
            .collect();
        if let Some(trace) = trace.as_mut() {
            for p in &placements {
                trace.record(
                    wf.task(p.task)?.name().to_owned(),
                    helios_sim::trace::TraceKind::Execution,
                    p.device.0,
                    p.start,
                    p.finish,
                );
            }
        }
        let schedule = Schedule::new(placements)?;
        let energy = account(&schedule, wf, platform, false)?;
        Ok(ExecutionReport::new(
            schedule, energy, stats, failures, retries, trace,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CheckpointConfig, FaultConfig};
    use helios_platform::presets;
    use helios_sched::HeftScheduler;
    use helios_workflow::generators::{cybershake, montage};

    #[test]
    fn ideal_execution_reproduces_the_plan() {
        let p = presets::hpc_node();
        let wf = montage(60, 1).unwrap();
        let plan = HeftScheduler::default().schedule(&wf, &p).unwrap();
        let report = Engine::default().execute_plan(&p, &wf, &plan).unwrap();
        // Insertion-based plans may interleave; the realized makespan can
        // only match or beat the plan (no non-idealities configured).
        let planned = plan.makespan().as_secs();
        let realized = report.makespan().as_secs();
        assert!(
            (realized - planned).abs() / planned < 1e-9,
            "realized {realized} vs planned {planned}"
        );
        report.schedule().validate(&wf, &p).unwrap();
        assert_eq!(report.failures(), 0);
        assert!(report.transfers().count > 0);
        assert!(report.energy().total_j() > 0.0);
    }

    #[test]
    fn noise_perturbs_but_preserves_validity_of_precedence() {
        let p = presets::hpc_node();
        let wf = montage(60, 2).unwrap();
        let plan = HeftScheduler::default().schedule(&wf, &p).unwrap();
        let config = EngineConfig {
            noise_cv: 0.3,
            seed: 42,
            ..Default::default()
        };
        let report = Engine::new(config).execute_plan(&p, &wf, &plan).unwrap();
        // All tasks completed with coherent event ordering.
        assert_eq!(report.schedule().placements().len(), wf.num_tasks());
        let realized = report.makespan().as_secs();
        let planned = plan.makespan().as_secs();
        assert!(
            (realized - planned).abs() / planned > 1e-6,
            "noise must actually perturb timing"
        );
        // Precedence holds on realized times (durations differ from
        // model, so only check arrival ordering).
        for pl in report.schedule().placements() {
            for &e in wf.predecessors(pl.task) {
                let edge = wf.edge(e);
                let pred = report.schedule().placement(edge.src).unwrap();
                assert!(pred.finish <= pl.start + SimDuration::from_secs(1e-9));
            }
        }
    }

    #[test]
    fn determinism_per_seed() {
        let p = presets::hpc_node();
        let wf = montage(50, 3).unwrap();
        let plan = HeftScheduler::default().schedule(&wf, &p).unwrap();
        let mut config = EngineConfig {
            noise_cv: 0.2,
            seed: 7,
            ..Default::default()
        };
        let a = Engine::new(config.clone())
            .execute_plan(&p, &wf, &plan)
            .unwrap();
        let b = Engine::new(config.clone())
            .execute_plan(&p, &wf, &plan)
            .unwrap();
        assert_eq!(a, b);
        config.seed = 8;
        let c = Engine::new(config).execute_plan(&p, &wf, &plan).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn contention_never_speeds_things_up() {
        let p = presets::hpc_node();
        let wf = cybershake(80, 1).unwrap();
        let plan = HeftScheduler::default().schedule(&wf, &p).unwrap();
        let free = Engine::default().execute_plan(&p, &wf, &plan).unwrap();
        let config = EngineConfig {
            link_contention: true,
            ..Default::default()
        };
        let contended = Engine::new(config).execute_plan(&p, &wf, &plan).unwrap();
        assert!(
            contended.makespan().as_secs() >= free.makespan().as_secs() - 1e-9,
            "contention {} vs free {}",
            contended.makespan(),
            free.makespan()
        );
    }

    #[test]
    fn faults_extend_makespan_and_count() {
        let p = presets::hpc_node();
        let wf = montage(60, 4).unwrap();
        let plan = HeftScheduler::default().schedule(&wf, &p).unwrap();
        let clean = Engine::default().execute_plan(&p, &wf, &plan).unwrap();
        let config = EngineConfig {
            seed: 5,
            faults: Some(FaultConfig::new(0.01, SimDuration::from_secs(0.002), 1_000).unwrap()),
            ..Default::default()
        };
        let faulty = Engine::new(config).execute_plan(&p, &wf, &plan).unwrap();
        assert!(faulty.failures() > 0, "MTBF 10ms must trigger failures");
        assert_eq!(faulty.failures(), faulty.retries());
        assert!(faulty.makespan() > clean.makespan());
    }

    #[test]
    fn checkpointing_reduces_fault_overhead() {
        let p = presets::hpc_node();
        let wf = cybershake(60, 5).unwrap();
        let plan = HeftScheduler::default().schedule(&wf, &p).unwrap();
        let base = EngineConfig {
            seed: 11,
            faults: Some(FaultConfig::new(0.05, SimDuration::from_secs(0.002), 100_000).unwrap()),
            ..Default::default()
        };
        let without = Engine::new(base.clone())
            .execute_plan(&p, &wf, &plan)
            .unwrap();
        let mut with = base;
        with.checkpointing = Some(
            CheckpointConfig::new(SimDuration::from_secs(0.01), SimDuration::from_secs(0.0005))
                .unwrap(),
        );
        let ckpt = Engine::new(with).execute_plan(&p, &wf, &plan).unwrap();
        assert!(
            ckpt.makespan() < without.makespan(),
            "checkpointing {} should beat restart-from-scratch {}",
            ckpt.makespan(),
            without.makespan()
        );
    }

    #[test]
    fn retry_budget_enforced() {
        let p = presets::hpc_node();
        let wf = cybershake(60, 6).unwrap();
        let plan = HeftScheduler::default().schedule(&wf, &p).unwrap();
        // MTBF far below task lengths and zero retries: must abort.
        let config = EngineConfig {
            seed: 13,
            faults: Some(FaultConfig::new(0.01, SimDuration::ZERO, 0).unwrap()),
            ..Default::default()
        };
        let err = Engine::new(config)
            .execute_plan(&p, &wf, &plan)
            .unwrap_err();
        assert!(matches!(err, EngineError::RetriesExhausted { .. }));
    }

    #[test]
    fn occupancy_math() {
        let mut rng = SimRng::seed_from(1);
        // No faults, no checkpoints: identity.
        let cfg = EngineConfig::default();
        let occ = occupancy(&cfg, SimDuration::from_secs(10.0), TaskId(0), &mut rng).unwrap();
        assert_eq!(occ.total.as_secs(), 10.0);
        assert_eq!(occ.failures, 0);
        // Checkpoints only: 10s work, 3s interval → 3 snapshots × 0.5s.
        let cfg = EngineConfig {
            checkpointing: Some(
                CheckpointConfig::new(SimDuration::from_secs(3.0), SimDuration::from_secs(0.5))
                    .unwrap(),
            ),
            ..Default::default()
        };
        let occ = occupancy(&cfg, SimDuration::from_secs(10.0), TaskId(0), &mut rng).unwrap();
        assert!((occ.total.as_secs() - 11.5).abs() < 1e-9);
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::config::EngineConfig;
    use helios_platform::presets;
    use helios_sched::HeftScheduler;
    use helios_sim::trace::TraceKind;
    use helios_workflow::generators::montage;

    #[test]
    fn tracing_records_executions_and_transfers() {
        let p = presets::hpc_node();
        let wf = montage(40, 6).unwrap();
        let plan = HeftScheduler::default().schedule(&wf, &p).unwrap();
        let config = EngineConfig {
            tracing: true,
            ..Default::default()
        };
        let report = Engine::new(config).execute_plan(&p, &wf, &plan).unwrap();
        let trace = report.trace().expect("tracing was requested");
        let execs = trace
            .events()
            .iter()
            .filter(|e| e.kind == TraceKind::Execution)
            .count();
        assert_eq!(execs, wf.num_tasks());
        let xfers = trace
            .events()
            .iter()
            .filter(|e| e.kind == TraceKind::Transfer)
            .count();
        assert_eq!(xfers, report.transfers().count);
        let json = report.chrome_trace(&p).unwrap();
        assert!(serde_json::from_str::<serde_json::Value>(&json).is_ok());
        // Without tracing: no trace in the report.
        let plain = Engine::default().execute_plan(&p, &wf, &plan).unwrap();
        assert!(plain.trace().is_none());
        assert!(plain.chrome_trace(&p).is_none());
    }
}

#[cfg(test)]
mod caching_tests {
    use super::*;
    use crate::config::EngineConfig;
    use helios_platform::presets;
    use helios_sched::HeftScheduler;
    use helios_workflow::generators::cybershake;

    #[test]
    fn caching_reduces_transfers_and_never_hurts() {
        // CyberShake: two root products fan out to every synthesis task,
        // so per-device caching collapses most root transfers.
        let p = presets::hpc_node();
        let wf = cybershake(120, 3).unwrap();
        let plan = HeftScheduler::default().schedule(&wf, &p).unwrap();
        let plain = Engine::default().execute_plan(&p, &wf, &plan).unwrap();
        let config = EngineConfig {
            data_caching: true,
            ..Default::default()
        };
        let cached = Engine::new(config).execute_plan(&p, &wf, &plan).unwrap();
        assert!(
            cached.transfers().count < plain.transfers().count,
            "caching {} vs plain {} transfers",
            cached.transfers().count,
            plain.transfers().count
        );
        assert!(
            cached.makespan().as_secs() <= plain.makespan().as_secs() + 1e-9,
            "caching must never slow a run down"
        );
        assert_eq!(
            cached.schedule().placements().len(),
            wf.num_tasks(),
            "all tasks still complete"
        );
    }

    #[test]
    fn caching_matters_most_under_contention() {
        let p = presets::hpc_node();
        let wf = cybershake(120, 4).unwrap();
        let plan = HeftScheduler::default().schedule(&wf, &p).unwrap();
        let base = EngineConfig {
            link_contention: true,
            ..Default::default()
        };
        let congested = Engine::new(base.clone())
            .execute_plan(&p, &wf, &plan)
            .unwrap();
        let mut cached_cfg = base;
        cached_cfg.data_caching = true;
        let cached = Engine::new(cached_cfg)
            .execute_plan(&p, &wf, &plan)
            .unwrap();
        assert!(
            cached.makespan() < congested.makespan(),
            "under contention, eliminating duplicate transfers must pay: {} vs {}",
            cached.makespan(),
            congested.makespan()
        );
    }
}

#[cfg(test)]
mod per_device_fault_tests {
    use super::*;
    use crate::config::{EngineConfig, FaultConfig};
    use helios_platform::presets;
    use helios_sched::HeftScheduler;
    use helios_workflow::generators::montage;

    #[test]
    fn mtbf_overrides_resolve_per_device() {
        let f = FaultConfig::new(10.0, SimDuration::ZERO, 5)
            .unwrap()
            .with_per_device_mtbf(vec![None, Some(0.5)])
            .unwrap();
        assert_eq!(f.mtbf_for(0), 10.0);
        assert_eq!(f.mtbf_for(1), 0.5);
        assert_eq!(f.mtbf_for(7), 10.0, "out of range falls back");
        assert!(FaultConfig::new(10.0, SimDuration::ZERO, 5)
            .unwrap()
            .with_per_device_mtbf(vec![Some(0.0)])
            .is_err());
    }

    #[test]
    fn flaky_devices_attract_the_failures() {
        let p = presets::hpc_node();
        let wf = montage(80, 2).unwrap();
        let plan = HeftScheduler::default().schedule(&wf, &p).unwrap();
        // Everything reliable (MTBF 1e6 s) except gpu0 (MTBF 5 ms).
        let mut overrides = vec![None; p.num_devices()];
        overrides[2] = Some(0.005);
        let config = EngineConfig {
            seed: 4,
            faults: Some(
                FaultConfig::new(1e6, SimDuration::from_secs(0.001), 1_000_000)
                    .unwrap()
                    .with_per_device_mtbf(overrides)
                    .unwrap(),
            ),
            ..Default::default()
        };
        let report = Engine::new(config).execute_plan(&p, &wf, &plan).unwrap();
        assert!(report.failures() > 0, "the flaky GPU must fail");
        // All reliable-device tasks ran fault-free, so every retry was
        // on gpu0: spot-check by rerunning with gpu0 also reliable.
        let config = EngineConfig {
            seed: 4,
            faults: Some(FaultConfig::new(1e6, SimDuration::from_secs(0.001), 1_000_000).unwrap()),
            ..Default::default()
        };
        let clean = Engine::new(config).execute_plan(&p, &wf, &plan).unwrap();
        assert_eq!(clean.failures(), 0);
    }
}
