//! The simulated plan executor.

use helios_platform::{DeviceId, DvfsLevel, Platform};
use helios_sched::{Placement, Schedule, Scheduler};
use helios_sim::trace::Trace;
use helios_sim::{EventQueue, SimRng, SimTime};
use helios_workflow::{TaskId, Workflow};

use crate::config::{EngineConfig, FaultView};
use crate::error::EngineError;
use crate::exec::{
    drive, fault_occupancy, finish_report, noise_factor, slowdown_factor, BudgetPoint,
    DeliveredCache, Hooks, LinkState,
};
use crate::report::{ExecutionReport, TransferStats};

/// The `helios` execution engine: runs workflows in simulated time under
/// a static plan, modeling noise, link contention and faults.
///
/// Under the default (ideal) [`EngineConfig`], executing a plan
/// reproduces the plan's timing exactly; every non-ideality moves the
/// realized schedule away from it, which is precisely what the
/// evaluation experiments measure.
///
/// The engine is the static-plan hook set over the execution core
/// ([`crate::exec`]): its [`Hooks`] implementation owns the
/// arrival/finish event vocabulary and the head-of-queue dispatch rule,
/// while the step loop, occupancy math, transfer staging, residency
/// caching and report accounting are the core's single copy.
#[derive(Debug, Clone, Default)]
pub struct Engine {
    config: EngineConfig,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// One input data product arrived at the consumer's device.
    Arrival(TaskId),
    /// A task finished on its device.
    Finish(TaskId),
}

impl Engine {
    /// Creates an engine with the given configuration.
    #[must_use]
    pub fn new(config: EngineConfig) -> Engine {
        Engine { config }
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Plans with `scheduler`, then executes the plan.
    ///
    /// # Errors
    ///
    /// Propagates planning and execution errors.
    pub fn run(
        &self,
        platform: &Platform,
        wf: &Workflow,
        scheduler: &dyn Scheduler,
    ) -> Result<ExecutionReport, EngineError> {
        let plan = scheduler.schedule(wf, platform)?;
        self.execute_plan(platform, wf, &plan)
    }

    /// Executes a precomputed plan: device assignments, per-device order
    /// and DVFS levels are honored; times are re-derived event by event
    /// under the configured non-idealities.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::RetriesExhausted`] under fault injection
    /// when a task exceeds its retry budget, or propagates model errors.
    pub fn execute_plan(
        &self,
        platform: &Platform,
        wf: &Workflow,
        plan: &Schedule,
    ) -> Result<ExecutionReport, EngineError> {
        self.config.validate_for(platform)?;
        let mut exec = PlanExec::new(&self.config, platform, wf, plan)?;
        // Kick off: every device tries its queue head at t = 0.
        for d in 0..platform.num_devices() {
            exec.try_start(DeviceId(d), SimTime::ZERO)?;
        }
        drive(&mut exec)?;
        finish_report(
            platform,
            wf,
            exec.realized,
            exec.trace,
            exec.stats,
            exec.failures,
            exec.retries,
        )
    }
}

/// The static-plan hook set: per-device plan queues dispatched
/// head-first, with arrivals and finishes as the only events.
///
/// All per-device state lives in device-indexed arenas (the plan's
/// devices are dense platform indices), and per-task noise is drawn up
/// front from each task's dedicated stream — both byte-identical to the
/// map-keyed, fork-per-start layout they replaced, since device
/// iteration order and the noise streams are unchanged.
struct PlanExec<'a> {
    config: &'a EngineConfig,
    platform: &'a Platform,
    wf: &'a Workflow,
    view: FaultView,
    base_rng: SimRng,
    device_queue: Vec<Vec<TaskId>>,
    device_pos: Vec<usize>,
    device_busy: Vec<bool>,
    assigned_device: Vec<DeviceId>,
    level: Vec<DvfsLevel>,
    noise: Vec<f64>,
    inputs_pending: Vec<usize>,
    started: Vec<bool>,
    realized: Vec<Option<Placement>>,
    links: LinkState,
    stats: TransferStats,
    failures: u32,
    retries: u32,
    trace: Option<Trace>,
    delivered: DeliveredCache,
    queue: EventQueue<Event>,
    /// Scratch for one finish's outgoing arrivals, staged then
    /// bulk-pushed; reused across events to avoid per-step allocation.
    arrivals: Vec<(SimTime, TaskId)>,
    completed: usize,
}

impl<'a> PlanExec<'a> {
    fn new(
        config: &'a EngineConfig,
        platform: &'a Platform,
        wf: &'a Workflow,
        plan: &Schedule,
    ) -> Result<PlanExec<'a>, EngineError> {
        let n = wf.num_tasks();
        let nd = platform.num_devices();
        // Plan-derived structures, as dense device-indexed arenas.
        let mut device_queue: Vec<Vec<TaskId>> = vec![Vec::new(); nd];
        for (dev, q) in plan.tasks_by_device() {
            device_queue[dev.0] = q;
        }
        let mut assigned_device = vec![DeviceId(0); n];
        let mut level = vec![DvfsLevel(0); n];
        for p in plan.placements() {
            assigned_device[p.task.0] = p.device;
            level[p.task.0] = p.level;
        }
        let base_rng = SimRng::seed_from(config.seed);
        Ok(PlanExec {
            view: config.fault_view()?,
            trace: config.tracing.then(Trace::new),
            delivered: DeliveredCache::new(config.data_caching, n, nd),
            // Task-intrinsic noise: each task's factor comes from its own
            // stream, so drawing all of them up front replays the exact
            // values the per-start forks produced.
            noise: (0..n)
                .map(|t| noise_factor(config.noise_cv, &base_rng, t))
                .collect(),
            base_rng,
            config,
            platform,
            wf,
            device_queue,
            device_pos: vec![0; nd],
            device_busy: vec![false; nd],
            assigned_device,
            level,
            inputs_pending: (0..n).map(|i| wf.predecessors(TaskId(i)).len()).collect(),
            started: vec![false; n],
            realized: vec![None; n],
            links: LinkState::new(platform),
            stats: TransferStats::default(),
            failures: 0,
            retries: 0,
            queue: EventQueue::new(),
            arrivals: Vec::new(),
            completed: 0,
        })
    }

    /// A task starts when its inputs are at its device, it heads its
    /// device's plan queue, and the device is idle.
    fn try_start(&mut self, dev: DeviceId, now: SimTime) -> Result<(), EngineError> {
        if self.device_busy[dev.0] {
            return Ok(());
        }
        let pos = self.device_pos[dev.0];
        let q = &self.device_queue[dev.0];
        if pos >= q.len() {
            return Ok(());
        }
        let task = q[pos];
        if self.inputs_pending[task.0] != 0 || self.started[task.0] {
            return Ok(());
        }
        self.started[task.0] = true;
        self.device_busy[dev.0] = true;
        let device = self.platform.device(dev)?;
        let modeled = device.execution_time(self.wf.task(task)?.cost(), self.level[task.0])?;
        let noise = self.noise[task.0];
        let slow = slowdown_factor(self.config.device_slowdown.as_ref(), dev.0);
        let actual = modeled * noise * slow;
        let occ = fault_occupancy(&self.view, &self.base_rng, actual, task, dev.0)?;
        self.failures += occ.failures;
        self.retries += occ.retries;
        let finish = now + occ.total;
        self.realized[task.0] = Some(Placement {
            task,
            device: dev,
            level: self.level[task.0],
            start: now,
            finish,
        });
        self.queue.push(finish, Event::Finish(task));
        Ok(())
    }
}

impl Hooks for PlanExec<'_> {
    type Event = Event;

    fn budget(&self) -> Option<u64> {
        self.config.step_budget
    }

    fn budget_point(&self) -> BudgetPoint {
        BudgetPoint::AfterPop
    }

    fn completed(&self) -> usize {
        self.completed
    }

    fn total(&self) -> usize {
        self.wf.num_tasks()
    }

    fn exit_on_complete(&self) -> bool {
        false
    }

    fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.queue.pop()
    }

    fn handle(&mut self, now: SimTime, event: Event) -> Result<(), EngineError> {
        match event {
            Event::Arrival(task) => {
                self.inputs_pending[task.0] -= 1;
                let dev = self.assigned_device[task.0];
                self.try_start(dev, now)
            }
            Event::Finish(task) => {
                self.completed += 1;
                let dev = self.assigned_device[task.0];
                self.device_busy[dev.0] = false;
                self.device_pos[dev.0] += 1;
                // Stage output transfers in edge order, then bulk-push:
                // a finish commonly fans out several same-timestamp
                // arrivals (cached or co-located consumers), which the
                // queue can sequence as one reserved batch. Staging
                // preserves the push order, so tie-break sequencing is
                // unchanged.
                let wf = self.wf;
                self.arrivals.clear();
                for &e in wf.successors(task) {
                    let edge = wf.edge(e);
                    let dst_dev = self.assigned_device[edge.dst.0];
                    if let Some(at) = self.delivered.lookup(task, dst_dev) {
                        // The product is already on (or en route to)
                        // that device: no second transfer.
                        self.arrivals.push((at.max(now), edge.dst));
                        continue;
                    }
                    // The transfer label is only rendered when a trace
                    // is actually recording.
                    let label = self
                        .trace
                        .is_some()
                        .then(|| format!("{}->{}", edge.src, edge.dst));
                    let arrival = self.links.transfer_arrival(
                        self.platform,
                        self.config.link_contention,
                        edge.bytes,
                        dev,
                        dst_dev,
                        now,
                        &mut self.stats,
                        self.trace
                            .as_mut()
                            .and_then(|t| label.as_deref().map(|l| (t, l))),
                    )?;
                    self.delivered.record(task, dst_dev, arrival);
                    self.arrivals.push((arrival, edge.dst));
                }
                let mut i = 0;
                while i < self.arrivals.len() {
                    let at = self.arrivals[i].0;
                    let mut j = i + 1;
                    while j < self.arrivals.len() && self.arrivals[j].0 == at {
                        j += 1;
                    }
                    self.queue.push_batch(
                        at,
                        self.arrivals[i..j]
                            .iter()
                            .map(|&(_, dst)| Event::Arrival(dst)),
                    );
                    i = j;
                }
                self.try_start(dev, now)
            }
        }
    }
}

#[cfg(test)]
#[path = "engine_tests.rs"]
mod tests;
