//! The adversarial simulation harness behind `helios fuzz`.
//!
//! Every hot-path rewrite in the execution core leans on two safety
//! nets — the golden reports and the conformance proptest — that only
//! cover hand-picked specs. This module is the standing generalization:
//! a seeded generator draws random campaign specs from the full knob
//! space ([`gen`]), a fixed battery of differential oracles checks each
//! one ([`oracle`]), a greedy structural shrinker reduces any
//! divergence to a minimal failing spec ([`shrink`]), and the result is
//! written as a replayable JSON fixture ([`fixture`]) under
//! `tests/bugbase/`, where a harness test replays the whole corpus
//! forever after.
//!
//! The pipeline for one case:
//!
//! ```text
//! generate_spec(seed, case) ──▶ check_spec ──▶ None  (case passed)
//!                                   │
//!                                   ▼ Some(divergence)
//!                              shrink_spec ──▶ BugFixture ──▶ tests/bugbase/<oracle>-<digest>.json
//! ```
//!
//! Everything is deterministic: the same `(seed, case)` pair generates
//! the same spec, the oracles run in a fixed order, and a fixture
//! replays the exact shrunk spec — so `helios fuzz --seed S --runs N`
//! prints the same verdicts on every machine.
//!
//! # Examples
//!
//! ```
//! use helios_core::fuzz::{check_spec, generate_spec};
//!
//! let spec = generate_spec(7, 0);
//! assert_eq!(spec, generate_spec(7, 0)); // deterministic
//! assert!(check_spec(&spec, None)?.is_none()); // all oracles pass
//! # Ok::<(), helios_core::EngineError>(())
//! ```

pub mod fixture;
pub mod gen;
pub mod oracle;
pub mod shrink;

pub use fixture::BugFixture;
pub use gen::generate_spec;
pub use oracle::{check_spec, Divergence, ORACLES};
pub use shrink::{shrink_spec, ShrinkOutcome};
