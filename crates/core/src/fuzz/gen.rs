//! Seeded campaign-spec generator: one deterministic, valid-by-
//! construction [`CampaignSpec`] per `(fuzz_seed, case)` pair, drawn
//! from the full knob space the sweep driver accepts.
//!
//! The generator is the scenario-diversity engine of the adversarial
//! harness: every case samples families, presets and schedulers plus
//! the noise/contention/caching/DVFS knobs, per-scheduler tuning
//! overrides, the legacy fault block or a full resilience stack
//! (recovery policy, interconnect faults, correlated failure domains),
//! elastic-capacity plans (timed join/drain/preempt/leave events and
//! stochastic spot churn) and an occasional tight step budget. Grids
//! are kept small (at most
//! 2 × 2 × 2 × 2 cells, 15–30 tasks) because every case is swept
//! several times over by the differential oracles.

use helios_sim::SimRng;

use crate::campaign::{
    CampaignSpec, DvfsKnob, ElasticityKnob, FailureDomainKnob, FaultKnob, InterconnectFaultKnob,
    PolicyKnob, ResilienceKnob, SchedulerParamsKnob, SeedRange,
};
use crate::elastic::{ElasticChurn, ElasticEvent, ElasticEventKind};

/// Workflow families a generated spec may sweep.
pub const FAMILIES: &[&str] = &["montage", "cybershake", "epigenomics", "ligo", "sipht"];

/// Platform presets a generated spec may sweep.
pub const PLATFORMS: &[&str] = &[
    "workstation",
    "hpc_node",
    "cluster2",
    "cluster3",
    "edge_soc",
];

/// Schedulers a generated spec may sweep — the full lineup.
pub const SCHEDULERS: &[&str] = &[
    "heft",
    "cpop",
    "peft",
    "lookahead",
    "min-min",
    "max-min",
    "mct",
    "met",
    "olb",
    "round-robin",
    "random",
    "annealing",
];

/// The smallest `tasks` value every family's generator accepts
/// (epigenomics needs n ≥ 15, the largest of the five minimums).
pub const MIN_TASKS: usize = 15;

/// Member devices and links of each preset, for generating failure
/// domains whose members resolve during spec validation.
fn domain_members(platform: &str) -> (&'static [&'static str], &'static [&'static str]) {
    match platform {
        "workstation" => (&["cpu0", "cpu1", "gpu0"], &["dram", "pcie3-x16"]),
        "hpc_node" => (
            &[
                "cpu0", "cpu1", "gpu0", "gpu1", "gpu2", "gpu3", "fpga0", "asic0",
            ],
            &["dram", "pcie4-x16", "nvlink"],
        ),
        "cluster2" => (
            &["node0-cpu", "node0-gpu", "node1-cpu", "node1-gpu"],
            &["pcie4-x16", "100gbe"],
        ),
        "cluster3" => (
            &[
                "node0-cpu",
                "node0-gpu",
                "node1-cpu",
                "node1-gpu",
                "node2-cpu",
                "node2-gpu",
            ],
            &["pcie4-x16", "100gbe"],
        ),
        "edge_soc" => (&["cpu0", "dsp0", "npu0"], &["soc-bus"]),
        other => unreachable!("no domain-member table for preset {other:?}"),
    }
}

/// Draws `n` distinct entries from `menu`, in shuffled order.
fn pick_distinct(rng: &mut SimRng, menu: &[&str], n: usize) -> Vec<String> {
    let mut idx: Vec<usize> = (0..menu.len()).collect();
    rng.shuffle(&mut idx);
    idx[..n].iter().map(|&i| menu[i].to_owned()).collect()
}

/// Draws the recovery-policy knob; all four kinds are reachable.
fn gen_policy(rng: &mut SimRng) -> PolicyKnob {
    let max_retries = rng.uniform_usize(1, 8) as u32;
    match rng.uniform_usize(0, 3) {
        0 => {
            let base_secs = rng.uniform(0.0, 0.01);
            PolicyKnob::RetryBackoff {
                base_secs,
                factor: rng.uniform(1.0, 3.0),
                cap_secs: base_secs + rng.uniform(0.0, 0.05),
                max_retries,
            }
        }
        1 => PolicyKnob::ReplicateK {
            replicas: rng.uniform_usize(2, 3),
            max_retries,
        },
        2 => PolicyKnob::CheckpointRestart {
            interval_secs: rng.uniform(0.05, 0.5),
            overhead_secs: rng.uniform(0.0, 0.02),
            max_retries,
        },
        _ => PolicyKnob::Reschedule {
            scheduler: (*rng.choose(SCHEDULERS).expect("scheduler menu is non-empty")).to_owned(),
            overhead_secs: rng.uniform(0.0, 0.02),
            max_retries,
        },
    }
}

/// Draws the device failure model plus recovery policy.
fn gen_resilience(rng: &mut SimRng) -> ResilienceKnob {
    ResilienceKnob {
        mttf_secs: rng.uniform(0.5, 5.0),
        weibull_shape: if rng.chance(0.3) {
            Some(rng.uniform(0.7, 2.2))
        } else {
            None
        },
        degraded_prob: if rng.chance(0.5) {
            rng.uniform(0.0, 0.4)
        } else {
            0.0
        },
        permanent_prob: if rng.chance(0.3) {
            rng.uniform(0.0, 0.2)
        } else {
            0.0
        },
        degraded_slowdown: rng.uniform(1.0, 3.0),
        degraded_repair_secs: rng.uniform(0.0, 0.3),
        restart_overhead_secs: rng.uniform(0.0, 0.01),
        policy: gen_policy(rng),
    }
}

/// Draws the per-link interconnect fault model.
fn gen_interconnect(rng: &mut SimRng) -> InterconnectFaultKnob {
    InterconnectFaultKnob {
        mttf_secs: rng.uniform(0.2, 3.0),
        weibull_shape: if rng.chance(0.3) {
            Some(rng.uniform(0.7, 2.0))
        } else {
            None
        },
        degraded_prob: rng.uniform(0.0, 0.6),
        degraded_factor: rng.uniform(1.0, 4.0),
        outage_secs: rng.uniform(0.0, 0.2),
        degraded_repair_secs: rng.uniform(0.0, 0.2),
    }
}

/// Draws 1–2 correlated failure domains whose members exist on
/// `platform`.
fn gen_domains(rng: &mut SimRng, platform: &str) -> Vec<FailureDomainKnob> {
    let (devices, links) = domain_members(platform);
    let n = rng.uniform_usize(1, 2);
    (0..n)
        .map(|i| {
            let n_devices = rng.uniform_usize(1, 2.min(devices.len()));
            FailureDomainKnob {
                kind: (*rng
                    .choose(&["rack", "node", "psu"])
                    .expect("kind menu is non-empty"))
                .to_owned(),
                name: format!("d{i}"),
                devices: pick_distinct(rng, devices, n_devices),
                links: if rng.chance(0.4) {
                    pick_distinct(rng, links, 1)
                } else {
                    Vec::new()
                },
                mttf_secs: rng.uniform(0.5, 5.0),
                weibull_shape: if rng.chance(0.25) {
                    Some(rng.uniform(0.7, 2.0))
                } else {
                    None
                },
                degraded_prob: if rng.chance(0.5) {
                    rng.uniform(0.0, 0.5)
                } else {
                    0.0
                },
                permanent_prob: if rng.chance(0.3) {
                    rng.uniform(0.0, 0.3)
                } else {
                    0.0
                },
                outage_secs: rng.uniform(0.0, 0.2),
            }
        })
        .collect()
}

/// Devices present on *every* platform of the grid — the only legal
/// targets for elasticity events, which spec validation resolves per
/// platform.
fn elastic_members(platforms: &[String]) -> Vec<&'static str> {
    let mut menu: Vec<&'static str> = domain_members(&platforms[0]).0.to_vec();
    for p in &platforms[1..] {
        let (devs, _) = domain_members(p);
        menu.retain(|d| devs.contains(d));
    }
    menu
}

/// Draws an elasticity block over `devices`: join-only plans (devices
/// start the run absent), preempt storms on a single device, mixed
/// timed plans, or stochastic spot churn. Pathological-but-valid shapes
/// are deliberate; invalid ones (drain deadline at/before the notice,
/// zero notices) are ruled out by construction, matching what spec
/// validation would reject.
fn gen_elasticity(rng: &mut SimRng, devices: &[&str]) -> ElasticityKnob {
    let mut events = Vec::new();
    let mut churn = Vec::new();
    match rng.uniform_usize(0, 3) {
        // Join-only plan: the named devices start absent and arrive
        // mid-flight; everything queued for them waits.
        0 => {
            let cap = devices.len().saturating_sub(1).clamp(1, 2);
            let n = rng.uniform_usize(1, cap);
            for device in pick_distinct(rng, devices, n) {
                events.push(ElasticEvent {
                    device,
                    at_secs: rng.uniform(0.0, 1.0),
                    kind: ElasticEventKind::Join,
                });
            }
        }
        // Preempt storm: repeated spot kills and re-acquisitions of one
        // device.
        1 => {
            let device = (*rng.choose(devices).expect("device menu is non-empty")).to_owned();
            let mut at = 0.0;
            for _ in 0..rng.uniform_usize(2, 4) {
                at += rng.uniform(0.05, 0.6);
                events.push(ElasticEvent {
                    device: device.clone(),
                    at_secs: at,
                    kind: ElasticEventKind::Preempt {
                        notice_secs: rng.uniform(0.005, 0.1),
                    },
                });
                at += rng.uniform(0.05, 0.4);
                events.push(ElasticEvent {
                    device: device.clone(),
                    at_secs: at,
                    kind: ElasticEventKind::Join,
                });
            }
        }
        // Mixed timed plan across random devices.
        2 => {
            for _ in 0..rng.uniform_usize(1, 3) {
                let device = (*rng.choose(devices).expect("device menu is non-empty")).to_owned();
                let at_secs = rng.uniform(0.0, 1.5);
                let kind = match rng.uniform_usize(0, 3) {
                    0 => ElasticEventKind::Join,
                    1 => ElasticEventKind::Drain {
                        deadline_secs: at_secs + rng.uniform(0.01, 0.5),
                    },
                    2 => ElasticEventKind::Preempt {
                        notice_secs: rng.uniform(0.005, 0.2),
                    },
                    _ => ElasticEventKind::Leave,
                };
                events.push(ElasticEvent {
                    device,
                    at_secs,
                    kind,
                });
            }
        }
        // Stochastic spot churn on 1–2 devices.
        _ => {
            let n = rng.uniform_usize(1, 2.min(devices.len()));
            for device in pick_distinct(rng, devices, n) {
                let weibull_shape = if rng.chance(0.3) {
                    Some(rng.uniform(0.7, 2.0))
                } else {
                    None
                };
                churn.push(ElasticChurn {
                    device,
                    mtbp_secs: rng.uniform(0.3, 3.0),
                    weibull_shape,
                    notice_secs: rng.uniform(0.005, 0.1),
                    rejoin_secs: rng.uniform(0.05, 0.8),
                });
            }
        }
    }
    ElasticityKnob { events, churn }
}

/// Generates the deterministic spec of fuzz case `case` under
/// `fuzz_seed`. The result always passes [`CampaignSpec::validate`];
/// the harness's unit tests pin that property over many cases.
#[must_use]
pub fn generate_spec(fuzz_seed: u64, case: usize) -> CampaignSpec {
    let mut rng = SimRng::seed_from(fuzz_seed).fork(case as u64 + 1);

    let families = {
        let n = rng.uniform_usize(1, 2);
        pick_distinct(&mut rng, FAMILIES, n)
    };

    // Fault mode: ~40% fault-free, ~20% legacy flat-retry faults, ~40%
    // full resilience stack. Correlated domains pin the grid to a
    // single preset so domain members resolve on every spec platform.
    let fault_roll = rng.uniform_usize(0, 9);
    let with_resilience = fault_roll >= 6;
    let with_legacy_faults = (4..6).contains(&fault_roll);
    let with_domains = with_resilience && rng.chance(0.45);

    let platforms = if with_domains {
        pick_distinct(&mut rng, PLATFORMS, 1)
    } else {
        let n = rng.uniform_usize(1, 2);
        pick_distinct(&mut rng, PLATFORMS, n)
    };

    let schedulers = {
        let n = rng.uniform_usize(1, 2);
        pick_distinct(&mut rng, SCHEDULERS, n)
    };

    let has = |name: &str| schedulers.iter().any(|s| s == name);
    let scheduler_params = if (has("annealing") || has("lookahead")) && rng.chance(0.5) {
        let knob = SchedulerParamsKnob {
            annealing_iterations: if has("annealing") && rng.chance(0.8) {
                Some(rng.uniform_usize(5, 120) as u32)
            } else {
                None
            },
            lookahead_depth: if has("lookahead") && rng.chance(0.8) {
                Some(rng.uniform_usize(1, 2) as u32)
            } else {
                None
            },
        };
        (!knob.is_empty()).then_some(knob)
    } else {
        None
    };

    let seeds = SeedRange {
        base: rng.uniform_usize(0, 999) as u64,
        count: rng.uniform_usize(1, 2),
    };
    let tasks = rng.uniform_usize(MIN_TASKS, 30);
    let noise_cv = if rng.chance(0.5) {
        rng.uniform(0.01, 0.25)
    } else {
        0.0
    };
    let link_contention = rng.chance(0.4);
    let data_caching = rng.chance(0.4);
    let dvfs = match rng.uniform_usize(0, 9) {
        0..=5 => DvfsKnob::Nominal,
        6 | 7 => DvfsKnob::Powersave,
        _ => DvfsKnob::Performance,
    };

    let faults = with_legacy_faults.then(|| FaultKnob {
        mtbf_secs: rng.uniform(0.5, 4.0),
        restart_overhead_secs: rng.uniform(0.0, 0.01),
        max_retries: rng.uniform_usize(0, 6) as u32,
    });
    let resilience = with_resilience.then(|| gen_resilience(&mut rng));
    let interconnect_faults =
        (with_resilience && rng.chance(0.4)).then(|| gen_interconnect(&mut rng));
    let failure_domains = if with_domains {
        gen_domains(&mut rng, &platforms[0])
    } else {
        Vec::new()
    };

    // A tight budget occasionally exercises the timed_out path; most
    // cases run unbudgeted or under a ceiling no healthy cell reaches.
    let cell_step_budget = match rng.uniform_usize(0, 9) {
        0 => Some(rng.uniform_usize(50, 2_000) as u64),
        1..=5 => None,
        _ => Some(5_000_000),
    };

    // Elastic capacity: ~30% of non-legacy-fault cases get an
    // elasticity block (legacy faults are mutually exclusive with
    // capacity events). Event targets come from the intersection of the
    // grid's platform device menus so every name resolves everywhere.
    let elastic_menu = elastic_members(&platforms);
    let elasticity = (!with_legacy_faults && !elastic_menu.is_empty() && rng.chance(0.3))
        .then(|| gen_elasticity(&mut rng, &elastic_menu));

    CampaignSpec {
        name: format!("fuzz-{fuzz_seed}-{case}"),
        families,
        platforms,
        schedulers,
        scheduler_params,
        seeds,
        tasks,
        noise_cv,
        link_contention,
        data_caching,
        dvfs,
        faults,
        resilience,
        interconnect_faults,
        failure_domains,
        elasticity,
        cell_step_budget,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn menus_resolve() {
        for f in FAMILIES {
            assert!(
                crate::campaign::spec::family_class(f).is_some(),
                "{f:?} is not a workflow family"
            );
        }
        for p in PLATFORMS {
            assert!(
                helios_platform::presets::by_name(p).is_some(),
                "{p:?} is not a platform preset"
            );
        }
        for s in SCHEDULERS {
            assert!(
                helios_sched::scheduler_by_name(s).is_some(),
                "{s:?} is not a scheduler"
            );
        }
        assert_eq!(
            SCHEDULERS.len(),
            helios_sched::all_schedulers().len(),
            "the fuzz menu must cover the whole lineup"
        );
    }

    #[test]
    fn generated_specs_validate_and_are_deterministic() {
        let mut with_resilience = 0;
        let mut with_domains = 0;
        let mut with_faults = 0;
        let mut with_elasticity = 0;
        let mut with_churn = 0;
        for case in 0..200 {
            let spec = generate_spec(42, case);
            spec.validate()
                .unwrap_or_else(|e| panic!("case {case} does not validate: {e}"));
            assert_eq!(
                spec,
                generate_spec(42, case),
                "case {case} is not deterministic"
            );
            assert!(spec.num_cells() <= 16, "case {case} grid too large");
            with_resilience += usize::from(spec.resilience.is_some());
            with_domains += usize::from(!spec.failure_domains.is_empty());
            with_faults += usize::from(spec.faults.is_some());
            with_elasticity += usize::from(spec.elasticity.is_some());
            with_churn += usize::from(
                spec.elasticity
                    .as_ref()
                    .is_some_and(|el| !el.churn.is_empty()),
            );
        }
        // The knob-space sweep must actually reach every fault class.
        assert!(
            with_resilience > 20,
            "resilience undersampled: {with_resilience}"
        );
        assert!(
            with_domains > 5,
            "failure domains undersampled: {with_domains}"
        );
        assert!(
            with_faults > 10,
            "legacy faults undersampled: {with_faults}"
        );
        assert!(
            with_elasticity > 15,
            "elasticity undersampled: {with_elasticity}"
        );
        assert!(with_churn > 3, "spot churn undersampled: {with_churn}");
    }

    #[test]
    fn different_seeds_give_different_cases() {
        assert_ne!(generate_spec(1, 0), generate_spec(2, 0));
        assert_ne!(generate_spec(1, 0), generate_spec(1, 1));
    }

    #[test]
    fn domain_member_tables_match_presets() {
        for p in PLATFORMS {
            let platform = helios_platform::presets::by_name(p).expect("preset resolves");
            let (devices, links) = domain_members(p);
            for d in devices {
                assert!(
                    platform.device_by_name(d).is_some(),
                    "{p}: device {d:?} missing"
                );
            }
            for l in links {
                assert!(
                    !platform.interconnect().links_by_name(l).is_empty(),
                    "{p}: link {l:?} missing"
                );
            }
        }
    }
}
