//! Differential oracles: the properties every generated campaign spec
//! must satisfy, checked in a fixed order so a case's verdict is
//! deterministic. The first oracle to fire wins; its name is the
//! primary key of the resulting bug fixture.
//!
//! | oracle                | property                                            |
//! |-----------------------|-----------------------------------------------------|
//! | `schedule_invariants` | planned plan passes [`Schedule::validate`]; the     |
//! |                       | realized report covers every task with `start ≤     |
//! |                       | finish`, a makespan no smaller than the realized    |
//! |                       | schedule's, finite non-negative metrics; sweep      |
//! |                       | cells are either complete with finite metrics or    |
//! |                       | carry a normalized [`IncompleteReason`] string      |
//! | `hooks_off_identity`  | the hook-composed core with every feature hook off  |
//! |                       | is byte-identical to the plain default `Engine`     |
//! | `jobs_identity`       | `--jobs 3` sweeps serialize byte-identical to the   |
//! |                       | sequential reference                                |
//! | `shard_identity`      | a merged {1/2, 2/2} partition serializes            |
//! |                       | byte-identical to the unsharded reference           |
//! | `crash_resume_identity` | a journaled sweep killed at a spec-derived cell   |
//! |                       | boundary AND torn mid-record (the                   |
//! |                       | `HELIOS_JOURNAL_TORN_WRITE` hook), then salvaged    |
//! |                       | and resumed, serializes byte-identical to the       |
//! |                       | straight-through run                                |
//! | `store_identity`      | the report compiled from the columnar cell store —  |
//! |                       | straight through, and killed at a spec-derived cell |
//! |                       | boundary then resumed from the salvaged row groups  |
//! |                       | — serializes byte-identical to the straight-through |
//! |                       | run                                                 |
//! | `fault_free_bound`    | per completed cell, the faulted/resilient makespan  |
//! |                       | is ≥ the makespan of the same spec with injection   |
//! |                       | disabled, and `makespan_degradation ≥ 0`; stands    |
//! |                       | down for elastic specs (a mid-run join can legally  |
//! |                       | beat the static bound)                              |

use helios_platform::presets;
use serde::{Deserialize, Serialize};

use crate::campaign::spec::{family_class, CampaignSpec, SweepCell};
use crate::campaign::sweep::cell_scheduler;
use crate::campaign::{merge_shards, ShardSpec, SweepDriver, SweepReport};
use crate::config::EngineConfig;
use crate::engine::Engine;
use crate::error::EngineError;
use crate::exec::IncompleteReason;

/// The oracle names, in evaluation order. `HELIOS_FUZZ_BREAK_ORACLE`
/// (and the `broken` parameter of [`check_spec`]) must name one of
/// these.
pub const ORACLES: &[&str] = &[
    "schedule_invariants",
    "hooks_off_identity",
    "jobs_identity",
    "shard_identity",
    "crash_resume_identity",
    "store_identity",
    "fault_free_bound",
];

/// Relative tolerance for floating-point bound comparisons; identity
/// oracles compare exact bytes and use no tolerance.
const EPS: f64 = 1e-9;

/// One oracle violation: which property fired and a human-readable
/// trace of where, kept alongside the shrunk spec in a bug fixture.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Divergence {
    /// The oracle that fired, one of [`ORACLES`].
    pub oracle: String,
    /// What diverged, naming the cell and the observed values.
    pub detail: String,
}

impl Divergence {
    fn new(oracle: &str, detail: String) -> Divergence {
        Divergence {
            oracle: oracle.to_owned(),
            detail,
        }
    }

    /// The unconditional verdict an oracle reports when sabotaged via
    /// the `broken` hook — the harness's own acceptance test relies on
    /// a deliberately broken oracle shrinking and replaying end to end.
    fn sabotaged(oracle: &str) -> Divergence {
        Divergence::new(
            oracle,
            "oracle deliberately broken via HELIOS_FUZZ_BREAK_ORACLE (harness self-test)".into(),
        )
    }
}

/// Runs every oracle against `spec`, returning the first divergence.
/// `broken` names an oracle forced to fire unconditionally (the
/// test-only sabotage hook); `None` in normal operation.
///
/// # Errors
///
/// Returns [`EngineError`] when `broken` is not an oracle name or the
/// spec cannot be swept at all (oracle verdicts are never errors).
pub fn check_spec(
    spec: &CampaignSpec,
    broken: Option<&str>,
) -> Result<Option<Divergence>, EngineError> {
    if let Some(name) = broken {
        if !ORACLES.contains(&name) {
            return Err(EngineError::Config(format!(
                "unknown oracle {name:?}; oracles: {}",
                ORACLES.join(", ")
            )));
        }
    }
    let cells = spec.expand()?;
    if let Some(d) = single_cell_oracles(spec, &cells, broken)? {
        return Ok(Some(d));
    }
    sweep_oracles(spec, broken)
}

/// Per-cell oracles on the first cell whose scheduling succeeds:
/// planned-schedule contract, realized-report invariants, and the
/// hooks-off/plain engine identity. Cells that fail to plan (an
/// infeasible family × platform pairing) are the sweep driver's
/// business and are checked by the cell-result invariants instead.
fn single_cell_oracles(
    spec: &CampaignSpec,
    cells: &[SweepCell],
    broken: Option<&str>,
) -> Result<Option<Divergence>, EngineError> {
    for cell in cells {
        let platform = presets::by_name(&cell.platform)
            .ok_or_else(|| EngineError::Config(format!("unknown platform {:?}", cell.platform)))?;
        let class = family_class(&cell.family)
            .ok_or_else(|| EngineError::Config(format!("unknown family {:?}", cell.family)))?;
        let scheduler = cell_scheduler(spec, &cell.scheduler).ok_or_else(|| {
            EngineError::Config(format!("unknown scheduler {:?}", cell.scheduler))
        })?;
        let wf = class.generate(spec.tasks, cell.seed)?;
        let Ok(plan) = scheduler.schedule(&wf, &platform) else {
            continue;
        };
        let at = format!(
            "cell {} ({} × {} × {}, seed {})",
            cell.index, cell.family, cell.platform, cell.scheduler, cell.seed
        );

        if broken == Some("schedule_invariants") {
            return Ok(Some(Divergence::sabotaged("schedule_invariants")));
        }
        if let Err(e) = plan.validate(&wf, &platform) {
            return Ok(Some(Divergence::new(
                "schedule_invariants",
                format!("{at}: planned schedule violates its contract: {e}"),
            )));
        }

        let plain = Engine::new(EngineConfig {
            seed: cell.seed,
            ..EngineConfig::default()
        })
        .execute_plan(&platform, &wf, &plan)?;
        if let Some(detail) = realized_violation(&at, &plain, wf.num_tasks()) {
            return Ok(Some(Divergence::new("schedule_invariants", detail)));
        }

        if broken == Some("hooks_off_identity") {
            return Ok(Some(Divergence::sabotaged("hooks_off_identity")));
        }
        let composed = Engine::new(all_hooks_off(cell.seed)).execute_plan(&platform, &wf, &plan)?;
        if plain != composed {
            return Ok(Some(Divergence::new(
                "hooks_off_identity",
                format!(
                    "{at}: all-hooks-off composition diverges from the plain engine \
                     (makespan {} vs {})",
                    composed.makespan().as_secs(),
                    plain.makespan().as_secs()
                ),
            )));
        }
        return Ok(None);
    }
    Ok(None)
}

/// An [`EngineConfig`] with every feature hook explicitly present but
/// disabled — the fuzz-facing twin of the conformance embryo's
/// `all_hooks_off` (which is test-only): zero noise,
/// contention/caching/tracing off, no faults or checkpointing, and a
/// step budget too large to ever fire.
fn all_hooks_off(seed: u64) -> EngineConfig {
    EngineConfig {
        noise_cv: 0.0,
        seed,
        link_contention: false,
        data_caching: false,
        device_slowdown: None,
        faults: None,
        checkpointing: None,
        tracing: false,
        resilience: None,
        elasticity: None,
        step_budget: Some(u64::MAX),
    }
}

/// Structural invariants of one realized execution report.
fn realized_violation(
    at: &str,
    report: &crate::report::ExecutionReport,
    num_tasks: usize,
) -> Option<String> {
    let realized = report.schedule();
    if realized.placements().len() != num_tasks {
        return Some(format!(
            "{at}: realized schedule covers {} of {num_tasks} tasks",
            realized.placements().len()
        ));
    }
    for p in realized.placements() {
        if p.start > p.finish {
            return Some(format!(
                "{at}: task {} starts at {} after finishing at {}",
                p.task,
                p.start.as_secs(),
                p.finish.as_secs()
            ));
        }
    }
    let makespan = report.makespan().as_secs();
    let realized_makespan = realized.makespan().as_secs();
    if !makespan.is_finite() || makespan + EPS < realized_makespan {
        return Some(format!(
            "{at}: reported makespan {makespan} is below the realized schedule's \
             {realized_makespan}"
        ));
    }
    let energy = report.energy().total_j();
    if !energy.is_finite() || energy < 0.0 {
        return Some(format!(
            "{at}: energy {energy} J is not finite and non-negative"
        ));
    }
    let bytes = report.transfers().bytes;
    if !bytes.is_finite() || bytes < 0.0 {
        return Some(format!(
            "{at}: transfer bytes {bytes} not finite and non-negative"
        ));
    }
    None
}

/// Sweep-level oracles: cell-result invariants, `--jobs` identity,
/// shard-merge identity and the fault-free lower bound.
fn sweep_oracles(
    spec: &CampaignSpec,
    broken: Option<&str>,
) -> Result<Option<Divergence>, EngineError> {
    let reference = SweepDriver::new(1).run(spec)?;
    if let Some(detail) = cell_result_violation(spec, &reference) {
        return Ok(Some(Divergence::new("schedule_invariants", detail)));
    }

    if broken == Some("jobs_identity") {
        return Ok(Some(Divergence::sabotaged("jobs_identity")));
    }
    let reference_bytes = report_bytes(&reference)?;
    let parallel = SweepDriver::new(3).run(spec)?;
    if report_bytes(&parallel)? != reference_bytes {
        return Ok(Some(Divergence::new(
            "jobs_identity",
            "--jobs 3 sweep bytes differ from the sequential reference".into(),
        )));
    }

    if broken == Some("shard_identity") {
        return Ok(Some(Divergence::sabotaged("shard_identity")));
    }
    let driver = SweepDriver::new(1);
    let s1 = driver.run_shard(spec, ShardSpec::new(1, 2)?)?;
    let s2 = driver.run_shard(spec, ShardSpec::new(2, 2)?)?;
    let merged = merge_shards(&[s2, s1])?;
    if report_bytes(&merged)? != reference_bytes {
        return Ok(Some(Divergence::new(
            "shard_identity",
            "merged {1/2, 2/2} shard bytes differ from the unsharded reference".into(),
        )));
    }

    if let Some(d) = crash_resume_identity(spec, &reference_bytes, broken)? {
        return Ok(Some(d));
    }

    if let Some(d) = store_identity(spec, &reference_bytes, broken)? {
        return Ok(Some(d));
    }

    fault_free_bound(spec, &reference, broken)
}

/// Kills a journaled sweep twice — once at a spec-derived cell
/// boundary, once mid-record via the torn-write hook — then salvages,
/// resumes, and demands the compiled report match the straight-through
/// bytes exactly. The crash points derive from the spec digest, so a
/// shrunk fixture replays the identical crash.
fn crash_resume_identity(
    spec: &CampaignSpec,
    reference_bytes: &str,
    broken: Option<&str>,
) -> Result<Option<Divergence>, EngineError> {
    if broken == Some("crash_resume_identity") {
        return Ok(Some(Divergence::sabotaged("crash_resume_identity")));
    }
    let total = spec.expand()?.len();
    let digest = spec.digest();
    let h = crate::campaign::spec::fnv1a(digest.as_bytes());
    let driver = SweepDriver::new(1);
    let path = scratch_path("journal");
    let _ = std::fs::remove_file(&path);
    let result = crash_resume_identity_at(spec, reference_bytes, total, h, &driver, &path);
    let _ = std::fs::remove_file(&path);
    result
}

fn crash_resume_identity_at(
    spec: &CampaignSpec,
    reference_bytes: &str,
    total: usize,
    h: u64,
    driver: &SweepDriver,
    path: &std::path::Path,
) -> Result<Option<Divergence>, EngineError> {
    use crate::campaign::journal::TORN_WRITE_INJECTED;
    use crate::campaign::JournalOptions;

    // (a) Crash at a cell boundary: run 0..total-1 cells, then resume.
    let cut = (h as usize) % total;
    driver.run_journal(
        spec,
        ShardSpec::full(),
        path,
        &JournalOptions {
            limit: Some(cut),
            ..JournalOptions::default()
        },
    )?;
    let resumed = driver.run_journal(spec, ShardSpec::full(), path, &JournalOptions::default())?;
    if resumed.salvaged_cells != cut {
        return Ok(Some(Divergence::new(
            "crash_resume_identity",
            format!(
                "journal salvaged {} cells after a boundary crash at {cut}",
                resumed.salvaged_cells
            ),
        )));
    }
    if report_bytes(&merge_shards(&[resumed.report])?)? != reference_bytes {
        return Ok(Some(Divergence::new(
            "crash_resume_identity",
            format!("resume after a boundary crash at cell {cut} diverges from the straight-through run"),
        )));
    }

    // (b) Tear a record mid-write: every cell appends one attempt and
    // one completion record, so ordinal `h % 2·total` always lands on
    // a real append; salvage must truncate the half-record and the
    // resumed bytes must still match.
    std::fs::remove_file(path)
        .map_err(|e| EngineError::Config(format!("fuzz scratch journal: {e}")))?;
    let tear = h % (2 * total as u64);
    match driver.run_journal(
        spec,
        ShardSpec::full(),
        path,
        &JournalOptions {
            tear_after: Some(tear),
            ..JournalOptions::default()
        },
    ) {
        Ok(_) => {
            return Ok(Some(Divergence::new(
                "crash_resume_identity",
                format!("armed torn-write hook at append {tear} never fired"),
            )));
        }
        Err(e) if e.to_string().contains(TORN_WRITE_INJECTED) => {}
        Err(e) => return Err(e),
    }
    let resumed = driver.run_journal(spec, ShardSpec::full(), path, &JournalOptions::default())?;
    if resumed.dropped_bytes == 0 {
        return Ok(Some(Divergence::new(
            "crash_resume_identity",
            format!("torn write at append {tear} left no measurable torn tail"),
        )));
    }
    if report_bytes(&merge_shards(&[resumed.report])?)? != reference_bytes {
        return Ok(Some(Divergence::new(
            "crash_resume_identity",
            format!(
                "resume after a mid-record tear at append {tear} diverges from the \
                 straight-through run"
            ),
        )));
    }
    Ok(None)
}

/// Runs the same sweep through the columnar store path — straight
/// through, and killed at a spec-derived cell boundary then resumed
/// from the salvaged row groups — and demands the report compiled from
/// the store match the straight-through bytes exactly. This is the
/// round-trip theorem of the store refactor: encode → segment file →
/// salvage → decode must reproduce every `CellResult` bit for bit.
fn store_identity(
    spec: &CampaignSpec,
    reference_bytes: &str,
    broken: Option<&str>,
) -> Result<Option<Divergence>, EngineError> {
    if broken == Some("store_identity") {
        return Ok(Some(Divergence::sabotaged("store_identity")));
    }
    let total = spec.expand()?.len();
    let digest = spec.digest();
    let h = crate::campaign::spec::fnv1a(digest.as_bytes());
    let driver = SweepDriver::new(1);
    let path = scratch_path("store");
    let _ = std::fs::remove_file(&path);
    let result = store_identity_at(spec, reference_bytes, total, h, &driver, &path);
    let _ = std::fs::remove_file(&path);
    result
}

fn store_identity_at(
    spec: &CampaignSpec,
    reference_bytes: &str,
    total: usize,
    h: u64,
    driver: &SweepDriver,
    path: &std::path::Path,
) -> Result<Option<Divergence>, EngineError> {
    use crate::campaign::StoreOptions;

    // (a) Straight through the store.
    let run = driver.run_store(spec, ShardSpec::full(), path, &StoreOptions::default())?;
    if report_bytes(&merge_shards(&[run.report])?)? != reference_bytes {
        return Ok(Some(Divergence::new(
            "store_identity",
            "report compiled from the columnar store diverges from the straight-through run".into(),
        )));
    }

    // (b) Crash at a spec-derived cell boundary, then resume from the
    // salvaged row groups.
    std::fs::remove_file(path)
        .map_err(|e| EngineError::Config(format!("fuzz scratch store: {e}")))?;
    let cut = (h as usize) % total;
    driver.run_store(
        spec,
        ShardSpec::full(),
        path,
        &StoreOptions {
            limit: Some(cut),
            ..StoreOptions::default()
        },
    )?;
    let resumed = driver.run_store(spec, ShardSpec::full(), path, &StoreOptions::default())?;
    if resumed.salvaged_rows != cut {
        return Ok(Some(Divergence::new(
            "store_identity",
            format!(
                "store salvaged {} rows after a boundary crash at {cut}",
                resumed.salvaged_rows
            ),
        )));
    }
    if report_bytes(&merge_shards(&[resumed.report])?)? != reference_bytes {
        return Ok(Some(Divergence::new(
            "store_identity",
            format!(
                "resume from the store after a boundary crash at cell {cut} diverges from \
                 the straight-through run"
            ),
        )));
    }
    Ok(None)
}

/// A collision-free scratch path for one oracle invocation: tests run
/// `check_spec` concurrently, so pid alone is not unique.
fn scratch_path(ext: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("helios-fuzz-{}-{seq}.{ext}", std::process::id()))
}

/// Serializes a sweep report the way `campaign run --out` does; the
/// identity oracles compare these exact bytes.
fn report_bytes(report: &SweepReport) -> Result<String, EngineError> {
    serde_json::to_string_pretty(report)
        .map_err(|e| EngineError::Config(format!("sweep report does not serialize: {e}")))
}

/// Every cell is either complete with finite, non-negative metrics or
/// incomplete with zeroed metrics and a normalized reason string.
fn cell_result_violation(spec: &CampaignSpec, report: &SweepReport) -> Option<String> {
    let resilient = spec.resilience.is_some();
    for r in &report.cells {
        let at = format!(
            "cell {} ({} × {} × {}, seed {})",
            r.cell, r.family, r.platform, r.scheduler, r.seed
        );
        if r.completed {
            if r.incomplete_reason.is_some() {
                return Some(format!(
                    "{at}: complete but carries incomplete_reason {:?}",
                    r.incomplete_reason
                ));
            }
            for (name, v) in [
                ("makespan_secs", r.makespan_secs),
                ("slr", r.slr),
                ("energy_j", r.energy_j),
                ("transfer_bytes", r.transfer_bytes),
                ("wasted_work_secs", r.wasted_work_secs),
                ("recovery_overhead_secs", r.recovery_overhead_secs),
                ("partition_downtime_secs", r.partition_downtime_secs),
                ("capacity_secs", r.capacity_secs),
                ("join_utilization", r.join_utilization),
            ] {
                if !v.is_finite() || v < 0.0 {
                    return Some(format!("{at}: {name} = {v} is not finite and non-negative"));
                }
            }
            if resilient && bound_applies(spec) && r.makespan_degradation < -EPS {
                return Some(format!(
                    "{at}: makespan_degradation {} < 0 — the faulted run beat its own \
                     fault-free baseline under a work-conserving policy",
                    r.makespan_degradation
                ));
            }
        } else {
            match &r.incomplete_reason {
                None => {
                    return Some(format!("{at}: incomplete without an incomplete_reason"));
                }
                Some(reason) => {
                    if !IncompleteReason::ALL.iter().any(|k| k.as_str() == reason) {
                        return Some(format!(
                            "{at}: incomplete_reason {reason:?} is not in the normalized \
                             vocabulary"
                        ));
                    }
                }
            }
            if r.makespan_secs != 0.0 || r.energy_j != 0.0 {
                return Some(format!(
                    "{at}: incomplete cell reports nonzero metrics (makespan {}, energy {})",
                    r.makespan_secs, r.energy_j
                ));
            }
        }
    }
    None
}

/// For faulted or resilient specs: every cell completed both with and
/// without injection must not beat the injection-free makespan of the
/// same configuration (policy overheads included in both runs).
fn fault_free_bound(
    spec: &CampaignSpec,
    reference: &SweepReport,
    broken: Option<&str>,
) -> Result<Option<Divergence>, EngineError> {
    if spec.faults.is_none() && spec.resilience.is_none() {
        return Ok(None);
    }
    if broken == Some("fault_free_bound") {
        return Ok(Some(Divergence::sabotaged("fault_free_bound")));
    }
    if !bound_applies(spec) {
        return Ok(None);
    }
    let variant = injection_free_variant(spec);
    let baseline = SweepDriver::new(1).run(&variant)?;
    for (r, b) in reference.cells.iter().zip(&baseline.cells) {
        // The injection-free variant must really be injection-free; a
        // cell that still failed (or never completed) has no bound.
        if !(r.completed && b.completed) || b.failures > 0 {
            continue;
        }
        let bound = b.makespan_secs * (1.0 - EPS) - EPS;
        if r.makespan_secs < bound {
            return Ok(Some(Divergence::new(
                "fault_free_bound",
                format!(
                    "cell {} ({} × {} × {}, seed {}): makespan {} under injection beats \
                     the injection-free lower bound {}",
                    r.cell,
                    r.family,
                    r.platform,
                    r.scheduler,
                    r.seed,
                    r.makespan_secs,
                    b.makespan_secs
                ),
            )));
        }
    }
    Ok(None)
}

/// Whether the fault-free lower bound is a theorem for this spec.
///
/// Failures only ever *add* time when recovery is work-conserving:
/// retry-backoff, checkpoint-restart and the legacy flat-retry block
/// re-run the same placement later, so every completion time is
/// monotone in the injected failures. Replication and re-planning
/// break the theorem legitimately — a fault that kills a redundant
/// replica frees its device early, and a post-failure replan may find
/// a better schedule than the original static plan — so the oracle
/// stands down rather than flag emergent (Graham-style) anomalies.
fn bound_applies(spec: &CampaignSpec) -> bool {
    if spec.link_contention {
        // Shared-link queueing is not work-conserving across cells: a
        // delayed transfer reorders the contention queue and can let a
        // competing chain finish earlier than in the fault-free run.
        return false;
    }
    if spec.elasticity.is_some() {
        // Capacity events re-shape the platform itself: a mid-run join
        // adds a device the static bound never had (and can legally
        // beat it), and a departure migrates the victim's queue — an
        // implicit replan. Mirrors the replicate-k exclusion; see
        // DESIGN.md §8.
        return false;
    }
    match &spec.resilience {
        None => spec.faults.is_some(),
        Some(r) => {
            // Permanent losses migrate the victim's tasks onto the
            // surviving devices — an implicit replan that can land on a
            // faster device than the original static placement.
            let no_permanent_loss = r.permanent_prob == 0.0
                && spec.failure_domains.iter().all(|d| d.permanent_prob == 0.0);
            no_permanent_loss
                && matches!(
                    r.policy,
                    crate::campaign::PolicyKnob::RetryBackoff { .. }
                        | crate::campaign::PolicyKnob::CheckpointRestart { .. }
                )
        }
    }
}

/// The same spec with failure injection turned off: the legacy fault
/// block dropped, and every resilience-stack MTTF pushed past the
/// heat death of any simulated run (`1e12` s) so the policy machinery
/// (replication, checkpoint cadence, overheads) stays in place while
/// no failure ever fires.
fn injection_free_variant(spec: &CampaignSpec) -> CampaignSpec {
    let mut v = spec.clone();
    v.name = format!("{}-injection-free", spec.name);
    v.faults = None;
    if let Some(r) = &mut v.resilience {
        r.mttf_secs = 1e12;
    }
    if let Some(i) = &mut v.interconnect_faults {
        i.mttf_secs = 1e12;
    }
    for d in &mut v.failure_domains {
        d.mttf_secs = 1e12;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzz::gen::generate_spec;

    /// A tiny fault-free single-cell spec, cheap enough for debug-mode
    /// oracle tests.
    fn small_spec() -> CampaignSpec {
        CampaignSpec::from_json(
            r#"{
                "name": "oracle-small",
                "families": ["montage"],
                "platforms": ["workstation"],
                "schedulers": ["heft"],
                "seeds": {"base": 3, "count": 1},
                "tasks": 16
            }"#,
        )
        .expect("spec is valid")
    }

    #[test]
    fn clean_specs_pass_all_oracles() {
        assert_eq!(check_spec(&small_spec(), None).expect("oracles run"), None);
        // A handful of generated cases, covering feature-rich specs.
        for case in 0..4 {
            let spec = generate_spec(7, case);
            let verdict = check_spec(&spec, None).expect("oracles run");
            assert_eq!(verdict, None, "case {case} ({:?}) diverged", spec.name);
        }
    }

    #[test]
    fn sabotage_hook_fires_each_named_oracle() {
        let spec = small_spec();
        for &oracle in &[
            "schedule_invariants",
            "hooks_off_identity",
            "jobs_identity",
            "shard_identity",
            "crash_resume_identity",
            "store_identity",
        ] {
            let d = check_spec(&spec, Some(oracle))
                .expect("oracles run")
                .unwrap_or_else(|| panic!("sabotaged {oracle} did not fire"));
            assert_eq!(d.oracle, oracle);
        }
        // `fault_free_bound` only runs on faulted specs.
        assert_eq!(check_spec(&spec, Some("fault_free_bound")).unwrap(), None);
        let mut faulted = small_spec();
        faulted.faults = Some(crate::campaign::FaultKnob {
            mtbf_secs: 10.0,
            restart_overhead_secs: 0.0,
            max_retries: 3,
        });
        let d = check_spec(&faulted, Some("fault_free_bound"))
            .unwrap()
            .unwrap();
        assert_eq!(d.oracle, "fault_free_bound");
    }

    /// Deep soak over many generated cases; ignored by default because
    /// it costs minutes in debug mode. Run explicitly (release build)
    /// when touching the generator or an oracle:
    /// `cargo test --release -p helios-core fuzz:: -- --ignored`.
    #[test]
    #[ignore = "deep soak; run explicitly in release when touching the harness"]
    fn deep_soak_many_cases_pass() {
        for case in 0..150 {
            let spec = generate_spec(1234, case);
            let verdict = check_spec(&spec, None).expect("oracles run");
            assert_eq!(verdict, None, "case {case} ({:?}) diverged", spec.name);
        }
    }

    #[test]
    fn unknown_broken_oracle_is_an_error() {
        let err = check_spec(&small_spec(), Some("no-such-oracle")).unwrap_err();
        assert!(err.to_string().contains("no-such-oracle"), "{err}");
    }

    #[test]
    fn infeasible_grids_pass_without_plannable_cells() {
        // cybershake working sets exceed every edge_soc device: no cell
        // plans, the sweep records infeasible measurements, and the
        // oracles must treat that as a clean (non-diverging) case.
        let spec = CampaignSpec::from_json(
            r#"{
                "name": "oracle-infeasible",
                "families": ["cybershake"],
                "platforms": ["edge_soc"],
                "schedulers": ["heft"],
                "seeds": {"base": 0, "count": 1},
                "tasks": 40
            }"#,
        )
        .expect("spec is valid");
        assert_eq!(check_spec(&spec, None).expect("oracles run"), None);
    }
}
