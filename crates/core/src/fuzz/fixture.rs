//! Replayable bug fixtures: the JSON files committed under
//! `tests/bugbase/` when a fuzz case diverges. A fixture carries the
//! shrunk spec plus a structured trace — which oracle fired, on which
//! case of which fuzz seed, and after how many shrink steps — so a
//! single `helios fuzz --replay <fixture>` re-runs the exact case
//! deterministically, and the bugbase harness test replays the whole
//! corpus to keep fixed bugs fixed.

use serde::{Deserialize, Serialize};

use crate::campaign::CampaignSpec;
use crate::error::EngineError;

use super::oracle::{check_spec, Divergence};

/// One shrunk, replayable fuzz failure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BugFixture {
    /// Fixture format version, for forward evolution of the bugbase.
    pub version: u32,
    /// The oracle that fired, one of [`ORACLES`](super::ORACLES).
    pub oracle: String,
    /// The divergence trace at the minimal spec.
    pub detail: String,
    /// The `--seed` of the fuzz run that found the bug.
    pub fuzz_seed: u64,
    /// The case index within that run.
    pub case_index: u64,
    /// Reductions the shrinker applied to reach the minimal spec.
    pub shrink_steps: u64,
    /// Content digest of the shrunk spec (see [`CampaignSpec::digest`]);
    /// replay refuses a fixture whose spec was edited without updating
    /// the digest.
    pub spec_digest: String,
    /// The minimal spec that reproduced the divergence.
    pub spec: CampaignSpec,
}

impl BugFixture {
    /// The current fixture format version.
    pub const VERSION: u32 = 1;

    /// Packages a shrunk divergence as a fixture.
    #[must_use]
    pub fn new(
        divergence: &Divergence,
        fuzz_seed: u64,
        case_index: usize,
        shrink_steps: usize,
        spec: CampaignSpec,
    ) -> BugFixture {
        BugFixture {
            version: BugFixture::VERSION,
            oracle: divergence.oracle.clone(),
            detail: divergence.detail.clone(),
            fuzz_seed,
            case_index: case_index as u64,
            shrink_steps: shrink_steps as u64,
            spec_digest: spec.digest(),
            spec,
        }
    }

    /// The canonical file name inside the bugbase directory: the oracle
    /// that fired plus the spec digest, so distinct bugs never collide
    /// and re-finding the same shrunk spec overwrites in place.
    #[must_use]
    pub fn file_name(&self) -> String {
        format!("{}-{}.json", self.oracle, self.spec_digest)
    }

    /// Serializes the fixture as pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] if serialization fails.
    pub fn to_json(&self) -> Result<String, EngineError> {
        serde_json::to_string_pretty(self)
            .map_err(|e| EngineError::Config(format!("fixture does not serialize: {e}")))
    }

    /// Parses and cross-checks a fixture: the JSON must deserialize,
    /// the embedded spec must validate, the recorded oracle must exist
    /// and the spec digest must match the embedded spec.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] naming what is wrong with the
    /// fixture.
    pub fn from_json(json: &str) -> Result<BugFixture, EngineError> {
        let fixture: BugFixture = serde_json::from_str(json)
            .map_err(|e| EngineError::Config(format!("malformed bug fixture: {e}")))?;
        if fixture.version != BugFixture::VERSION {
            return Err(EngineError::Config(format!(
                "bug fixture version {} is not the supported version {}",
                fixture.version,
                BugFixture::VERSION
            )));
        }
        if !super::ORACLES.contains(&fixture.oracle.as_str()) {
            return Err(EngineError::Config(format!(
                "bug fixture names unknown oracle {:?}; oracles: {}",
                fixture.oracle,
                super::ORACLES.join(", ")
            )));
        }
        fixture.spec.validate()?;
        let digest = fixture.spec.digest();
        if digest != fixture.spec_digest {
            return Err(EngineError::Config(format!(
                "bug fixture digest {} does not match its spec ({digest}); \
                 re-shrink instead of editing fixtures by hand",
                fixture.spec_digest
            )));
        }
        Ok(fixture)
    }

    /// Re-runs the fixture's spec through the oracles. `None` means the
    /// recorded bug stays fixed; `Some` is a regression (or, with the
    /// sabotage hook armed, the harness acceptance path).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] if the spec cannot be swept at all.
    pub fn replay(&self, broken: Option<&str>) -> Result<Option<Divergence>, EngineError> {
        check_spec(&self.spec, broken)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> BugFixture {
        let spec = CampaignSpec::from_json(
            r#"{
                "name": "fixture-roundtrip",
                "families": ["montage"],
                "platforms": ["workstation"],
                "schedulers": ["heft"],
                "seeds": {"base": 0, "count": 1},
                "tasks": 16
            }"#,
        )
        .expect("spec is valid");
        let div = Divergence {
            oracle: "jobs_identity".into(),
            detail: "test trace".into(),
        };
        BugFixture::new(&div, 7, 3, 5, spec)
    }

    #[test]
    fn roundtrips_through_json() {
        let f = fixture();
        let json = f.to_json().expect("serializes");
        let back = BugFixture::from_json(&json).expect("parses");
        assert_eq!(f, back);
        assert_eq!(
            back.file_name(),
            format!("jobs_identity-{}.json", back.spec_digest)
        );
    }

    #[test]
    fn rejects_tampered_spec_and_unknown_oracle() {
        let f = fixture();
        let json = f.to_json().expect("serializes");
        let tampered = json.replace("\"tasks\": 16", "\"tasks\": 17");
        let err = BugFixture::from_json(&tampered).expect_err("digest mismatch");
        assert!(err.to_string().contains("digest"), "{err}");

        let bad_oracle = json.replace("jobs_identity", "no_such_oracle");
        let err = BugFixture::from_json(&bad_oracle).expect_err("unknown oracle");
        assert!(err.to_string().contains("no_such_oracle"), "{err}");

        let bad_version = json.replace("\"version\": 1", "\"version\": 99");
        let err = BugFixture::from_json(&bad_version).expect_err("bad version");
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn replay_of_a_clean_spec_is_clean() {
        assert_eq!(fixture().replay(None).expect("replays"), None);
        // With the sabotage hook armed the recorded failure reproduces.
        let d = fixture()
            .replay(Some("jobs_identity"))
            .expect("replays")
            .expect("sabotage fires");
        assert_eq!(d.oracle, "jobs_identity");
    }
}
