//! Greedy structural shrinker: reduces a diverging campaign spec to a
//! minimal one on which the *same* oracle still fires.
//!
//! The algorithm is plain greedy descent to a fixpoint: propose
//! size-reducing candidate edits (drop a grid axis entry, halve the
//! task count, drop a fault class, clear a knob), re-run the oracles on
//! each candidate, and accept the first candidate that still diverges
//! on the target oracle — then start over from the smaller spec.
//! Candidates that fail validation or error during the check are
//! skipped, so e.g. a task count below the surviving family's minimum
//! rejects itself. A global evaluation budget bounds the worst case;
//! every accepted step strictly shrinks the spec, so the loop
//! terminates without it.

use crate::campaign::spec::{CampaignSpec, DvfsKnob, PolicyKnob};

use super::oracle::{check_spec, Divergence};

/// The smallest task count any candidate proposes; families with a
/// higher minimum reject smaller candidates through their generator.
const TASK_FLOOR: usize = 8;

/// Upper bound on oracle evaluations across one shrink run.
const MAX_EVALS: usize = 400;

/// The result of shrinking one diverging spec.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The minimal spec that still fires the target oracle.
    pub spec: CampaignSpec,
    /// Accepted reduction steps.
    pub steps: usize,
    /// Oracle evaluations spent (accepted + rejected candidates).
    pub evals: usize,
    /// The divergence the minimal spec produces.
    pub divergence: Divergence,
}

/// Shrinks `spec`, on which `divergence` fired, to a minimal spec still
/// firing the same oracle. `broken` is threaded through to
/// [`check_spec`] so a sabotaged oracle shrinks the same way a real
/// divergence does.
#[must_use]
pub fn shrink_spec(
    spec: &CampaignSpec,
    divergence: &Divergence,
    broken: Option<&str>,
) -> ShrinkOutcome {
    let mut current = spec.clone();
    let mut current_div = divergence.clone();
    let mut steps = 0;
    let mut evals = 0;

    'descent: loop {
        for cand in candidates(&current) {
            if evals >= MAX_EVALS {
                break 'descent;
            }
            if cand.validate().is_err() {
                continue;
            }
            evals += 1;
            match check_spec(&cand, broken) {
                Ok(Some(d)) if d.oracle == current_div.oracle => {
                    current = cand;
                    current_div = d;
                    steps += 1;
                    continue 'descent;
                }
                // A clean candidate, a different oracle, or a hard
                // error: this reduction loses the bug — skip it.
                _ => {}
            }
        }
        break;
    }

    ShrinkOutcome {
        spec: current,
        steps,
        evals,
        divergence: current_div,
    }
}

/// All candidate reductions of `spec`, largest first: grid-axis drops
/// shed whole cell rows, then the fault stack peels away class by
/// class, then scalar knobs reset toward the quiet defaults.
fn candidates(spec: &CampaignSpec) -> Vec<CampaignSpec> {
    let mut out: Vec<CampaignSpec> = Vec::new();

    // Grid-axis drops: one candidate per removable entry.
    if spec.families.len() > 1 {
        for i in 0..spec.families.len() {
            let mut c = spec.clone();
            c.families.remove(i);
            out.push(c);
        }
    }
    if spec.platforms.len() > 1 {
        for i in 0..spec.platforms.len() {
            let mut c = spec.clone();
            c.platforms.remove(i);
            out.push(c);
        }
    }
    if spec.schedulers.len() > 1 {
        for i in 0..spec.schedulers.len() {
            let mut c = spec.clone();
            c.schedulers.remove(i);
            out.push(c);
        }
    }
    if spec.seeds.count > 1 {
        let mut c = spec.clone();
        c.seeds.count = 1;
        out.push(c);
    }
    if spec.tasks > TASK_FLOOR {
        // Halve first; the single-step decrement is the fallback for
        // when halving overshoots the surviving family's minimum size
        // (each family generator rejects counts below its floor).
        let mut c = spec.clone();
        c.tasks = TASK_FLOOR.max(spec.tasks / 2);
        out.push(c);
        let mut c = spec.clone();
        c.tasks = spec.tasks - 1;
        out.push(c);
    }

    // Fault-stack drops, coarsest first: the whole resilience block
    // (with its dependents, which cannot stand alone), then the legacy
    // block, then interconnect faults, then domains one by one.
    if spec.resilience.is_some() {
        let mut c = spec.clone();
        c.resilience = None;
        c.interconnect_faults = None;
        c.failure_domains.clear();
        out.push(c);
    }
    if spec.faults.is_some() {
        let mut c = spec.clone();
        c.faults = None;
        out.push(c);
    }
    if spec.interconnect_faults.is_some() {
        let mut c = spec.clone();
        c.interconnect_faults = None;
        out.push(c);
    }
    for i in 0..spec.failure_domains.len() {
        let mut c = spec.clone();
        c.failure_domains.remove(i);
        out.push(c);
    }
    if let Some(r) = &spec.resilience {
        // Simplify the policy to the flat-retry floor; gated on not
        // already being there so an accepted step never reappears.
        let floor = PolicyKnob::RetryBackoff {
            base_secs: 0.0,
            factor: 1.0,
            cap_secs: 0.0,
            max_retries: 3,
        };
        if r.policy != floor {
            let mut c = spec.clone();
            c.resilience.as_mut().expect("resilience present").policy = floor;
            out.push(c);
        }
        if r.weibull_shape.is_some() {
            let mut c = spec.clone();
            c.resilience
                .as_mut()
                .expect("resilience present")
                .weibull_shape = None;
            out.push(c);
        }
    }

    // Scalar-knob resets.
    if spec.scheduler_params.is_some() {
        let mut c = spec.clone();
        c.scheduler_params = None;
        out.push(c);
    }
    if spec.noise_cv != 0.0 {
        let mut c = spec.clone();
        c.noise_cv = 0.0;
        out.push(c);
    }
    if spec.link_contention {
        let mut c = spec.clone();
        c.link_contention = false;
        out.push(c);
    }
    if spec.data_caching {
        let mut c = spec.clone();
        c.data_caching = false;
        out.push(c);
    }
    if spec.dvfs != DvfsKnob::Nominal {
        let mut c = spec.clone();
        c.dvfs = DvfsKnob::Nominal;
        out.push(c);
    }
    if spec.cell_step_budget.is_some() {
        let mut c = spec.clone();
        c.cell_step_budget = None;
        out.push(c);
    }
    if spec.seeds.base != 0 {
        let mut c = spec.clone();
        c.seeds.base = 0;
        out.push(c);
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzz::gen::MIN_TASKS;

    /// A deliberately knob-heavy single-platform spec for shrink tests.
    fn rich_spec() -> CampaignSpec {
        CampaignSpec::from_json(
            r#"{
                "name": "shrink-rich",
                "families": ["montage", "sipht"],
                "platforms": ["workstation"],
                "schedulers": ["heft", "olb"],
                "seeds": {"base": 17, "count": 2},
                "tasks": 24,
                "noise_cv": 0.1,
                "link_contention": true,
                "data_caching": true,
                "dvfs": "powersave",
                "cell_step_budget": 4000000,
                "resilience": {
                    "mttf_secs": 2.0,
                    "weibull_shape": 1.3,
                    "policy": {"kind": "replicate-k", "replicas": 2, "max_retries": 4}
                }
            }"#,
        )
        .expect("spec is valid")
    }

    #[test]
    fn sabotaged_oracle_shrinks_to_the_floor() {
        let spec = rich_spec();
        let div = check_spec(&spec, Some("jobs_identity"))
            .expect("oracles run")
            .expect("sabotaged oracle fires");
        let out = shrink_spec(&spec, &div, Some("jobs_identity"));
        assert_eq!(out.divergence.oracle, "jobs_identity");
        assert_eq!(
            out.spec.families.len(),
            1,
            "families: {:?}",
            out.spec.families
        );
        assert_eq!(out.spec.platforms.len(), 1);
        assert_eq!(out.spec.schedulers.len(), 1);
        assert_eq!(out.spec.seeds.count, 1);
        assert_eq!(out.spec.seeds.base, 0);
        assert!(out.spec.tasks <= MIN_TASKS, "tasks: {}", out.spec.tasks);
        assert!(out.spec.resilience.is_none());
        assert!(out.spec.cell_step_budget.is_none());
        assert_eq!(out.spec.noise_cv, 0.0);
        assert!(!out.spec.link_contention && !out.spec.data_caching);
        assert_eq!(out.spec.dvfs, DvfsKnob::Nominal);
        assert!(out.steps > 0 && out.evals >= out.steps);
        // The shrunk spec still fires the oracle — the replay contract.
        let replayed = check_spec(&out.spec, Some("jobs_identity"))
            .expect("oracles run")
            .expect("minimal spec still fires");
        assert_eq!(replayed.oracle, "jobs_identity");
    }

    #[test]
    fn shrink_never_accepts_a_clean_candidate() {
        // Against real (un-sabotaged) oracles a clean spec never
        // diverges, so shrinking a fabricated divergence must keep the
        // spec unchanged: every candidate comes back clean.
        let spec = CampaignSpec::from_json(
            r#"{
                "name": "shrink-clean",
                "families": ["montage"],
                "platforms": ["workstation"],
                "schedulers": ["heft"],
                "seeds": {"base": 5, "count": 1},
                "tasks": 16,
                "noise_cv": 0.05
            }"#,
        )
        .expect("spec is valid");
        let fake = Divergence {
            oracle: "jobs_identity".into(),
            detail: "fabricated".into(),
        };
        let out = shrink_spec(&spec, &fake, None);
        assert_eq!(out.steps, 0);
        assert_eq!(out.spec, spec);
    }
}
