//! Link-health verdicts and the reroute-on-link-down preference order —
//! the single copy of the routing decisions the resilient runner stages
//! transfers through.

use helios_platform::{LinkAvailability, LinkHealth, LinkId};
use helios_sim::SimTime;

/// Health of a whole route at one instant (see [`classify_route`]).
#[derive(Debug, Clone, Copy)]
pub(crate) enum RouteNow {
    /// Every link up; `scale` ≥ 1 folds in bandwidth degradation.
    Up { scale: f64 },
    /// At least one link down but repairable: usable from `at`.
    Heals { at: SimTime, scale: f64 },
    /// At least one link permanently severed.
    Severed,
}

/// Health of `route` right now, folding per-link states into one
/// verdict: worst slowdown, latest repair, or permanent severance.
pub(crate) fn classify_route(la: &LinkAvailability, route: &[LinkId], ready: SimTime) -> RouteNow {
    let mut scale = 1.0_f64;
    let mut heal = ready;
    let mut down = false;
    for &l in route {
        match la.state(l) {
            LinkHealth::Up => {}
            LinkHealth::Degraded { factor } => scale = scale.max(factor),
            LinkHealth::Down { until: Some(t) } => {
                down = true;
                heal = heal.max(t);
            }
            LinkHealth::Down { until: None } => return RouteNow::Severed,
        }
    }
    if down {
        RouteNow::Heals { at: heal, scale }
    } else {
        RouteNow::Up { scale }
    }
}

/// The route a transfer should take given the health of its primary
/// route and (optionally) a fallback detour (see [`choose_route`]).
#[derive(Debug, Clone, Copy)]
pub(crate) enum RouteChoice<'r> {
    /// Stage over `route`, anchored at `anchor` (later than the ready
    /// instant when the transfer stalls for a repair), stretched by
    /// `scale`; `rerouted` marks a fallback detour.
    Go {
        route: &'r [LinkId],
        anchor: SimTime,
        scale: f64,
        rerouted: bool,
    },
    /// Every candidate route is permanently severed: the destination is
    /// partitioned away from the producer.
    Severed,
}

/// Applies the reroute-on-link-down preference order to a transfer
/// ready at `ready`: any route that is up now (primary first), then the
/// route that heals earliest (primary on ties), and only if every
/// candidate is permanently severed, [`RouteChoice::Severed`].
pub(crate) fn choose_route<'r>(
    la: &LinkAvailability,
    primary: &'r [LinkId],
    fallback: Option<&'r [LinkId]>,
    ready: SimTime,
) -> RouteChoice<'r> {
    let pri = classify_route(la, primary, ready);
    let fb = fallback.map(|r| classify_route(la, r, ready));
    match (pri, fb) {
        (RouteNow::Up { scale }, _) => RouteChoice::Go {
            route: primary,
            anchor: ready,
            scale,
            rerouted: false,
        },
        (_, Some(RouteNow::Up { scale })) => RouteChoice::Go {
            route: fallback.expect("classified"),
            anchor: ready,
            scale,
            rerouted: true,
        },
        (RouteNow::Heals { at, scale }, fb) => match fb {
            Some(RouteNow::Heals {
                at: fat,
                scale: fsc,
            }) if fat < at => RouteChoice::Go {
                route: fallback.expect("classified"),
                anchor: fat,
                scale: fsc,
                rerouted: true,
            },
            _ => RouteChoice::Go {
                route: primary,
                anchor: at,
                scale,
                rerouted: false,
            },
        },
        (RouteNow::Severed, Some(RouteNow::Heals { at, scale })) => RouteChoice::Go {
            route: fallback.expect("classified"),
            anchor: at,
            scale,
            rerouted: true,
        },
        (RouteNow::Severed, _) => RouteChoice::Severed,
    }
}
