//! Per-attempt occupancy math: how long a task holds its device under
//! noise, checkpoint overhead and fault retries. Every execution path
//! charges its timeline through this single copy.

use helios_sim::{SimDuration, SimRng};
use helios_workflow::TaskId;

use crate::config::FaultView;
use crate::error::EngineError;
use crate::exec::{FAULT_STREAM_BASE, NOISE_STREAM_BASE};

/// Per-attempt execution outcome used by both the static and online
/// executors.
pub(crate) struct Occupancy {
    /// Total device time from start to completion, including retries.
    pub total: SimDuration,
    /// Fault-free device time (work + checkpoint writes, no retries):
    /// the duration dispatchers should calibrate their models against,
    /// since fault stalls carry no information about task cost.
    pub work: SimDuration,
    /// Faults that hit this task.
    pub failures: u32,
    /// Retries performed.
    pub retries: u32,
}

/// Computes how long a task occupies its device, folding in noise
/// already applied to `actual_work`, plus checkpoint overheads and fault
/// retries.
#[cfg(test)]
pub(crate) fn occupancy(
    config: &crate::config::EngineConfig,
    actual_work: SimDuration,
    task: TaskId,
    fault_rng: &mut SimRng,
) -> Result<Occupancy, EngineError> {
    occupancy_on(&config.fault_view()?, actual_work, task, 0, fault_rng)
}

/// [`occupancy`](self) with per-device MTBF resolution.
pub(crate) fn occupancy_on(
    view: &FaultView,
    actual_work: SimDuration,
    task: TaskId,
    device_id: usize,
    fault_rng: &mut SimRng,
) -> Result<Occupancy, EngineError> {
    let ckpt_inflate = |work: SimDuration| match view.checkpointing {
        Some(ck) => {
            let snapshots = (work.as_secs() / ck.interval.as_secs()).floor();
            work + ck.overhead * snapshots
        }
        None => work,
    };
    let work = ckpt_inflate(actual_work);
    let Some(faults) = view.faults.as_ref() else {
        // No faults: only checkpoint overhead (if configured) applies.
        return Ok(Occupancy {
            total: work,
            work,
            failures: 0,
            retries: 0,
        });
    };

    let mut remaining = actual_work;
    let mut total = SimDuration::ZERO;
    let mut failures = 0u32;
    let mut retries = 0u32;
    loop {
        let effective = ckpt_inflate(remaining);
        let unit = view.checkpointing.map(|ck| (ck.interval, ck.overhead));
        let fault_at = SimDuration::from_secs(fault_rng.exponential(faults.mtbf_for(device_id)));
        if fault_at >= effective {
            total += effective;
            return Ok(Occupancy {
                total,
                work,
                failures,
                retries,
            });
        }
        failures += 1;
        if retries >= faults.max_retries {
            return Err(EngineError::RetriesExhausted {
                task,
                attempts: failures,
            });
        }
        retries += 1;
        let preserved = match unit {
            Some((interval, overhead)) => {
                let stride = interval + overhead;
                let completed_units = (fault_at.as_secs() / stride.as_secs()).floor();
                interval * completed_units
            }
            None => SimDuration::ZERO,
        };
        remaining = remaining - preserved;
        let backoff = view.backoff.map_or(0.0, |(b, f, c)| {
            crate::config::backoff_delay_secs(b, f, c, retries)
        });
        // The attempt's time, the restart overhead and any backoff all
        // occupy the device timeline: a faulty run can only be slower.
        total += fault_at + faults.restart_overhead + SimDuration::from_secs(backoff);
    }
}

/// The task's multiplicative execution-noise factor, drawn from the
/// task's dedicated stream (`NOISE_STREAM_BASE + task`) so it is
/// identical wherever — and in whatever event order — the task runs.
pub(crate) fn noise_factor(noise_cv: f64, base_rng: &SimRng, task: usize) -> f64 {
    if noise_cv > 0.0 {
        let mut rng = base_rng.fork(NOISE_STREAM_BASE + task as u64);
        rng.normal(1.0, noise_cv).max(0.05)
    } else {
        1.0
    }
}

/// The device's static slowdown factor (1.0 when unconfigured or out of
/// range).
pub(crate) fn slowdown_factor(slowdown: Option<&Vec<f64>>, device: usize) -> f64 {
    slowdown.and_then(|v| v.get(device)).copied().unwrap_or(1.0)
}

/// [`occupancy_on`] with the task's fault stream
/// (`FAULT_STREAM_BASE + task`) forked in place, so callers cannot
/// accidentally key fault draws by event order.
pub(crate) fn fault_occupancy(
    view: &FaultView,
    base_rng: &SimRng,
    actual_work: SimDuration,
    task: TaskId,
    device_id: usize,
) -> Result<Occupancy, EngineError> {
    let mut fault_rng = base_rng.fork(FAULT_STREAM_BASE + task.0 as u64);
    occupancy_on(view, actual_work, task, device_id, &mut fault_rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CheckpointConfig, EngineConfig};

    #[test]
    fn occupancy_math() {
        let mut rng = SimRng::seed_from(1);
        // No faults, no checkpoints: identity.
        let cfg = EngineConfig::default();
        let occ = occupancy(&cfg, SimDuration::from_secs(10.0), TaskId(0), &mut rng).unwrap();
        assert_eq!(occ.total.as_secs(), 10.0);
        assert_eq!(occ.failures, 0);
        // Checkpoints only: 10s work, 3s interval → 3 snapshots × 0.5s.
        let cfg = EngineConfig {
            checkpointing: Some(
                CheckpointConfig::new(SimDuration::from_secs(3.0), SimDuration::from_secs(0.5))
                    .unwrap(),
            ),
            ..Default::default()
        };
        let occ = occupancy(&cfg, SimDuration::from_secs(10.0), TaskId(0), &mut rng).unwrap();
        assert!((occ.total.as_secs() - 11.5).abs() < 1e-9);
    }
}
