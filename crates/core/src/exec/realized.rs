//! Realized-schedule repair and validation for wall-clock executors:
//! the services a real (threaded) execution path shares with the
//! simulated ones — its hook surface is the realized `Schedule`, which
//! must satisfy the same device-exclusivity and precedence invariants.

use helios_platform::DeviceId;
use helios_sched::{Placement, Schedule};
use helios_sim::SimTime;
use helios_workflow::{TaskId, Workflow};

use crate::error::EngineError;

/// Repairs derived starts that land inside the previous placement on
/// the same device.
///
/// A worker runs its device's tasks strictly in sequence, so observed
/// *finish* instants are monotone per device — but the derived start
/// `finish − duration` is not: nanosecond rounding of the scaled sleeps
/// and de-scaling back through the time factor can push a start a hair
/// before its predecessor's finish, which [`Schedule`] consumers treat
/// as two tasks on one device at once. The repair walks each device's
/// placements in finish order and clamps every start up to the previous
/// finish (never past the task's own finish), leaving observed finishes
/// untouched.
pub(crate) fn repair_device_overlaps(placements: &mut [Placement]) {
    let mut order: Vec<usize> = (0..placements.len()).collect();
    order.sort_by(|&a, &b| {
        placements[a]
            .device
            .cmp(&placements[b].device)
            .then(placements[a].finish.cmp(&placements[b].finish))
            .then(placements[a].task.cmp(&placements[b].task))
    });
    let mut cursor: Option<(DeviceId, SimTime)> = None;
    for &i in &order {
        let prev = match cursor {
            Some((dev, finish)) if dev == placements[i].device => finish,
            _ => SimTime::ZERO,
        };
        let p = &mut placements[i];
        if p.start < prev {
            // `prev <= p.finish` holds for worker-produced schedules;
            // the min keeps the repair total on arbitrary input.
            p.start = prev.min(p.finish);
        }
        cursor = Some((p.device, p.finish));
    }
}

/// Checks the invariants a realized wall-clock schedule must satisfy:
/// every task placed, no two placements overlapping on one device, and
/// every task starting at or after each predecessor's finish.
///
/// This is deliberately weaker than [`Schedule::validate`], which also
/// enforces *modeled* durations and transfer times — constraints a
/// schedule realized under OS jitter meets only approximately.
pub(crate) fn validate_realized(schedule: &Schedule, wf: &Workflow) -> Result<(), EngineError> {
    for i in 0..wf.num_tasks() {
        schedule.placement(TaskId(i))?;
    }
    let tol = 1e-6 * (1.0 + schedule.makespan().as_secs());
    for (dev, tasks) in schedule.tasks_by_device() {
        let mut prev: Option<Placement> = None;
        for &t in &tasks {
            let p = *schedule.placement(t)?;
            if let Some(q) = prev {
                if p.start.as_secs() + tol < q.finish.as_secs() {
                    return Err(EngineError::Executor(format!(
                        "realized schedule overlaps on device {dev}: {} [{:.9}, {:.9}] \
                         vs {} finishing {:.9}",
                        p.task,
                        p.start.as_secs(),
                        p.finish.as_secs(),
                        q.task,
                        q.finish.as_secs()
                    )));
                }
            }
            prev = Some(p);
        }
    }
    for p in schedule.placements() {
        for &e in wf.predecessors(p.task) {
            let pred = schedule.placement(wf.edge(e).src)?;
            if pred.finish.as_secs() > p.start.as_secs() + tol {
                return Err(EngineError::Executor(format!(
                    "realized schedule breaks precedence: {} starts {:.9} before \
                     predecessor {} finishes {:.9}",
                    p.task,
                    p.start.as_secs(),
                    pred.task,
                    pred.finish.as_secs()
                )));
            }
        }
    }
    Ok(())
}
