//! Cross-path conformance: the hook-composed core with every feature
//! hook off must be byte-identical to the plain `Engine` path, over
//! random DAGs × presets × schedulers. This is the structural guarantee
//! the evaluation leans on — "mode off" and "mode absent" are the same
//! machine.

use proptest::prelude::*;

use helios_platform::{presets, Platform};
use helios_sched::{HeftScheduler, MinMinScheduler, Scheduler};
use helios_workflow::generators;
use helios_workflow::Workflow;

use crate::config::EngineConfig;
use crate::engine::Engine;

fn workflow(family: usize, n: usize, seed: u64) -> Workflow {
    match family {
        0 => generators::montage(n, seed),
        1 => generators::cybershake(n, seed),
        2 => generators::epigenomics(n, seed),
        3 => generators::ligo_inspiral(n, seed),
        _ => generators::sipht(n, seed),
    }
    .expect("generator accepts these sizes")
}

fn platform(preset: usize) -> Platform {
    match preset {
        0 => presets::workstation(),
        1 => presets::hpc_node(),
        2 => presets::cluster(2),
        _ => presets::edge_soc(),
    }
}

/// An [`EngineConfig`] with every feature hook explicitly present but
/// disabled: zero noise, contention/caching/tracing off, no faults, no
/// checkpointing, and a step budget too large to ever fire. Running the
/// core with these hooks engaged must be indistinguishable from the
/// default (hook-absent) configuration.
fn all_hooks_off(seed: u64) -> EngineConfig {
    EngineConfig {
        noise_cv: 0.0,
        seed,
        link_contention: false,
        data_caching: false,
        device_slowdown: None,
        faults: None,
        checkpointing: None,
        tracing: false,
        resilience: None,
        elasticity: None,
        step_budget: Some(u64::MAX),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random DAG × preset × scheduler: the all-hooks-off composition
    /// (budget hook armed but unreachable, every other feature zeroed)
    /// is byte-identical to the plain default `Engine`.
    #[test]
    fn hooks_off_matches_plain_engine(
        family in 0usize..5,
        n in 20usize..60,
        wf_seed in 0u64..1_000,
        preset in 0usize..4,
        minmin: bool,
        engine_seed in 0u64..1_000,
    ) {
        let p = platform(preset);
        let wf = workflow(family, n, wf_seed);
        let plan = if minmin {
            MinMinScheduler::default().schedule(&wf, &p).unwrap()
        } else {
            HeftScheduler::default().schedule(&wf, &p).unwrap()
        };
        let plain_cfg = EngineConfig { seed: engine_seed, ..Default::default() };
        let plain = Engine::new(plain_cfg).execute_plan(&p, &wf, &plan).unwrap();
        let composed = Engine::new(all_hooks_off(engine_seed))
            .execute_plan(&p, &wf, &plan)
            .unwrap();
        prop_assert_eq!(plain, composed);
    }
}

#[cfg(test)]
mod pinned {
    use super::*;

    /// The seed-pinned sanity anchor for the property above: one cell
    /// per scheduler family, exact equality (not tolerance).
    #[test]
    fn hooks_off_identity_pinned_cell() {
        let p = presets::hpc_node();
        let wf = workflow(0, 50, 9);
        let plan = HeftScheduler::default().schedule(&wf, &p).unwrap();
        let plain = Engine::default().execute_plan(&p, &wf, &plan).unwrap();
        let composed = Engine::new(all_hooks_off(0))
            .execute_plan(&p, &wf, &plan)
            .unwrap();
        assert_eq!(plain, composed);
    }
}
