//! Shared report accounting: the one place an execution turns into an
//! [`ExecutionReport`], and the normalized vocabulary for runs that
//! stop short.

use helios_energy::account;
use helios_platform::Platform;
use helios_sched::{Placement, Schedule};
use helios_sim::trace::{Trace, TraceKind};
use helios_workflow::Workflow;

use crate::error::EngineError;
use crate::report::{ExecutionReport, TransferStats};

/// Assembles the final report from realized placements: records
/// execution spans on the trace, validates the schedule, accounts
/// energy, and packs the transfer/fault tallies. Every simulated path
/// ends here, so the report columns are computed identically
/// everywhere.
pub(crate) fn finish_report(
    platform: &Platform,
    wf: &Workflow,
    realized: Vec<Option<Placement>>,
    mut trace: Option<Trace>,
    stats: TransferStats,
    failures: u32,
    retries: u32,
) -> Result<ExecutionReport, EngineError> {
    let placements: Vec<Placement> = realized
        .into_iter()
        .map(|p| p.expect("all tasks completed"))
        .collect();
    if let Some(trace) = trace.as_mut() {
        for p in &placements {
            trace.record(
                wf.task(p.task)?.name().to_owned(),
                TraceKind::Execution,
                p.device.0,
                p.start,
                p.finish,
            );
        }
    }
    let schedule = Schedule::new(placements)?;
    let energy = account(&schedule, wf, platform, false)?;
    Ok(ExecutionReport::new(
        schedule, energy, stats, failures, retries, trace,
    ))
}

/// Why a run stopped short of completing, in the one normalized
/// vocabulary every runner and campaign cell reports through.
///
/// Campaign sweeps record these as measurements (a cell that timed out
/// or lost its workload depresses `completion_probability`) rather than
/// errors; the string forms written into reports come from
/// [`IncompleteReason::as_str`] and nowhere else, so no execution path
/// can invent free-form reasons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IncompleteReason {
    /// The per-cell step-budget watchdog fired
    /// ([`EngineError::StepBudgetExceeded`]).
    TimedOut,
    /// A task exhausted its retry budget
    /// ([`EngineError::RetriesExhausted`]).
    RetriesExhausted,
    /// Every device failed permanently
    /// ([`EngineError::AllDevicesLost`]).
    AllDevicesLost,
    /// Every elastic device departed with no join still pending
    /// ([`EngineError::CapacityExhausted`]). Elastic capacity running
    /// out is a property of the capacity plan being measured, not a
    /// campaign-driver failure.
    CapacityExhausted,
    /// No device on the platform can hold some task's working set
    /// ([`SchedError::NoFeasibleDevice`](helios_sched::SchedError)), so
    /// the cell could never have run. A grid pairing a large-memory
    /// family with a small-memory platform is a measurement — completion
    /// probability zero — not a campaign-driver crash.
    Infeasible,
    /// The cell's attempt record appears `poison_limit` times in a
    /// write-ahead journal with no completion record: executing it
    /// killed the process that many times, so the sweep quarantines it
    /// instead of crash-looping. Unlike the other reasons this is
    /// diagnosed from the journal, never classified from an error.
    Poisoned,
}

impl IncompleteReason {
    /// All reasons, in report order.
    pub const ALL: [IncompleteReason; 6] = [
        IncompleteReason::TimedOut,
        IncompleteReason::RetriesExhausted,
        IncompleteReason::AllDevicesLost,
        IncompleteReason::CapacityExhausted,
        IncompleteReason::Infeasible,
        IncompleteReason::Poisoned,
    ];

    /// The canonical report string (`timed_out`, `retries_exhausted`,
    /// `all_devices_lost`, `capacity_exhausted`, `infeasible`,
    /// `poisoned`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            IncompleteReason::TimedOut => "timed_out",
            IncompleteReason::RetriesExhausted => "retries_exhausted",
            IncompleteReason::AllDevicesLost => "all_devices_lost",
            IncompleteReason::CapacityExhausted => "capacity_exhausted",
            IncompleteReason::Infeasible => "infeasible",
            IncompleteReason::Poisoned => "poisoned",
        }
    }

    /// Classifies an execution error as an incomplete-run measurement,
    /// or `None` for genuine errors that must propagate.
    #[must_use]
    pub fn from_error(err: &EngineError) -> Option<IncompleteReason> {
        match err {
            EngineError::StepBudgetExceeded { .. } => Some(IncompleteReason::TimedOut),
            EngineError::RetriesExhausted { .. } => Some(IncompleteReason::RetriesExhausted),
            EngineError::AllDevicesLost { .. } => Some(IncompleteReason::AllDevicesLost),
            EngineError::CapacityExhausted { .. } => Some(IncompleteReason::CapacityExhausted),
            EngineError::Sched(helios_sched::SchedError::NoFeasibleDevice(_)) => {
                Some(IncompleteReason::Infeasible)
            }
            _ => None,
        }
    }
}

impl std::fmt::Display for IncompleteReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_workflow::TaskId;

    #[test]
    fn reasons_map_to_canonical_strings() {
        let strings: Vec<&str> = IncompleteReason::ALL.iter().map(|r| r.as_str()).collect();
        assert_eq!(
            strings,
            vec![
                "timed_out",
                "retries_exhausted",
                "all_devices_lost",
                "capacity_exhausted",
                "infeasible",
                "poisoned"
            ]
        );
    }

    #[test]
    fn classification_covers_exactly_the_measurement_errors() {
        assert_eq!(
            IncompleteReason::from_error(&EngineError::StepBudgetExceeded {
                steps: 1,
                completed: 0,
                total: 4
            }),
            Some(IncompleteReason::TimedOut)
        );
        assert_eq!(
            IncompleteReason::from_error(&EngineError::RetriesExhausted {
                task: TaskId(0),
                attempts: 3
            }),
            Some(IncompleteReason::RetriesExhausted)
        );
        assert_eq!(
            IncompleteReason::from_error(&EngineError::AllDevicesLost {
                at_secs: 2.0,
                completed: 1,
                total: 4
            }),
            Some(IncompleteReason::AllDevicesLost)
        );
        assert_eq!(
            IncompleteReason::from_error(&EngineError::CapacityExhausted {
                at_secs: 3.0,
                completed: 2,
                total: 4
            }),
            Some(IncompleteReason::CapacityExhausted)
        );
        assert_eq!(
            IncompleteReason::from_error(&EngineError::Sched(
                helios_sched::SchedError::NoFeasibleDevice(TaskId(1))
            )),
            Some(IncompleteReason::Infeasible)
        );
        assert_eq!(
            IncompleteReason::from_error(&EngineError::Config("x".into())),
            None
        );
        // Other scheduling errors are real bugs and must propagate.
        assert_eq!(
            IncompleteReason::from_error(&EngineError::Sched(
                helios_sched::SchedError::Unscheduled(TaskId(0))
            )),
            None
        );
    }
}
