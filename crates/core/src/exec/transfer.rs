//! Transfer staging: FIFO link contention, transfer-arrival math and
//! the data-product residency cache. The single copy shared by every
//! execution path.

use std::collections::BTreeMap;

use helios_platform::{DeviceId, Platform};
use helios_sim::{SimDuration, SimTime};
use helios_workflow::TaskId;

use crate::error::EngineError;
use crate::report::TransferStats;

/// Per-link FIFO state for contention modeling.
#[derive(Debug, Clone)]
pub(crate) struct LinkState {
    free_at: Vec<SimTime>,
}

impl LinkState {
    pub(crate) fn new(platform: &Platform) -> LinkState {
        LinkState {
            free_at: vec![SimTime::ZERO; platform.interconnect().links().len()],
        }
    }

    /// Computes the arrival time of a transfer over an explicit `route`
    /// whose duration is stretched by `scale` (≥ 1 while any crossed
    /// link is bandwidth-degraded), updating link occupancy when
    /// contention is enabled. The resilient runner uses this to route
    /// around — or crawl across — faulty links; an empty route is a
    /// same-device transfer and costs nothing.
    #[allow(clippy::too_many_arguments)] // mirrors transfer_arrival plus route + scale
    pub(crate) fn transfer_arrival_on_route(
        &mut self,
        platform: &Platform,
        contention: bool,
        bytes: f64,
        route: &[helios_platform::LinkId],
        ready: SimTime,
        scale: f64,
        stats: &mut TransferStats,
    ) -> Result<SimTime, EngineError> {
        if route.is_empty() {
            return Ok(ready);
        }
        let ic = platform.interconnect();
        let mut latency = SimDuration::ZERO;
        let mut min_bw = f64::INFINITY;
        for &id in route {
            let link = ic.link(id)?;
            latency += link.latency();
            min_bw = min_bw.min(link.bandwidth_gbs());
        }
        let duration = (latency + SimDuration::from_secs(bytes / (min_bw * 1e9))) * scale;
        let start = if contention {
            let mut start = ready;
            for link in route {
                start = start.max(self.free_at[link.0]);
            }
            let arrival = start + duration;
            for link in route {
                self.free_at[link.0] = arrival;
            }
            start
        } else {
            ready
        };
        let arrival = start + duration;
        stats.count += 1;
        stats.bytes += bytes;
        stats.total_secs += duration.as_secs();
        Ok(arrival)
    }

    /// Computes the arrival time of a transfer leaving `from` at `ready`
    /// toward `to`, updating link occupancy when contention is enabled.
    /// Optionally records a transfer span on the trace (track = first
    /// link of the route).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn transfer_arrival(
        &mut self,
        platform: &Platform,
        contention: bool,
        bytes: f64,
        from: DeviceId,
        to: DeviceId,
        ready: SimTime,
        stats: &mut TransferStats,
        trace: Option<(&mut helios_sim::trace::Trace, &str)>,
    ) -> Result<SimTime, EngineError> {
        if from == to {
            return Ok(ready);
        }
        let duration = platform.transfer_time(bytes, from, to)?;
        let start = if contention {
            let route = platform.interconnect().route(from, to)?;
            let mut start = ready;
            for link in &route {
                start = start.max(self.free_at[link.0]);
            }
            let arrival = start + duration;
            for link in route {
                self.free_at[link.0] = arrival;
            }
            start
        } else {
            ready
        };
        let arrival = start + duration;
        stats.count += 1;
        stats.bytes += bytes;
        stats.total_secs += duration.as_secs();
        if let Some((trace, label)) = trace {
            let track = platform
                .interconnect()
                .route(from, to)?
                .first()
                .map_or(0, |l| l.0);
            trace.record(
                label.to_owned(),
                helios_sim::trace::TraceKind::Transfer,
                track,
                start,
                arrival,
            );
        }
        Ok(arrival)
    }
}

/// Data-product residency for `data_caching`: maps `(producer,
/// destination device)` to the instant the product is (or will be)
/// available there, so a product is shipped to a device at most once.
/// Disabled, every lookup misses and every record is a no-op, so the
/// cache can be threaded through unconditionally.
#[derive(Debug, Default)]
pub(crate) struct DeliveredCache {
    enabled: bool,
    map: BTreeMap<(TaskId, DeviceId), SimTime>,
}

impl DeliveredCache {
    pub(crate) fn new(enabled: bool) -> DeliveredCache {
        DeliveredCache {
            enabled,
            map: BTreeMap::new(),
        }
    }

    /// The availability instant of `src`'s product on `dev`, if cached.
    pub(crate) fn lookup(&self, src: TaskId, dev: DeviceId) -> Option<SimTime> {
        if !self.enabled {
            return None;
        }
        self.map.get(&(src, dev)).copied()
    }

    /// Records that `src`'s product reaches `dev` at `at`.
    pub(crate) fn record(&mut self, src: TaskId, dev: DeviceId, at: SimTime) {
        if self.enabled {
            self.map.insert((src, dev), at);
        }
    }

    /// Whether `src`'s product is resident (or en route) on `dev`.
    pub(crate) fn has(&self, src: TaskId, dev: DeviceId) -> bool {
        self.enabled && self.map.contains_key(&(src, dev))
    }

    /// Drops every copy held on a device `is_up` rejects (permanent
    /// device loss destroys resident products).
    pub(crate) fn purge_lost(&mut self, is_up: impl Fn(DeviceId) -> bool) {
        self.map.retain(|&(_, dev), _| is_up(dev));
    }

    /// The lowest-numbered surviving copy of `src`'s product, as
    /// `(device index, availability instant)` — the deterministic pick
    /// for lineage recovery.
    pub(crate) fn surviving_copy(&self, src: TaskId) -> Option<(usize, SimTime)> {
        self.map
            .iter()
            .filter(|((s, _), _)| *s == src)
            .map(|((_, dev), &at)| (dev.0, at))
            .min()
    }
}
