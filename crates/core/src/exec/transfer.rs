//! Transfer staging: FIFO link contention, transfer-arrival math and
//! the data-product residency cache. The single copy shared by every
//! execution path.

use helios_platform::{DeviceId, Platform};
use helios_sim::{SimDuration, SimTime};
use helios_workflow::TaskId;

use crate::error::EngineError;
use crate::report::TransferStats;

/// Per-link FIFO state for contention modeling.
#[derive(Debug, Clone)]
pub(crate) struct LinkState {
    free_at: Vec<SimTime>,
}

impl LinkState {
    pub(crate) fn new(platform: &Platform) -> LinkState {
        LinkState {
            free_at: vec![SimTime::ZERO; platform.interconnect().links().len()],
        }
    }

    /// Computes the arrival time of a transfer over an explicit `route`
    /// whose duration is stretched by `scale` (≥ 1 while any crossed
    /// link is bandwidth-degraded), updating link occupancy when
    /// contention is enabled. The resilient runner uses this to route
    /// around — or crawl across — faulty links; an empty route is a
    /// same-device transfer and costs nothing.
    #[allow(clippy::too_many_arguments)] // mirrors transfer_arrival plus route + scale
    pub(crate) fn transfer_arrival_on_route(
        &mut self,
        platform: &Platform,
        contention: bool,
        bytes: f64,
        route: &[helios_platform::LinkId],
        ready: SimTime,
        scale: f64,
        stats: &mut TransferStats,
    ) -> Result<SimTime, EngineError> {
        if route.is_empty() {
            return Ok(ready);
        }
        let ic = platform.interconnect();
        let mut latency = SimDuration::ZERO;
        let mut min_bw = f64::INFINITY;
        for &id in route {
            let link = ic.link(id)?;
            latency += link.latency();
            min_bw = min_bw.min(link.bandwidth_gbs());
        }
        let duration = (latency + SimDuration::from_secs(bytes / (min_bw * 1e9))) * scale;
        let start = if contention {
            let mut start = ready;
            for link in route {
                start = start.max(self.free_at[link.0]);
            }
            let arrival = start + duration;
            for link in route {
                self.free_at[link.0] = arrival;
            }
            start
        } else {
            ready
        };
        let arrival = start + duration;
        stats.count += 1;
        stats.bytes += bytes;
        stats.total_secs += duration.as_secs();
        Ok(arrival)
    }

    /// Computes the arrival time of a transfer leaving `from` at `ready`
    /// toward `to`, updating link occupancy when contention is enabled.
    /// Optionally records a transfer span on the trace (track = first
    /// link of the route).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn transfer_arrival(
        &mut self,
        platform: &Platform,
        contention: bool,
        bytes: f64,
        from: DeviceId,
        to: DeviceId,
        ready: SimTime,
        stats: &mut TransferStats,
        trace: Option<(&mut helios_sim::trace::Trace, &str)>,
    ) -> Result<SimTime, EngineError> {
        if from == to {
            return Ok(ready);
        }
        let duration = platform.transfer_time(bytes, from, to)?;
        let start = if contention {
            let route = platform.interconnect().route(from, to)?;
            let mut start = ready;
            for link in &route {
                start = start.max(self.free_at[link.0]);
            }
            let arrival = start + duration;
            for link in route {
                self.free_at[link.0] = arrival;
            }
            start
        } else {
            ready
        };
        let arrival = start + duration;
        stats.count += 1;
        stats.bytes += bytes;
        stats.total_secs += duration.as_secs();
        if let Some((trace, label)) = trace {
            let track = platform
                .interconnect()
                .route(from, to)?
                .first()
                .map_or(0, |l| l.0);
            trace.record(
                label.to_owned(),
                helios_sim::trace::TraceKind::Transfer,
                track,
                start,
                arrival,
            );
        }
        Ok(arrival)
    }
}

/// Data-product residency for `data_caching`: the instant each
/// producer's product is (or will be) available on each device, so a
/// product is shipped to a device at most once. Disabled, every lookup
/// misses and every record is a no-op, so the cache can be threaded
/// through unconditionally.
///
/// Residency is a task-major paged arena — one lazily-allocated
/// device-indexed page per producer — so the per-step `lookup`/`record`/
/// `has` calls are O(1) array indexing instead of a `BTreeMap` walk over
/// `(TaskId, DeviceId)` keys, and [`surviving_copy`] scans one page
/// instead of the whole map. Pages only exist for tasks that have
/// actually produced something, so a 10⁵-task run with caching disabled
/// costs one empty `Vec`.
///
/// [`surviving_copy`]: DeliveredCache::surviving_copy
#[derive(Debug, Default)]
pub(crate) struct DeliveredCache {
    enabled: bool,
    num_devices: usize,
    /// `pages[task][device]` = availability instant, `None` when absent.
    pages: Vec<Option<Box<[Option<SimTime>]>>>,
}

impl DeliveredCache {
    pub(crate) fn new(enabled: bool, num_tasks: usize, num_devices: usize) -> DeliveredCache {
        DeliveredCache {
            enabled,
            num_devices,
            pages: if enabled {
                let mut v = Vec::new();
                v.resize_with(num_tasks, || None);
                v
            } else {
                Vec::new()
            },
        }
    }

    /// The availability instant of `src`'s product on `dev`, if cached.
    pub(crate) fn lookup(&self, src: TaskId, dev: DeviceId) -> Option<SimTime> {
        self.pages.get(src.0)?.as_ref()?.get(dev.0).copied()?
    }

    /// Records that `src`'s product reaches `dev` at `at`.
    pub(crate) fn record(&mut self, src: TaskId, dev: DeviceId, at: SimTime) {
        if !self.enabled {
            return;
        }
        let num_devices = self.num_devices;
        let page =
            self.pages[src.0].get_or_insert_with(|| vec![None; num_devices].into_boxed_slice());
        page[dev.0] = Some(at);
    }

    /// Whether `src`'s product is resident (or en route) on `dev`.
    pub(crate) fn has(&self, src: TaskId, dev: DeviceId) -> bool {
        self.lookup(src, dev).is_some()
    }

    /// Drops every copy held on a device `is_up` rejects (permanent
    /// device loss destroys resident products).
    pub(crate) fn purge_lost(&mut self, is_up: impl Fn(DeviceId) -> bool) {
        for page in self.pages.iter_mut().flatten() {
            for (d, slot) in page.iter_mut().enumerate() {
                if slot.is_some() && !is_up(DeviceId(d)) {
                    *slot = None;
                }
            }
        }
    }

    /// The surviving copy of `src`'s product picked for lineage
    /// recovery, as `(device index, availability instant)`: earliest
    /// availability first, lowest device index on ties — the copy that
    /// unblocks re-staging soonest, deterministically.
    pub(crate) fn surviving_copy(&self, src: TaskId) -> Option<(usize, SimTime)> {
        let page = self.pages.get(src.0)?.as_ref()?;
        page.iter()
            .enumerate()
            .filter_map(|(d, at)| at.map(|at| (d, at)))
            .min_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn cache_is_inert_when_disabled() {
        let mut c = DeliveredCache::new(false, 4, 2);
        c.record(TaskId(0), DeviceId(1), t(1.0));
        assert_eq!(c.lookup(TaskId(0), DeviceId(1)), None);
        assert!(!c.has(TaskId(0), DeviceId(1)));
        assert_eq!(c.surviving_copy(TaskId(0)), None);
    }

    #[test]
    fn record_lookup_purge_roundtrip() {
        let mut c = DeliveredCache::new(true, 3, 3);
        c.record(TaskId(1), DeviceId(0), t(2.0));
        c.record(TaskId(1), DeviceId(2), t(1.0));
        assert_eq!(c.lookup(TaskId(1), DeviceId(0)), Some(t(2.0)));
        assert!(c.has(TaskId(1), DeviceId(2)));
        assert!(!c.has(TaskId(1), DeviceId(1)));
        assert!(!c.has(TaskId(0), DeviceId(0)));
        c.purge_lost(|d| d.0 != 2);
        assert!(!c.has(TaskId(1), DeviceId(2)));
        assert_eq!(c.lookup(TaskId(1), DeviceId(0)), Some(t(2.0)));
    }

    /// Regression for the lineage-recovery tie-break: the pick is the
    /// copy available *earliest*, with the device index only breaking
    /// exact-time ties — not the lowest device regardless of when its
    /// copy lands.
    #[test]
    fn surviving_copy_prefers_earliest_then_lowest_device() {
        let mut c = DeliveredCache::new(true, 2, 3);
        // Device 0 holds a late copy, device 2 an early one.
        c.record(TaskId(0), DeviceId(0), t(9.0));
        c.record(TaskId(0), DeviceId(2), t(3.0));
        assert_eq!(c.surviving_copy(TaskId(0)), Some((2, t(3.0))));
        // Exact-time tie: lowest device wins.
        c.record(TaskId(0), DeviceId(1), t(3.0));
        assert_eq!(c.surviving_copy(TaskId(0)), Some((1, t(3.0))));
        assert_eq!(c.surviving_copy(TaskId(1)), None);
    }
}
