//! The hook-driven step loop shared by every simulated execution path.
//!
//! [`drive`] owns the loop skeleton — completion check, step-budget
//! charge, event pop, dispatch — while a [`Hooks`] implementation owns
//! everything path-specific: the event vocabulary, how an event is
//! handled, and where in the loop the step budget is charged. The three
//! simulated executors differ *only* in their hook set:
//!
//! | path              | budget point | exit on complete | after_event   |
//! |-------------------|--------------|------------------|---------------|
//! | `Engine`          | after pop    | no (drains)      | —             |
//! | `OnlineRunner`    | (no budget)  | no (drains)      | —             |
//! | `ResilientRunner` | before pop   | yes              | `dispatch_all`|
//!
//! The resilient runner must exit the moment the last task completes
//! because fault-process events extend to infinity; the static paths
//! drain their (finite) queues instead. Both conventions funnel into
//! the same [`EngineError::Stalled`] / `StepBudgetExceeded` reporting.

use helios_sim::SimTime;

use crate::error::EngineError;

/// Where the step budget is charged relative to the event pop.
///
/// The static engine charges *after* popping (an empty queue can never
/// trip the watchdog); the resilient runner charges *before* popping
/// (an eternally fault-generating queue must trip it even between
/// useful events). Both orderings are preserved exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BudgetPoint {
    /// Charge at the top of the iteration, before the pop.
    BeforePop,
    /// Charge right after a successful pop.
    AfterPop,
}

/// Variation points of the execution core's step loop. One
/// implementation per execution path; [`drive`] supplies the loop.
pub(crate) trait Hooks {
    /// The path's event vocabulary.
    type Event;

    /// Step budget for the watchdog, if any.
    fn budget(&self) -> Option<u64>;

    /// Where the budget is charged (see [`BudgetPoint`]).
    fn budget_point(&self) -> BudgetPoint;

    /// Tasks completed so far.
    fn completed(&self) -> usize;

    /// Total tasks that must complete.
    fn total(&self) -> usize;

    /// Whether the loop exits the instant every task has completed
    /// (resilient semantics: fault events extend forever) instead of
    /// draining the queue.
    fn exit_on_complete(&self) -> bool;

    /// Pops the next timeline event, if any.
    fn pop(&mut self) -> Option<(SimTime, Self::Event)>;

    /// Handles one event at simulated instant `now`.
    fn handle(&mut self, now: SimTime, event: Self::Event) -> Result<(), EngineError>;

    /// Runs after every handled event (the resilient runner re-runs its
    /// dispatcher here; the static paths dispatch inside `handle`).
    fn after_event(&mut self, now: SimTime) -> Result<(), EngineError> {
        let _ = now;
        Ok(())
    }
}

/// The event-driven step loop over `(ready-set, transfer staging, link
/// health, occupancy, timeline charge, completion)`. Drives `hooks`
/// until every task completes, the queue drains, the step budget trips
/// ([`EngineError::StepBudgetExceeded`]) or progress stalls
/// ([`EngineError::Stalled`]).
pub(crate) fn drive<H: Hooks>(hooks: &mut H) -> Result<(), EngineError> {
    let mut steps: u64 = 0;
    loop {
        if hooks.exit_on_complete() && hooks.completed() == hooks.total() {
            return Ok(());
        }
        if hooks.budget_point() == BudgetPoint::BeforePop {
            charge_step(hooks, &mut steps)?;
        }
        let Some((now, event)) = hooks.pop() else {
            break;
        };
        if hooks.budget_point() == BudgetPoint::AfterPop {
            charge_step(hooks, &mut steps)?;
        }
        hooks.handle(now, event)?;
        hooks.after_event(now)?;
    }
    // Queue drained. With `exit_on_complete` the completion check above
    // already returned, so reaching here always means a stall; the
    // draining paths still need the final head-count.
    if hooks.completed() != hooks.total() {
        return Err(EngineError::Stalled {
            completed: hooks.completed(),
            total: hooks.total(),
        });
    }
    Ok(())
}

/// Watchdog: this run is grinding through more simulated events than
/// the caller budgeted for.
fn charge_step<H: Hooks>(hooks: &H, steps: &mut u64) -> Result<(), EngineError> {
    if let Some(budget) = hooks.budget() {
        if *steps >= budget {
            return Err(EngineError::StepBudgetExceeded {
                steps: budget,
                completed: hooks.completed(),
                total: hooks.total(),
            });
        }
    }
    *steps += 1;
    Ok(())
}
