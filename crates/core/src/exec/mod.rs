//! The execution core: one event-driven step loop and one copy of the
//! staging/occupancy/charging math, shared by every execution path.
//!
//! The evaluation hinges on one invariant: every configuration (plain,
//! noisy, contended, cached, faulted, resilient, online) is the *same*
//! simulated machine with different knobs. This module enforces that
//! structurally. The four executors — [`Engine`](crate::Engine),
//! [`OnlineRunner`](crate::OnlineRunner),
//! [`ResilientRunner`](crate::ResilientRunner) and
//! [`ThreadedExecutor`](crate::executor::ThreadedExecutor) — are thin
//! hook sets over the services held here exactly once:
//!
//! * `drive` + `Hooks` — the step loop over `(ready-set, transfer
//!   staging, link health, occupancy, timeline charge, completion)`,
//!   parameterized per execution path (event type, dispatch strategy,
//!   step-budget placement);
//! * `occupancy_on` / `fault_occupancy` / `noise_factor` /
//!   `slowdown_factor` — per-attempt device occupancy under noise,
//!   checkpoint overhead and fault retries;
//! * `LinkState` — FIFO link contention and transfer-arrival math
//!   (plain routes and explicit degraded/rerouted routes);
//! * `DeliveredCache` — data-product residency for `data_caching`;
//! * `classify_route` / `choose_route` — link-health verdicts and the
//!   reroute-on-link-down preference order;
//! * `finish_report` / [`IncompleteReason`] — shared report assembly
//!   and the normalized incomplete-run vocabulary;
//! * `repair_device_overlaps` / `validate_realized` — realized-schedule
//!   repair and validation for wall-clock executors.
//!
//! # RNG streams
//!
//! Every stochastic input comes from a dedicated forked stream of the
//! seed RNG, keyed by *entity id* and never by event order: that is
//! what makes executions byte-identical per seed regardless of how
//! faults, threads or shards reshuffle the event timeline.

mod accounting;
mod hooks;
mod occupancy;
mod realized;
mod routing;
mod transfer;

#[cfg(test)]
mod conformance;

pub(crate) use accounting::finish_report;
pub use accounting::IncompleteReason;
pub(crate) use hooks::{drive, BudgetPoint, Hooks};
pub(crate) use occupancy::{fault_occupancy, noise_factor, occupancy_on, slowdown_factor};
pub(crate) use realized::{repair_device_overlaps, validate_realized};
pub(crate) use routing::{choose_route, RouteChoice};
pub(crate) use transfer::{DeliveredCache, LinkState};

/// Disjoint RNG stream bases, so every task's noise, every task's fault
/// draws and every device's failure trace come from their own streams:
/// task `t` uses `NOISE_STREAM_BASE + t` and `FAULT_STREAM_BASE + t`,
/// device `d` uses `FAILURE_TRACE_STREAM_BASE + d`. Keying by task and
/// device id (never by event order) is what makes executions
/// byte-identical per seed regardless of how faults reshuffle the event
/// timeline — and makes a faulty task's occupancy provably contain its
/// fault-free occupancy.
pub(crate) const NOISE_STREAM_BASE: u64 = 1 << 32;
pub(crate) const FAULT_STREAM_BASE: u64 = 2 << 32;
pub(crate) const FAILURE_TRACE_STREAM_BASE: u64 = 3 << 32;
/// Link `l` draws its interconnect-fault trace from
/// `LINK_FAULT_STREAM_BASE + l`; correlated failure domain `i` (in spec
/// order) draws its shared event trace from `DOMAIN_STREAM_BASE + i`.
/// Same keying discipline as above: streams are owned by platform
/// entities, never positional in the event timeline.
pub(crate) const LINK_FAULT_STREAM_BASE: u64 = 4 << 32;
pub(crate) const DOMAIN_STREAM_BASE: u64 = 5 << 32;
/// Device `d` draws its elastic-capacity churn trace (spot preemptions
/// and re-acquisitions) from `ELASTIC_STREAM_BASE + d`. Timed elasticity
/// events consume no randomness at all; only stochastic churn samples
/// this stream.
pub(crate) const ELASTIC_STREAM_BASE: u64 = 6 << 32;
