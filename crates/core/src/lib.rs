//! The `helios` orchestration engine — executing scientific workflows on
//! heterogeneous platforms.
//!
//! Where `helios-sched` produces *plans*, this crate produces *runs*. The
//! [`Engine`] executes a workflow on a platform in simulated time,
//! modeling everything a plan abstracts away:
//!
//! * **runtime variability** — actual task durations deviate from the
//!   model by a configurable noise coefficient,
//! * **data movement** — every data product is transferred when its
//!   producer finishes, optionally with per-link contention (transfers
//!   queue on shared links instead of overlapping freely),
//! * **faults** — devices fail as Poisson processes; failed tasks retry,
//!   either from scratch or from their last checkpoint,
//! * **failure domains and recovery policies** — the [`resilience`]
//!   subsystem models transient, degraded and permanent device failures
//!   (exponential or Weibull inter-failure times) and recovers via
//!   retry-backoff, k-replication, checkpoint/restart or re-planning on
//!   the surviving platform, reporting completion, wasted work and
//!   recovery overhead,
//! * **DVFS** — placements execute at their planned DVFS level; online
//!   mode consults a [`DvfsGovernor`](helios_energy::DvfsGovernor),
//! * **online rescheduling** — instead of following a static plan, the
//!   [`online`] dispatcher assigns ready tasks to devices just-in-time
//!   using observed (not modeled) history, calibrating per-device
//!   performance as it goes,
//! * **data-product caching** — outputs consumed by several tasks on
//!   one device transfer once,
//! * **elastic capacity** — the [`elastic`] subsystem models devices
//!   that join, drain, get preempted (spot kills with notice) and
//!   leave mid-run, via timed plans or stochastic churn on forked
//!   per-device RNG streams, with capacity metrics on the report,
//! * **workflow ensembles** — the [`ensemble`] runner shares the
//!   platform between several workflows arriving over time (FIFO /
//!   priority / fair-share arbitration),
//! * **parallel campaigns** — the [`campaign`] engine fans independent
//!   cells (seed replicates, sweep points, whole ensembles) out over
//!   worker threads with input-indexed aggregation, so `--jobs N`
//!   output is bit-identical to the sequential run,
//! * **sharded sweeps** — a [`CampaignSpec`] file declares a grid of
//!   (family × platform × scheduler × seed) cells; the [`SweepDriver`]
//!   runs any `K/N` shard of it and [`merge_shards`] recombines shard
//!   reports into an aggregate that is byte-identical to the unsharded
//!   run,
//! * **columnar results and queries** — the [`store`] module holds the
//!   sweep row schema exactly once: an append-friendly columnar
//!   segment format the driver writes as cells finish, plus a
//!   volcano-style executor pipeline (scan → filter → project →
//!   aggregate) that `summarize`, `campaign merge` and the
//!   `helios query` expression language all compile onto,
//! * **adversarial self-checking** — the [`fuzz`] harness generates
//!   random campaign specs over the full knob space, checks each one
//!   against differential oracles (hooks-off identity, `--jobs` and
//!   shard byte-identity, fault-free lower bounds, schedule
//!   invariants), shrinks any divergence to a minimal spec and writes
//!   it as a replayable bug fixture.
//!
//! A run yields an [`ExecutionReport`]: realized placements, makespan,
//! energy (via `helios-energy` accounting), transfer and fault
//! statistics.
//!
//! The [`executor`] module is the reality check: it runs the same
//! workflow on real OS threads (one worker pool per modeled device,
//! crossbeam channels, scaled-down durations) and confirms the simulated
//! makespan matches wall-clock behaviour.
//!
//! # Examples
//!
//! ```
//! use helios_core::{Engine, EngineConfig};
//! use helios_platform::presets;
//! use helios_sched::HeftScheduler;
//! use helios_workflow::generators::montage;
//!
//! let platform = presets::hpc_node();
//! let wf = montage(50, 1)?;
//! let report = Engine::new(EngineConfig::default())
//!     .run(&platform, &wf, &HeftScheduler::default())?;
//! assert!(report.makespan().as_secs() > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// The execution core holds the only copy of the staging/occupancy/
// charging math: a re-implemented private helper on some path is dead
// weight and a future drift hazard, so it is a hard error.
#![deny(dead_code)]

pub mod campaign;
mod config;
pub mod elastic;
mod engine;
pub mod ensemble;
mod error;
pub mod exec;
pub mod executor;
pub mod fuzz;
pub mod online;
mod report;
pub mod resilience;
pub mod store;

pub use campaign::{
    cell_rng, merge_shards, CampaignEngine, CampaignError, CampaignSpec, CellResult, DvfsKnob,
    ElasticityKnob, FailureDomainKnob, FaultKnob, InterconnectFaultKnob, JournalHeader,
    JournalOptions, JournalRun, JournalWriter, JsonSalvage, PolicyKnob, ResilienceKnob,
    ResumeOutcome, Salvage, SchedulerParamsKnob, SeedRange, ShardReport, ShardSpec, StoreOptions,
    StoreRun, SummaryRow, SweepCell, SweepDriver, SweepReport,
};
pub use config::{CheckpointConfig, EngineConfig, FaultConfig};
pub use elastic::{
    ElasticChurn, ElasticEvent, ElasticEventKind, ElasticityConfig, ElasticityMetrics,
};
pub use engine::Engine;
pub use ensemble::{EnsembleMember, EnsemblePolicy, EnsembleReport, EnsembleRunner, MemberReport};
pub use error::EngineError;
pub use exec::IncompleteReason;
pub use online::{OnlinePolicy, OnlineRunner};
pub use report::{ExecutionReport, TransferStats};
pub use resilience::{
    FailureDomain, FailureModel, LinkFaultModel, RecoveryPolicy, ResilienceConfig,
    ResilienceMetrics, ResilientRunner,
};
pub use store::{
    read_store, recover_store, run_query, QueryOutput, StoreHeader, StoreSalvage, StoreWriter,
};
