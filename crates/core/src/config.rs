//! Engine configuration.

use helios_sim::SimDuration;

use crate::error::EngineError;

/// Device fault injection: each device fails as a Poisson process with
/// the given mean time between failures; a failure aborts the task
/// executing at that moment (idle devices shrug failures off).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Mean time between failures per device, seconds (the default for
    /// devices without an override).
    pub mtbf_secs: f64,
    /// Fixed recovery/restart overhead paid before a retry begins.
    pub restart_overhead: SimDuration,
    /// Retry budget per task; exceeding it aborts the run.
    pub max_retries: u32,
    /// Optional per-device MTBF overrides, indexed by device id; `None`
    /// entries fall back to [`FaultConfig::mtbf_secs`]. Lets flaky
    /// accelerators coexist with dependable hosts, matching the rate
    /// vectors of
    /// [`helios_sched::reliability`](../helios_sched/reliability/index.html).
    pub per_device_mtbf: Option<Vec<Option<f64>>>,
}

impl FaultConfig {
    /// Creates a fault model.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] for a non-positive MTBF.
    pub fn new(
        mtbf_secs: f64,
        restart_overhead: SimDuration,
        max_retries: u32,
    ) -> Result<FaultConfig, EngineError> {
        if !(mtbf_secs.is_finite() && mtbf_secs > 0.0) {
            return Err(EngineError::Config(format!(
                "mtbf_secs must be positive, got {mtbf_secs}"
            )));
        }
        Ok(FaultConfig {
            mtbf_secs,
            restart_overhead,
            max_retries,
            per_device_mtbf: None,
        })
    }

    /// Sets per-device MTBF overrides.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] if any override is non-positive.
    pub fn with_per_device_mtbf(
        mut self,
        overrides: Vec<Option<f64>>,
    ) -> Result<FaultConfig, EngineError> {
        for (i, o) in overrides.iter().enumerate() {
            if let Some(m) = o {
                if !(m.is_finite() && *m > 0.0) {
                    return Err(EngineError::Config(format!(
                        "per_device_mtbf[{i}] must be positive, got {m}"
                    )));
                }
            }
        }
        self.per_device_mtbf = Some(overrides);
        Ok(self)
    }

    /// The effective MTBF for device `device_id`.
    #[must_use]
    pub fn mtbf_for(&self, device_id: usize) -> f64 {
        self.per_device_mtbf
            .as_ref()
            .and_then(|v| v.get(device_id).copied().flatten())
            .unwrap_or(self.mtbf_secs)
    }
}

/// Checkpointing: tasks snapshot their progress every `interval`; a
/// retry resumes from the last snapshot instead of from scratch, at the
/// cost of `overhead` added per completed checkpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckpointConfig {
    /// Time between snapshots, in task-execution seconds.
    pub interval: SimDuration,
    /// Cost of writing one snapshot.
    pub overhead: SimDuration,
}

impl CheckpointConfig {
    /// Creates a checkpoint policy.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] for a zero interval.
    pub fn new(
        interval: SimDuration,
        overhead: SimDuration,
    ) -> Result<CheckpointConfig, EngineError> {
        if interval.as_secs() <= 0.0 {
            return Err(EngineError::Config(
                "checkpoint interval must be positive".into(),
            ));
        }
        Ok(CheckpointConfig { interval, overhead })
    }
}

/// Complete engine configuration.
///
/// The default is the *ideal* execution: no noise, no faults, no link
/// contention — under it, executing a plan reproduces the plan's timing
/// exactly (a property the test suite pins down).
#[derive(Debug, Clone, Default)]
pub struct EngineConfig {
    /// Coefficient of variation of actual vs. modeled task duration
    /// (log-free multiplicative noise, clamped at 5% of the model).
    pub noise_cv: f64,
    /// Seed for all stochastic behaviour (noise, faults).
    pub seed: u64,
    /// Serialize transfers crossing the same link (FIFO per link)
    /// instead of letting them overlap freely.
    pub link_contention: bool,
    /// Cache data products at destination devices: when several
    /// consumers of one output run on the same device, only the first
    /// pays the transfer (the workflow-data-staging optimization of
    /// production workflow managers).
    pub data_caching: bool,
    /// Per-device runtime slowdown factors (thermal throttling,
    /// co-tenant interference), indexed by device id; a factor of 2.0
    /// makes every task on that device take twice its modeled time.
    /// Planners and dispatchers do not see these — only execution does.
    pub device_slowdown: Option<Vec<f64>>,
    /// Fault injection, if any.
    pub faults: Option<FaultConfig>,
    /// Checkpoint/restart policy, if any (only meaningful with faults).
    pub checkpointing: Option<CheckpointConfig>,
    /// Record an execution trace (task spans + transfer spans) in the
    /// report, exportable to Chrome trace JSON.
    pub tracing: bool,
}

impl EngineConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] for a negative or non-finite
    /// noise coefficient.
    pub fn validate(&self) -> Result<(), EngineError> {
        if !self.noise_cv.is_finite() || self.noise_cv < 0.0 {
            return Err(EngineError::Config(format!(
                "noise_cv must be non-negative, got {}",
                self.noise_cv
            )));
        }
        if let Some(slow) = &self.device_slowdown {
            for (i, &f) in slow.iter().enumerate() {
                if !(f.is_finite() && f > 0.0) {
                    return Err(EngineError::Config(format!(
                        "device_slowdown[{i}] must be positive, got {f}"
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_ideal() {
        let c = EngineConfig::default();
        assert_eq!(c.noise_cv, 0.0);
        assert!(c.faults.is_none());
        assert!(!c.link_contention);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation() {
        let c = EngineConfig {
            noise_cv: -0.1,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let mut c = EngineConfig {
            device_slowdown: Some(vec![1.0, 0.0]),
            ..Default::default()
        };
        assert!(c.validate().is_err());
        c.device_slowdown = Some(vec![1.0, 2.0]);
        assert!(c.validate().is_ok());
        assert!(FaultConfig::new(0.0, SimDuration::ZERO, 1).is_err());
        assert!(FaultConfig::new(100.0, SimDuration::ZERO, 1).is_ok());
        assert!(CheckpointConfig::new(SimDuration::ZERO, SimDuration::ZERO).is_err());
        assert!(CheckpointConfig::new(SimDuration::from_secs(1.0), SimDuration::ZERO).is_ok());
    }
}
