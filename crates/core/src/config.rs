//! Engine configuration.

use helios_sim::SimDuration;

use crate::elastic::ElasticityConfig;
use crate::error::EngineError;
use crate::resilience::{RecoveryPolicy, ResilienceConfig};

/// Backoff delay before retry `retry` (1-based): capped exponential
/// `min(base · factor^(retry-1), cap)`, zero when `base` is zero (the
/// classical flat retry).
pub(crate) fn backoff_delay_secs(base: f64, factor: f64, cap: f64, retry: u32) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        (base * factor.powi(retry.saturating_sub(1) as i32)).min(cap)
    }
}

/// Device fault injection: each device fails as a Poisson process with
/// the given mean time between failures; a failure aborts the task
/// executing at that moment (idle devices shrug failures off).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Mean time between failures per device, seconds (the default for
    /// devices without an override).
    pub mtbf_secs: f64,
    /// Fixed recovery/restart overhead paid before a retry begins.
    pub restart_overhead: SimDuration,
    /// Retry budget per task; exceeding it aborts the run.
    pub max_retries: u32,
    /// Optional per-device MTBF overrides, indexed by device id; `None`
    /// entries fall back to [`FaultConfig::mtbf_secs`]. Lets flaky
    /// accelerators coexist with dependable hosts, matching the rate
    /// vectors of
    /// [`helios_sched::reliability`](../helios_sched/reliability/index.html).
    pub per_device_mtbf: Option<Vec<Option<f64>>>,
}

impl FaultConfig {
    /// Creates a fault model.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] for a non-positive MTBF.
    pub fn new(
        mtbf_secs: f64,
        restart_overhead: SimDuration,
        max_retries: u32,
    ) -> Result<FaultConfig, EngineError> {
        if !(mtbf_secs.is_finite() && mtbf_secs > 0.0) {
            return Err(EngineError::Config(format!(
                "mtbf_secs must be positive, got {mtbf_secs}"
            )));
        }
        Ok(FaultConfig {
            mtbf_secs,
            restart_overhead,
            max_retries,
            per_device_mtbf: None,
        })
    }

    /// Sets per-device MTBF overrides.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] if any override is non-positive.
    pub fn with_per_device_mtbf(
        mut self,
        overrides: Vec<Option<f64>>,
    ) -> Result<FaultConfig, EngineError> {
        for (i, o) in overrides.iter().enumerate() {
            if let Some(m) = o {
                if !(m.is_finite() && *m > 0.0) {
                    return Err(EngineError::Config(format!(
                        "per_device_mtbf[{i}] must be positive, got {m}"
                    )));
                }
            }
        }
        self.per_device_mtbf = Some(overrides);
        Ok(self)
    }

    /// The effective MTBF for device `device_id`.
    #[must_use]
    pub fn mtbf_for(&self, device_id: usize) -> f64 {
        self.per_device_mtbf
            .as_ref()
            .and_then(|v| v.get(device_id).copied().flatten())
            .unwrap_or(self.mtbf_secs)
    }
}

/// Checkpointing: tasks snapshot their progress every `interval`; a
/// retry resumes from the last snapshot instead of from scratch, at the
/// cost of `overhead` added per completed checkpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckpointConfig {
    /// Time between snapshots, in task-execution seconds.
    pub interval: SimDuration,
    /// Cost of writing one snapshot.
    pub overhead: SimDuration,
}

impl CheckpointConfig {
    /// Creates a checkpoint policy.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] for a zero interval.
    pub fn new(
        interval: SimDuration,
        overhead: SimDuration,
    ) -> Result<CheckpointConfig, EngineError> {
        if interval.as_secs() <= 0.0 {
            return Err(EngineError::Config(
                "checkpoint interval must be positive".into(),
            ));
        }
        Ok(CheckpointConfig { interval, overhead })
    }
}

/// Complete engine configuration.
///
/// The default is the *ideal* execution: no noise, no faults, no link
/// contention — under it, executing a plan reproduces the plan's timing
/// exactly (a property the test suite pins down).
#[derive(Debug, Clone, Default)]
pub struct EngineConfig {
    /// Coefficient of variation of actual vs. modeled task duration
    /// (log-free multiplicative noise, clamped at 5% of the model).
    pub noise_cv: f64,
    /// Seed for all stochastic behaviour (noise, faults).
    pub seed: u64,
    /// Serialize transfers crossing the same link (FIFO per link)
    /// instead of letting them overlap freely.
    pub link_contention: bool,
    /// Cache data products at destination devices: when several
    /// consumers of one output run on the same device, only the first
    /// pays the transfer (the workflow-data-staging optimization of
    /// production workflow managers).
    pub data_caching: bool,
    /// Per-device runtime slowdown factors (thermal throttling,
    /// co-tenant interference), indexed by device id; a factor of 2.0
    /// makes every task on that device take twice its modeled time.
    /// Planners and dispatchers do not see these — only execution does.
    pub device_slowdown: Option<Vec<f64>>,
    /// Fault injection, if any.
    pub faults: Option<FaultConfig>,
    /// Checkpoint/restart policy, if any (only meaningful with faults).
    pub checkpointing: Option<CheckpointConfig>,
    /// Record an execution trace (task spans + transfer spans) in the
    /// report, exportable to Chrome trace JSON.
    pub tracing: bool,
    /// Failure model plus recovery policy. Mutually exclusive with the
    /// legacy [`EngineConfig::faults`]/[`EngineConfig::checkpointing`]
    /// pair, which it generalizes. The
    /// [`ResilientRunner`](crate::ResilientRunner) supports every
    /// policy; [`Engine`](crate::Engine) and
    /// [`OnlineRunner`](crate::OnlineRunner) accept the subset that maps
    /// onto their per-attempt occupancy model (exponential
    /// transient-only failures under retry-backoff or
    /// checkpoint-restart).
    pub resilience: Option<ResilienceConfig>,
    /// Elastic capacity plan: timed join/drain/preempt/leave events
    /// plus stochastic spot churn
    /// ([`ElasticityConfig`](crate::ElasticityConfig)). Requires the
    /// [`ResilientRunner`](crate::ResilientRunner) — departures are
    /// recovered through the same machinery as permanent faults, so
    /// the other executors reject this knob.
    pub elasticity: Option<ElasticityConfig>,
    /// Watchdog budget on simulated events processed by the
    /// [`ResilientRunner`](crate::ResilientRunner) event loop (per run,
    /// so per campaign cell). Exceeding it aborts the run with
    /// [`EngineError::StepBudgetExceeded`] instead of grinding a
    /// pathological fault configuration forever; `None` disables the
    /// watchdog.
    pub step_budget: Option<u64>,
}

/// The fault parameters [`Engine`](crate::Engine) and
/// [`OnlineRunner`](crate::OnlineRunner) actually execute with, resolved
/// from either the legacy `faults`/`checkpointing` pair or a compatible
/// [`ResilienceConfig`].
#[derive(Debug, Clone, Default)]
pub(crate) struct FaultView {
    pub faults: Option<FaultConfig>,
    pub checkpointing: Option<CheckpointConfig>,
    /// `(base_secs, factor, cap_secs)` of a retry backoff, if any.
    pub backoff: Option<(f64, f64, f64)>,
}

impl EngineConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] for a negative or non-finite
    /// noise coefficient.
    pub fn validate(&self) -> Result<(), EngineError> {
        if !self.noise_cv.is_finite() || self.noise_cv < 0.0 {
            return Err(EngineError::Config(format!(
                "noise_cv must be non-negative, got {}",
                self.noise_cv
            )));
        }
        if let Some(slow) = &self.device_slowdown {
            for (i, &f) in slow.iter().enumerate() {
                if !(f.is_finite() && f > 0.0) {
                    return Err(EngineError::Config(format!(
                        "device_slowdown[{i}] must be positive, got {f}"
                    )));
                }
            }
        }
        if self.step_budget == Some(0) {
            return Err(EngineError::Config(
                "step_budget must be at least 1 simulated event".into(),
            ));
        }
        if let Some(res) = &self.resilience {
            if self.faults.is_some() || self.checkpointing.is_some() {
                return Err(EngineError::Config(
                    "resilience is mutually exclusive with the legacy faults/checkpointing \
                     options; move them into the resilience block"
                        .into(),
                ));
            }
            res.validate()?;
        }
        if let Some(el) = &self.elasticity {
            if self.faults.is_some() || self.checkpointing.is_some() {
                return Err(EngineError::Config(
                    "elasticity is mutually exclusive with the legacy faults/checkpointing \
                     options; use a resilience block for failure injection"
                        .into(),
                ));
            }
            el.validate()?;
        }
        Ok(())
    }

    /// [`validate`](EngineConfig::validate) plus the platform-dependent
    /// checks every executor runs at entry: a configured
    /// `device_slowdown` vector must name exactly one factor per device.
    /// A shorter vector used to silently un-slow the devices it missed
    /// (`v.get(device)` fell back to 1.0); now the mismatch is a typed
    /// error naming both counts.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] on any validation failure.
    pub fn validate_for(&self, platform: &helios_platform::Platform) -> Result<(), EngineError> {
        self.validate()?;
        if let Some(slow) = &self.device_slowdown {
            if slow.len() != platform.num_devices() {
                return Err(EngineError::Config(format!(
                    "device_slowdown has {} factors but the platform has {} devices; \
                     list exactly one factor per device",
                    slow.len(),
                    platform.num_devices()
                )));
            }
        }
        Ok(())
    }

    /// Resolves the fault parameters the per-attempt occupancy model
    /// runs with. A [`ResilienceConfig`] maps onto it only when its
    /// failure model is exponential and transient-only and its policy is
    /// retry-backoff or checkpoint-restart; richer configurations need
    /// the [`ResilientRunner`](crate::ResilientRunner).
    pub(crate) fn fault_view(&self) -> Result<FaultView, EngineError> {
        if self.elasticity.is_some() {
            return Err(EngineError::Config(
                "elastic capacity events require the ResilientRunner".into(),
            ));
        }
        let Some(res) = &self.resilience else {
            return Ok(FaultView {
                faults: self.faults.clone(),
                checkpointing: self.checkpointing,
                backoff: None,
            });
        };
        let fm = &res.failures;
        if fm.weibull_shape.is_some() || fm.degraded_prob > 0.0 || fm.permanent_prob > 0.0 {
            return Err(EngineError::Config(
                "this executor only models exponential transient-only failures; use the \
                 ResilientRunner for Weibull, degraded or permanent failure modes"
                    .into(),
            ));
        }
        if res.link_faults.is_some() || !res.domains.is_empty() {
            return Err(EngineError::Config(
                "interconnect faults and correlated failure domains require the \
                 ResilientRunner"
                    .into(),
            ));
        }
        let faults = FaultConfig::new(
            fm.mttf_secs,
            SimDuration::from_secs(fm.restart_overhead_secs),
            res.policy.max_retries(),
        )?;
        match res.policy {
            RecoveryPolicy::RetryBackoff {
                base_secs,
                factor,
                cap_secs,
                ..
            } => Ok(FaultView {
                faults: Some(faults),
                checkpointing: None,
                backoff: Some((base_secs, factor, cap_secs)),
            }),
            RecoveryPolicy::CheckpointRestart {
                interval_secs,
                overhead_secs,
                ..
            } => Ok(FaultView {
                faults: Some(faults),
                checkpointing: Some(CheckpointConfig::new(
                    SimDuration::from_secs(interval_secs),
                    SimDuration::from_secs(overhead_secs),
                )?),
                backoff: None,
            }),
            RecoveryPolicy::ReplicateK { .. } | RecoveryPolicy::Reschedule { .. } => {
                Err(EngineError::Config(format!(
                    "policy {:?} requires the ResilientRunner",
                    res.policy.name()
                )))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_ideal() {
        let c = EngineConfig::default();
        assert_eq!(c.noise_cv, 0.0);
        assert!(c.faults.is_none());
        assert!(!c.link_contention);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation() {
        let c = EngineConfig {
            noise_cv: -0.1,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let mut c = EngineConfig {
            device_slowdown: Some(vec![1.0, 0.0]),
            ..Default::default()
        };
        assert!(c.validate().is_err());
        c.device_slowdown = Some(vec![1.0, 2.0]);
        assert!(c.validate().is_ok());
        assert!(FaultConfig::new(0.0, SimDuration::ZERO, 1).is_err());
        assert!(FaultConfig::new(100.0, SimDuration::ZERO, 1).is_ok());
        assert!(CheckpointConfig::new(SimDuration::ZERO, SimDuration::ZERO).is_err());
        assert!(CheckpointConfig::new(SimDuration::from_secs(1.0), SimDuration::ZERO).is_ok());
    }

    #[test]
    fn slowdown_vector_must_match_the_platform_device_count() {
        // A workstation has more than two devices: a two-entry vector
        // used to silently leave the rest at full speed. Now it is a
        // typed config error naming both counts.
        let platform = helios_platform::presets::workstation();
        let c = EngineConfig {
            device_slowdown: Some(vec![1.5, 2.0]),
            ..Default::default()
        };
        assert!(c.validate().is_ok(), "length is a platform-level concern");
        let err = c.validate_for(&platform).unwrap_err().to_string();
        assert!(err.contains("2 factors"), "{err}");
        assert!(
            err.contains(&format!("{} devices", platform.num_devices())),
            "{err}"
        );
        let c = EngineConfig {
            device_slowdown: Some(vec![1.0; platform.num_devices()]),
            ..Default::default()
        };
        assert!(c.validate_for(&platform).is_ok());
        // Executors reject the mismatch at entry.
        let wf = helios_workflow::generators::synthetic::layered_random(
            &helios_workflow::generators::synthetic::LayeredConfig {
                levels: 2,
                width: 2,
                ..Default::default()
            },
            7,
        )
        .unwrap();
        let bad = EngineConfig {
            device_slowdown: Some(vec![2.0]),
            ..Default::default()
        };
        let err = crate::Engine::new(bad)
            .run(
                &platform,
                &wf,
                &helios_sched::RoundRobinScheduler::default(),
            )
            .unwrap_err()
            .to_string();
        assert!(err.contains("1 factors"), "{err}");
    }

    #[test]
    fn resilience_excludes_legacy_fault_options() {
        use crate::resilience::FailureModel;
        let res = ResilienceConfig::new(
            FailureModel::exponential(10.0),
            RecoveryPolicy::RetryBackoff {
                base_secs: 0.0,
                factor: 1.0,
                cap_secs: 0.0,
                max_retries: 3,
            },
        );
        let c = EngineConfig {
            resilience: Some(res.clone()),
            faults: Some(FaultConfig::new(1.0, SimDuration::ZERO, 1).unwrap()),
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = EngineConfig {
            resilience: Some(res),
            ..Default::default()
        };
        assert!(c.validate().is_ok());
    }

    #[test]
    fn fault_view_maps_compatible_policies_only() {
        use crate::resilience::FailureModel;
        // No resilience: passes legacy options through.
        let c = EngineConfig {
            faults: Some(FaultConfig::new(2.0, SimDuration::ZERO, 7).unwrap()),
            ..Default::default()
        };
        let v = c.fault_view().unwrap();
        assert_eq!(v.faults.unwrap().mtbf_secs, 2.0);
        assert!(v.backoff.is_none());

        // Retry-backoff maps with a backoff triple.
        let mk = |policy| EngineConfig {
            resilience: Some(ResilienceConfig::new(
                FailureModel::exponential(5.0),
                policy,
            )),
            ..Default::default()
        };
        let v = mk(RecoveryPolicy::RetryBackoff {
            base_secs: 0.5,
            factor: 2.0,
            cap_secs: 4.0,
            max_retries: 9,
        })
        .fault_view()
        .unwrap();
        assert_eq!(v.faults.as_ref().unwrap().mtbf_secs, 5.0);
        assert_eq!(v.faults.unwrap().max_retries, 9);
        assert_eq!(v.backoff, Some((0.5, 2.0, 4.0)));

        // Checkpoint-restart maps onto the checkpointing model.
        let v = mk(RecoveryPolicy::CheckpointRestart {
            interval_secs: 1.0,
            overhead_secs: 0.1,
            max_retries: 3,
        })
        .fault_view()
        .unwrap();
        assert!(v.checkpointing.is_some());

        // Replication and rescheduling need the ResilientRunner.
        assert!(mk(RecoveryPolicy::ReplicateK {
            replicas: 2,
            max_retries: 1
        })
        .fault_view()
        .is_err());

        // So do non-transient or non-exponential failure models.
        let mut c = mk(RecoveryPolicy::RetryBackoff {
            base_secs: 0.0,
            factor: 1.0,
            cap_secs: 0.0,
            max_retries: 1,
        });
        c.resilience.as_mut().unwrap().failures.permanent_prob = 0.1;
        assert!(c.fault_view().is_err());
    }

    #[test]
    fn elasticity_requires_the_resilient_runner() {
        use crate::elastic::{ElasticEvent, ElasticEventKind, ElasticityConfig};
        let el = ElasticityConfig {
            events: vec![ElasticEvent {
                device: "gpu0".into(),
                at_secs: 1.0,
                kind: ElasticEventKind::Leave,
            }],
            churn: Vec::new(),
        };
        let c = EngineConfig {
            elasticity: Some(el.clone()),
            ..Default::default()
        };
        assert!(c.validate().is_ok());
        let err = c.fault_view().unwrap_err().to_string();
        assert!(err.contains("ResilientRunner"), "{err}");
        // Mutually exclusive with the legacy fault pair.
        let c = EngineConfig {
            elasticity: Some(el),
            faults: Some(FaultConfig::new(1.0, SimDuration::ZERO, 1).unwrap()),
            ..Default::default()
        };
        let err = c.validate().unwrap_err().to_string();
        assert!(err.contains("mutually exclusive"), "{err}");
        // An empty elasticity block is a config error, not a silent no-op.
        let c = EngineConfig {
            elasticity: Some(ElasticityConfig::default()),
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn backoff_helper_math() {
        assert_eq!(backoff_delay_secs(0.0, 2.0, 9.0, 5), 0.0);
        assert_eq!(backoff_delay_secs(1.0, 2.0, 16.0, 1), 1.0);
        assert_eq!(backoff_delay_secs(1.0, 2.0, 16.0, 4), 8.0);
        assert_eq!(backoff_delay_secs(1.0, 2.0, 16.0, 10), 16.0);
    }
}
