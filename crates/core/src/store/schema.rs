//! The sweep row schema, defined once.
//!
//! [`Column`] enumerates every field of a [`CellResult`] in declaration
//! (= serialization) order; everything that consumes cell rows — the
//! segment codec, the executor pipeline, the query planner, the summary
//! aggregation and the CLI printer — derives its column list from this
//! enum instead of hand-maintaining its own. The bridges
//! [`row_from_cell`] / [`cell_from_row`] and [`summary_row_values`] /
//! [`summary_row_from_values`] destructure or construct the structs
//! field by field with no `..` rest pattern, so adding a sweep field
//! without teaching the schema about it is a compile error, not a
//! silently dropped column.

use crate::campaign::sweep::{CellResult, SummaryRow};
use crate::EngineError;

/// One column of the cell-row schema, in [`CellResult`] field order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Column {
    /// Global cell index in spec expansion order.
    Cell,
    /// Workflow family name.
    Family,
    /// Platform preset name.
    Platform,
    /// Scheduler name.
    Scheduler,
    /// Cell seed.
    Seed,
    /// Realized makespan, seconds.
    MakespanSecs,
    /// Schedule length ratio.
    Slr,
    /// Total energy, joules.
    EnergyJ,
    /// Inter-device transfers performed.
    Transfers,
    /// Bytes moved across links.
    TransferBytes,
    /// Injected fault count.
    Failures,
    /// Retries performed.
    Retries,
    /// Whether the cell ran to completion.
    Completed,
    /// Non-contributing executed device-seconds.
    WastedWorkSecs,
    /// Restart/backoff/re-planning overhead, seconds.
    RecoveryOverheadSecs,
    /// `makespan / fault_free_makespan - 1`.
    MakespanDegradation,
    /// Transfers rerouted over the default link.
    Reroutes,
    /// Seconds transfers stalled on downed links.
    PartitionDowntimeSecs,
    /// Tasks re-executed after data-product loss.
    RematerializedTasks,
    /// Dependency bytes re-staged for re-executions.
    RematerializedBytes,
    /// Why an incomplete cell stopped (`None` for completed cells).
    IncompleteReason,
    /// Device-seconds of live capacity integrated over the run.
    CapacitySecs,
    /// Spot-preemption kills executed.
    Preemptions,
    /// Task copies migrated off draining or preempted devices.
    DrainMigratedTasks,
    /// Busy fraction of capacity contributed by mid-run joins.
    JoinUtilization,
}

/// The physical type of a column's values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// Unsigned 64-bit integer (also carries `usize` fields).
    U64,
    /// Unsigned 32-bit integer.
    U32,
    /// IEEE double.
    F64,
    /// Boolean.
    Bool,
    /// UTF-8 string.
    Str,
    /// Nullable UTF-8 string.
    OptStr,
}

impl Column {
    /// Every column, in [`CellResult`] field order — the canonical
    /// schema of store segments and scan executors.
    pub const ALL: [Column; 25] = [
        Column::Cell,
        Column::Family,
        Column::Platform,
        Column::Scheduler,
        Column::Seed,
        Column::MakespanSecs,
        Column::Slr,
        Column::EnergyJ,
        Column::Transfers,
        Column::TransferBytes,
        Column::Failures,
        Column::Retries,
        Column::Completed,
        Column::WastedWorkSecs,
        Column::RecoveryOverheadSecs,
        Column::MakespanDegradation,
        Column::Reroutes,
        Column::PartitionDowntimeSecs,
        Column::RematerializedTasks,
        Column::RematerializedBytes,
        Column::IncompleteReason,
        Column::CapacitySecs,
        Column::Preemptions,
        Column::DrainMigratedTasks,
        Column::JoinUtilization,
    ];

    /// The column's position in [`Column::ALL`] (= its index in a
    /// full-schema row).
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The column's name — identical to the [`CellResult`] field name
    /// and the JSON report key.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Column::Cell => "cell",
            Column::Family => "family",
            Column::Platform => "platform",
            Column::Scheduler => "scheduler",
            Column::Seed => "seed",
            Column::MakespanSecs => "makespan_secs",
            Column::Slr => "slr",
            Column::EnergyJ => "energy_j",
            Column::Transfers => "transfers",
            Column::TransferBytes => "transfer_bytes",
            Column::Failures => "failures",
            Column::Retries => "retries",
            Column::Completed => "completed",
            Column::WastedWorkSecs => "wasted_work_secs",
            Column::RecoveryOverheadSecs => "recovery_overhead_secs",
            Column::MakespanDegradation => "makespan_degradation",
            Column::Reroutes => "reroutes",
            Column::PartitionDowntimeSecs => "partition_downtime_secs",
            Column::RematerializedTasks => "rematerialized_tasks",
            Column::RematerializedBytes => "rematerialized_bytes",
            Column::IncompleteReason => "incomplete_reason",
            Column::CapacitySecs => "capacity_secs",
            Column::Preemptions => "preemptions",
            Column::DrainMigratedTasks => "drain_migrated_tasks",
            Column::JoinUtilization => "join_utilization",
        }
    }

    /// The column's physical type.
    #[must_use]
    pub fn column_type(self) -> ColumnType {
        match self {
            Column::Cell | Column::Seed | Column::Transfers => ColumnType::U64,
            Column::Failures
            | Column::Retries
            | Column::Reroutes
            | Column::RematerializedTasks
            | Column::Preemptions
            | Column::DrainMigratedTasks => ColumnType::U32,
            Column::MakespanSecs
            | Column::Slr
            | Column::EnergyJ
            | Column::TransferBytes
            | Column::WastedWorkSecs
            | Column::RecoveryOverheadSecs
            | Column::MakespanDegradation
            | Column::PartitionDowntimeSecs
            | Column::RematerializedBytes
            | Column::CapacitySecs
            | Column::JoinUtilization => ColumnType::F64,
            Column::Completed => ColumnType::Bool,
            Column::Family | Column::Platform | Column::Scheduler => ColumnType::Str,
            Column::IncompleteReason => ColumnType::OptStr,
        }
    }

    /// Resolves a column by its name; `None` for unknown names.
    #[must_use]
    pub fn by_name(name: &str) -> Option<Column> {
        Column::ALL.into_iter().find(|c| c.name() == name)
    }
}

/// The schema's column names in order — the `schema()` of a full scan.
#[must_use]
pub fn schema_names() -> Vec<String> {
    Column::ALL.iter().map(|c| c.name().to_owned()).collect()
}

/// One cell value flowing through the executor pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned 64-bit integer.
    U64(u64),
    /// Unsigned 32-bit integer.
    U32(u32),
    /// IEEE double.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// UTF-8 string.
    Str(String),
    /// Absent value (a null `incomplete_reason`, or an aggregate over
    /// zero contributing rows).
    Null,
}

impl Value {
    /// The value as an `f64` when it is numeric; `None` otherwise.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U64(v) => Some(*v as f64),
            Value::U32(v) => Some(f64::from(*v)),
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }
}

/// One row of the pipeline: one [`Value`] per schema column.
pub type Row = Vec<Value>;

/// Converts a [`CellResult`] into a full-schema row. The exhaustive
/// destructuring (no `..`) is deliberate: a new sweep field fails to
/// compile here until the schema learns its column.
#[must_use]
pub fn row_from_cell(cell: &CellResult) -> Row {
    let CellResult {
        cell,
        family,
        platform,
        scheduler,
        seed,
        makespan_secs,
        slr,
        energy_j,
        transfers,
        transfer_bytes,
        failures,
        retries,
        completed,
        wasted_work_secs,
        recovery_overhead_secs,
        makespan_degradation,
        reroutes,
        partition_downtime_secs,
        rematerialized_tasks,
        rematerialized_bytes,
        incomplete_reason,
        capacity_secs,
        preemptions,
        drain_migrated_tasks,
        join_utilization,
    } = cell;
    vec![
        Value::U64(*cell as u64),
        Value::Str(family.clone()),
        Value::Str(platform.clone()),
        Value::Str(scheduler.clone()),
        Value::U64(*seed),
        Value::F64(*makespan_secs),
        Value::F64(*slr),
        Value::F64(*energy_j),
        Value::U64(*transfers as u64),
        Value::F64(*transfer_bytes),
        Value::U32(*failures),
        Value::U32(*retries),
        Value::Bool(*completed),
        Value::F64(*wasted_work_secs),
        Value::F64(*recovery_overhead_secs),
        Value::F64(*makespan_degradation),
        Value::U32(*reroutes),
        Value::F64(*partition_downtime_secs),
        Value::U32(*rematerialized_tasks),
        Value::F64(*rematerialized_bytes),
        match incomplete_reason {
            Some(r) => Value::Str(r.clone()),
            None => Value::Null,
        },
        Value::F64(*capacity_secs),
        Value::U32(*preemptions),
        Value::U32(*drain_migrated_tasks),
        Value::F64(*join_utilization),
    ]
}

fn type_err(col: Column, got: &Value) -> EngineError {
    EngineError::Config(format!(
        "store row: column {:?} expected a {:?} value, got {got:?}",
        col.name(),
        col.column_type()
    ))
}

fn u64_at(row: &[Value], col: Column) -> Result<u64, EngineError> {
    match &row[col.index()] {
        Value::U64(v) => Ok(*v),
        other => Err(type_err(col, other)),
    }
}

fn u32_at(row: &[Value], col: Column) -> Result<u32, EngineError> {
    match &row[col.index()] {
        Value::U32(v) => Ok(*v),
        other => Err(type_err(col, other)),
    }
}

fn f64_at(row: &[Value], col: Column) -> Result<f64, EngineError> {
    match &row[col.index()] {
        Value::F64(v) => Ok(*v),
        other => Err(type_err(col, other)),
    }
}

fn bool_at(row: &[Value], col: Column) -> Result<bool, EngineError> {
    match &row[col.index()] {
        Value::Bool(v) => Ok(*v),
        other => Err(type_err(col, other)),
    }
}

fn str_at(row: &[Value], col: Column) -> Result<String, EngineError> {
    match &row[col.index()] {
        Value::Str(v) => Ok(v.clone()),
        other => Err(type_err(col, other)),
    }
}

fn opt_str_at(row: &[Value], col: Column) -> Result<Option<String>, EngineError> {
    match &row[col.index()] {
        Value::Str(v) => Ok(Some(v.clone())),
        Value::Null => Ok(None),
        other => Err(type_err(col, other)),
    }
}

/// Reconstructs a [`CellResult`] from a full-schema row — the exact
/// inverse of [`row_from_cell`].
///
/// # Errors
///
/// [`EngineError::Config`] when the row is too short or a value does
/// not carry its column's type.
pub fn cell_from_row(row: &[Value]) -> Result<CellResult, EngineError> {
    if row.len() != Column::ALL.len() {
        return Err(EngineError::Config(format!(
            "store row has {} values, the schema has {} columns",
            row.len(),
            Column::ALL.len()
        )));
    }
    Ok(CellResult {
        cell: u64_at(row, Column::Cell)? as usize,
        family: str_at(row, Column::Family)?,
        platform: str_at(row, Column::Platform)?,
        scheduler: str_at(row, Column::Scheduler)?,
        seed: u64_at(row, Column::Seed)?,
        makespan_secs: f64_at(row, Column::MakespanSecs)?,
        slr: f64_at(row, Column::Slr)?,
        energy_j: f64_at(row, Column::EnergyJ)?,
        transfers: u64_at(row, Column::Transfers)? as usize,
        transfer_bytes: f64_at(row, Column::TransferBytes)?,
        failures: u32_at(row, Column::Failures)?,
        retries: u32_at(row, Column::Retries)?,
        completed: bool_at(row, Column::Completed)?,
        wasted_work_secs: f64_at(row, Column::WastedWorkSecs)?,
        recovery_overhead_secs: f64_at(row, Column::RecoveryOverheadSecs)?,
        makespan_degradation: f64_at(row, Column::MakespanDegradation)?,
        reroutes: u32_at(row, Column::Reroutes)?,
        partition_downtime_secs: f64_at(row, Column::PartitionDowntimeSecs)?,
        rematerialized_tasks: u32_at(row, Column::RematerializedTasks)?,
        rematerialized_bytes: f64_at(row, Column::RematerializedBytes)?,
        incomplete_reason: opt_str_at(row, Column::IncompleteReason)?,
        capacity_secs: f64_at(row, Column::CapacitySecs)?,
        preemptions: u32_at(row, Column::Preemptions)?,
        drain_migrated_tasks: u32_at(row, Column::DrainMigratedTasks)?,
        join_utilization: f64_at(row, Column::JoinUtilization)?,
    })
}

/// How one summary column is aggregated from cell rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SummaryAgg {
    /// Row count of the group.
    Count,
    /// Mean of the column over completed cells; null when none
    /// completed (the PR 6 null-mean semantics).
    MeanCompleted(Column),
    /// Fraction of the group's cells with `completed = true`.
    CompletedFraction,
}

/// One aggregated column of a [`SummaryRow`]: JSON field name, CLI
/// header, CLI column width and float precision, and the aggregation
/// that produces it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SummaryColumn {
    /// The [`SummaryRow`] field (= JSON key) this column fills.
    pub name: &'static str,
    /// The CLI table header.
    pub header: &'static str,
    /// The CLI column width (right-aligned).
    pub width: usize,
    /// Float precision for the CLI cell; `None` renders as an integer.
    pub precision: Option<usize>,
    /// The aggregation producing the value.
    pub agg: SummaryAgg,
}

/// The summary group-by keys with their CLI column widths
/// (left-aligned), in [`SummaryRow`] field order.
pub const SUMMARY_KEYS: [(Column, usize); 3] = [
    (Column::Family, 14),
    (Column::Platform, 14),
    (Column::Scheduler, 12),
];

/// The aggregated summary columns, in [`SummaryRow`] field order — the
/// one description `merge`, `summarize` and the CLI printer all share.
pub const SUMMARY_AGGREGATES: [SummaryColumn; 5] = [
    SummaryColumn {
        name: "cells",
        header: "cells",
        width: 6,
        precision: None,
        agg: SummaryAgg::Count,
    },
    SummaryColumn {
        name: "mean_makespan_secs",
        header: "makespan (s)",
        width: 16,
        precision: Some(6),
        agg: SummaryAgg::MeanCompleted(Column::MakespanSecs),
    },
    SummaryColumn {
        name: "mean_slr",
        header: "SLR",
        width: 10,
        precision: Some(3),
        agg: SummaryAgg::MeanCompleted(Column::Slr),
    },
    SummaryColumn {
        name: "mean_energy_j",
        header: "energy (J)",
        width: 14,
        precision: Some(1),
        agg: SummaryAgg::MeanCompleted(Column::EnergyJ),
    },
    SummaryColumn {
        name: "completion_probability",
        header: "compl",
        width: 8,
        precision: Some(2),
        agg: SummaryAgg::CompletedFraction,
    },
];

/// A [`SummaryRow`]'s values in `SUMMARY_KEYS ++ SUMMARY_AGGREGATES`
/// order. Exhaustive destructuring: a new summary field fails to
/// compile here until the plan above learns its column.
#[must_use]
pub fn summary_row_values(row: &SummaryRow) -> Vec<Value> {
    let SummaryRow {
        family,
        platform,
        scheduler,
        cells,
        mean_makespan_secs,
        mean_slr,
        mean_energy_j,
        completion_probability,
    } = row;
    let opt = |v: &Option<f64>| match v {
        Some(v) => Value::F64(*v),
        None => Value::Null,
    };
    vec![
        Value::Str(family.clone()),
        Value::Str(platform.clone()),
        Value::Str(scheduler.clone()),
        Value::U64(*cells as u64),
        opt(mean_makespan_secs),
        opt(mean_slr),
        opt(mean_energy_j),
        Value::F64(*completion_probability),
    ]
}

/// Rebuilds a [`SummaryRow`] from values in `SUMMARY_KEYS ++
/// SUMMARY_AGGREGATES` order — the inverse of [`summary_row_values`],
/// and the bridge the group-by plan uses to emit summary rows.
///
/// # Errors
///
/// [`EngineError::Config`] when the value list is the wrong length or a
/// value has the wrong type for its slot.
pub fn summary_row_from_values(values: &[Value]) -> Result<SummaryRow, EngineError> {
    let expect = SUMMARY_KEYS.len() + SUMMARY_AGGREGATES.len();
    if values.len() != expect {
        return Err(EngineError::Config(format!(
            "summary row has {} values, the plan has {expect} columns",
            values.len()
        )));
    }
    let str_v = |at: usize, what: &str| match &values[at] {
        Value::Str(v) => Ok(v.clone()),
        other => Err(EngineError::Config(format!(
            "summary {what}: expected a string, got {other:?}"
        ))),
    };
    let f64_opt = |at: usize, what: &str| match &values[at] {
        Value::F64(v) => Ok(Some(*v)),
        Value::Null => Ok(None),
        other => Err(EngineError::Config(format!(
            "summary {what}: expected a float or null, got {other:?}"
        ))),
    };
    let cells = match &values[3] {
        Value::U64(v) => *v as usize,
        other => {
            return Err(EngineError::Config(format!(
                "summary cells: expected an integer, got {other:?}"
            )))
        }
    };
    let completion_probability = match &values[7] {
        Value::F64(v) => *v,
        other => {
            return Err(EngineError::Config(format!(
                "summary completion_probability: expected a float, got {other:?}"
            )))
        }
    };
    Ok(SummaryRow {
        family: str_v(0, "family")?,
        platform: str_v(1, "platform")?,
        scheduler: str_v(2, "scheduler")?,
        cells,
        mean_makespan_secs: f64_opt(4, "mean_makespan_secs")?,
        mean_slr: f64_opt(5, "mean_slr")?,
        mean_energy_j: f64_opt(6, "mean_energy_j")?,
        completion_probability,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cell() -> CellResult {
        CellResult {
            cell: 7,
            family: "montage".into(),
            platform: "workstation".into(),
            scheduler: "heft".into(),
            seed: 42,
            makespan_secs: 1.5,
            slr: 1.1,
            energy_j: 2.25,
            transfers: 3,
            transfer_bytes: 1e6,
            failures: 1,
            retries: 2,
            completed: false,
            wasted_work_secs: 0.5,
            recovery_overhead_secs: 0.25,
            makespan_degradation: 0.1,
            reroutes: 4,
            partition_downtime_secs: 0.125,
            rematerialized_tasks: 5,
            rematerialized_bytes: 2e6,
            incomplete_reason: Some("retries_exhausted".into()),
            capacity_secs: 9.0,
            preemptions: 6,
            drain_migrated_tasks: 7,
            join_utilization: 0.75,
        }
    }

    #[test]
    fn schema_order_matches_cell_result_fields() {
        // The schema names must be exactly the serde field names in
        // declaration order: the JSON report and the store describe the
        // same row.
        let json = serde_json::to_string(&sample_cell()).unwrap();
        let mut at = 0;
        for col in Column::ALL {
            let key = format!("\"{}\":", col.name());
            let pos = json[at..]
                .find(&key)
                .unwrap_or_else(|| panic!("{} not after byte {at} in {json}", col.name()));
            at += pos;
        }
    }

    #[test]
    fn cell_row_round_trip_is_exact() {
        for cell in [sample_cell(), {
            let mut c = sample_cell();
            c.completed = true;
            c.incomplete_reason = None;
            c
        }] {
            let row = row_from_cell(&cell);
            assert_eq!(row.len(), Column::ALL.len());
            assert_eq!(cell_from_row(&row).unwrap(), cell);
        }
    }

    #[test]
    fn column_lookup_round_trips() {
        for col in Column::ALL {
            assert_eq!(Column::by_name(col.name()), Some(col));
            assert_eq!(Column::ALL[col.index()], col);
        }
        assert_eq!(Column::by_name("no_such_column"), None);
    }

    #[test]
    fn summary_row_bridges_round_trip() {
        let row = SummaryRow {
            family: "montage".into(),
            platform: "workstation".into(),
            scheduler: "heft".into(),
            cells: 5,
            mean_makespan_secs: Some(1.5),
            mean_slr: None,
            mean_energy_j: Some(2.0),
            completion_probability: 0.8,
        };
        let values = summary_row_values(&row);
        assert_eq!(values.len(), SUMMARY_KEYS.len() + SUMMARY_AGGREGATES.len());
        assert_eq!(summary_row_from_values(&values).unwrap(), row);
    }

    #[test]
    fn cell_from_row_rejects_bad_shapes() {
        let short = vec![Value::U64(1)];
        assert!(cell_from_row(&short).is_err());
        let mut wrong = row_from_cell(&sample_cell());
        wrong[Column::MakespanSecs.index()] = Value::Str("oops".into());
        let err = cell_from_row(&wrong).unwrap_err().to_string();
        assert!(err.contains("makespan_secs"), "{err}");
    }
}
