//! The volcano-style executor pipeline over cell rows.
//!
//! Plans are trees of [`Executor`]s — scan → filter → project →
//! aggregate/group-by — pulled one row at a time via `next()`, in the
//! erdb planner/executors style. The same executors serve three
//! callers: `summarize` (a fixed group-by plan, see
//! [`summarize_cells`]), `campaign merge` (which recomputes the
//! summary through that plan), and `helios query` (which compiles user
//! expressions onto arbitrary plans). The sweep's aggregation math —
//! first-seen group order, completed-only means, null means for groups
//! with no completed cell — therefore exists exactly once, here.

use crate::campaign::sweep::{CellResult, SummaryRow};
use crate::EngineError;

use super::schema::{
    row_from_cell, schema_names, summary_row_from_values, Column, Row, SummaryAgg, Value,
    SUMMARY_AGGREGATES, SUMMARY_KEYS,
};

/// A pull-based plan node: yields rows one at a time, knows its output
/// schema, and can restart from the first row.
pub trait Executor {
    /// The names of the columns this node emits, in row order.
    fn schema(&self) -> &[String];
    /// The next output row; `None` when exhausted. Errors are yielded
    /// in-band so a consumer can stop at the first failure.
    fn next(&mut self) -> Option<Result<Row, EngineError>>;
    /// Restarts the node (and its inputs) from the first row.
    ///
    /// # Errors
    ///
    /// Propagates input restart failures as [`EngineError`].
    fn rewind(&mut self) -> Result<(), EngineError>;
}

impl std::fmt::Debug for dyn Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Executor({:?})", self.schema())
    }
}

/// Leaf node: yields an in-memory row vector in order.
#[derive(Debug)]
pub struct ScanExec {
    schema: Vec<String>,
    rows: Vec<Row>,
    at: usize,
}

impl ScanExec {
    /// A scan over `rows`, all shaped by `schema`.
    #[must_use]
    pub fn new(schema: Vec<String>, rows: Vec<Row>) -> ScanExec {
        ScanExec {
            schema,
            rows,
            at: 0,
        }
    }

    /// A full-schema scan over a slice of cells, in slice order.
    #[must_use]
    pub fn over_cells(cells: &[CellResult]) -> ScanExec {
        ScanExec::new(schema_names(), cells.iter().map(row_from_cell).collect())
    }
}

impl Executor for ScanExec {
    fn schema(&self) -> &[String] {
        &self.schema
    }

    fn next(&mut self) -> Option<Result<Row, EngineError>> {
        let row = self.rows.get(self.at)?.clone();
        self.at += 1;
        Some(Ok(row))
    }

    fn rewind(&mut self) -> Result<(), EngineError> {
        self.at = 0;
        Ok(())
    }
}

/// A comparison operator in a filter predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A literal on the right-hand side of a predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// A numeric literal, compared against any numeric column.
    Num(f64),
    /// A string literal.
    Str(String),
    /// A boolean literal.
    Bool(bool),
    /// The `null` literal (only `=`/`!=`, only nullable columns).
    Null,
}

/// One `column op literal` conjunct of a WHERE clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// Input-schema index of the column under test.
    pub col: usize,
    /// The comparison.
    pub op: CmpOp,
    /// The right-hand literal.
    pub literal: Literal,
}

impl Predicate {
    /// Whether `row` satisfies this predicate. Type agreement is the
    /// planner's job; a value/literal mismatch that slips through
    /// compares as not-equal, never panics.
    #[must_use]
    pub fn matches(&self, row: &[Value]) -> bool {
        let value = &row[self.col];
        match &self.literal {
            Literal::Num(rhs) => match value.as_f64() {
                Some(lhs) => match self.op {
                    CmpOp::Eq => lhs == *rhs,
                    CmpOp::Ne => lhs != *rhs,
                    CmpOp::Lt => lhs < *rhs,
                    CmpOp::Le => lhs <= *rhs,
                    CmpOp::Gt => lhs > *rhs,
                    CmpOp::Ge => lhs >= *rhs,
                },
                None => self.op == CmpOp::Ne,
            },
            Literal::Str(rhs) => {
                let eq = matches!(value, Value::Str(v) if v == rhs);
                match self.op {
                    CmpOp::Eq => eq,
                    _ => !eq,
                }
            }
            Literal::Bool(rhs) => {
                let eq = matches!(value, Value::Bool(v) if v == rhs);
                match self.op {
                    CmpOp::Eq => eq,
                    _ => !eq,
                }
            }
            Literal::Null => {
                let is_null = matches!(value, Value::Null);
                match self.op {
                    CmpOp::Eq => is_null,
                    _ => !is_null,
                }
            }
        }
    }
}

/// Yields the input rows that satisfy every predicate (AND semantics).
#[derive(Debug)]
pub struct FilterExec {
    input: Box<dyn Executor>,
    predicates: Vec<Predicate>,
}

impl FilterExec {
    /// Filters `input` by the conjunction of `predicates`.
    #[must_use]
    pub fn new(input: Box<dyn Executor>, predicates: Vec<Predicate>) -> FilterExec {
        FilterExec { input, predicates }
    }
}

impl Executor for FilterExec {
    fn schema(&self) -> &[String] {
        self.input.schema()
    }

    fn next(&mut self) -> Option<Result<Row, EngineError>> {
        loop {
            let row = match self.input.next()? {
                Ok(row) => row,
                Err(e) => return Some(Err(e)),
            };
            if self.predicates.iter().all(|p| p.matches(&row)) {
                return Some(Ok(row));
            }
        }
    }

    fn rewind(&mut self) -> Result<(), EngineError> {
        self.input.rewind()
    }
}

/// Reorders/narrows the input to the given column indices.
#[derive(Debug)]
pub struct ProjectExec {
    input: Box<dyn Executor>,
    indices: Vec<usize>,
    schema: Vec<String>,
}

impl ProjectExec {
    /// Projects `input` to `indices`, naming the outputs `names`.
    #[must_use]
    pub fn new(input: Box<dyn Executor>, indices: Vec<usize>, names: Vec<String>) -> ProjectExec {
        ProjectExec {
            input,
            indices,
            schema: names,
        }
    }
}

impl Executor for ProjectExec {
    fn schema(&self) -> &[String] {
        &self.schema
    }

    fn next(&mut self) -> Option<Result<Row, EngineError>> {
        let row = match self.input.next()? {
            Ok(row) => row,
            Err(e) => return Some(Err(e)),
        };
        Some(Ok(self.indices.iter().map(|&i| row[i].clone()).collect()))
    }

    fn rewind(&mut self) -> Result<(), EngineError> {
        self.input.rewind()
    }
}

/// An aggregation over one input column (or the whole row for
/// [`Agg::CountStar`]), by input-schema index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Agg {
    /// Row count of the group.
    CountStar,
    /// Sum of a numeric column; null over zero rows.
    Sum(usize),
    /// Mean of a numeric column; null over zero rows.
    Avg(usize),
    /// Minimum of a numeric column; null over zero rows.
    Min(usize),
    /// Maximum of a numeric column; null over zero rows.
    Max(usize),
    /// Mean of `metric` over rows where the boolean `completed`
    /// column is true; null when none are — the sweep's null-mean
    /// semantics.
    AvgCompleted {
        /// The numeric column being averaged.
        metric: usize,
        /// The boolean column gating contribution.
        completed: usize,
    },
    /// Fraction of the group's rows where the boolean column is true.
    CompletedFrac(usize),
}

/// A running accumulator for one [`Agg`] in one group. Sums are added
/// in input-row order, so float results are bit-identical to the
/// legacy sequential loop.
#[derive(Debug, Clone, Copy)]
struct Accum {
    sum: f64,
    n: u64,
    rows: u64,
    min: f64,
    max: f64,
}

impl Accum {
    fn new() -> Accum {
        Accum {
            sum: 0.0,
            n: 0,
            rows: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn feed(&mut self, agg: Agg, row: &[Value]) {
        self.rows += 1;
        match agg {
            Agg::CountStar => {}
            Agg::Sum(col) | Agg::Avg(col) | Agg::Min(col) | Agg::Max(col) => {
                if let Some(v) = row[col].as_f64() {
                    self.sum += v;
                    self.n += 1;
                    self.min = self.min.min(v);
                    self.max = self.max.max(v);
                }
            }
            Agg::AvgCompleted { metric, completed } => {
                if matches!(row[completed], Value::Bool(true)) {
                    if let Some(v) = row[metric].as_f64() {
                        self.sum += v;
                        self.n += 1;
                    }
                }
            }
            Agg::CompletedFrac(col) => {
                if matches!(row[col], Value::Bool(true)) {
                    self.n += 1;
                }
            }
        }
    }

    fn finish(&self, agg: Agg) -> Value {
        let mean = || {
            if self.n > 0 {
                Value::F64(self.sum / self.n as f64)
            } else {
                Value::Null
            }
        };
        match agg {
            Agg::CountStar => Value::U64(self.rows),
            Agg::Sum(_) => {
                if self.n > 0 {
                    Value::F64(self.sum)
                } else {
                    Value::Null
                }
            }
            Agg::Avg(_) | Agg::AvgCompleted { .. } => mean(),
            Agg::Min(_) => {
                if self.n > 0 {
                    Value::F64(self.min)
                } else {
                    Value::Null
                }
            }
            Agg::Max(_) => {
                if self.n > 0 {
                    Value::F64(self.max)
                } else {
                    Value::Null
                }
            }
            Agg::CompletedFrac(_) => {
                if self.rows > 0 {
                    Value::F64(self.n as f64 / self.rows as f64)
                } else {
                    Value::Null
                }
            }
        }
    }
}

/// Group-by + aggregate node. Output rows are the group-key values
/// followed by one value per aggregate; groups appear in first-seen
/// input order (the sweep's spec-declaration order, since cell rows
/// arrive sorted by index). With no group keys it emits exactly one
/// global row, even over empty input.
#[derive(Debug)]
pub struct AggregateExec {
    input: Box<dyn Executor>,
    keys: Vec<usize>,
    aggs: Vec<Agg>,
    schema: Vec<String>,
    groups: Option<Vec<Row>>,
    at: usize,
}

impl AggregateExec {
    /// Groups `input` by the `keys` columns and computes `aggs`;
    /// `names` is the full output schema (key names then agg names).
    #[must_use]
    pub fn new(
        input: Box<dyn Executor>,
        keys: Vec<usize>,
        aggs: Vec<Agg>,
        names: Vec<String>,
    ) -> AggregateExec {
        AggregateExec {
            input,
            keys,
            aggs,
            schema: names,
            groups: None,
            at: 0,
        }
    }

    fn compute(&mut self) -> Result<Vec<Row>, EngineError> {
        let mut group_keys: Vec<Vec<Value>> = Vec::new();
        let mut accums: Vec<Vec<Accum>> = Vec::new();
        while let Some(row) = self.input.next() {
            let row = row?;
            let key: Vec<Value> = self.keys.iter().map(|&i| row[i].clone()).collect();
            let at = match group_keys.iter().position(|k| *k == key) {
                Some(at) => at,
                None => {
                    group_keys.push(key);
                    accums.push(vec![Accum::new(); self.aggs.len()]);
                    group_keys.len() - 1
                }
            };
            for (accum, &agg) in accums[at].iter_mut().zip(&self.aggs) {
                accum.feed(agg, &row);
            }
        }
        if group_keys.is_empty() && self.keys.is_empty() {
            // A global aggregate always has one row: count 0, null
            // everything else.
            group_keys.push(Vec::new());
            accums.push(vec![Accum::new(); self.aggs.len()]);
        }
        Ok(group_keys
            .into_iter()
            .zip(accums)
            .map(|(mut key, accum)| {
                key.extend(accum.iter().zip(&self.aggs).map(|(a, &agg)| a.finish(agg)));
                key
            })
            .collect())
    }

    fn materialized(&mut self) -> Result<&Vec<Row>, EngineError> {
        if self.groups.is_none() {
            self.groups = Some(self.compute()?);
        }
        Ok(self.groups.as_ref().expect("just materialized"))
    }
}

impl Executor for AggregateExec {
    fn schema(&self) -> &[String] {
        &self.schema
    }

    fn next(&mut self) -> Option<Result<Row, EngineError>> {
        let at = self.at;
        let row = match self.materialized() {
            Ok(groups) => groups.get(at)?.clone(),
            Err(e) => return Some(Err(e)),
        };
        self.at += 1;
        Some(Ok(row))
    }

    fn rewind(&mut self) -> Result<(), EngineError> {
        self.input.rewind()?;
        self.groups = None;
        self.at = 0;
        Ok(())
    }
}

/// Drains an executor into a row vector, stopping at the first error.
///
/// # Errors
///
/// The first in-band error the plan yields.
pub fn collect(exec: &mut dyn Executor) -> Result<Vec<Row>, EngineError> {
    let mut out = Vec::new();
    while let Some(row) = exec.next() {
        out.push(row?);
    }
    Ok(out)
}

fn summary_agg(agg: SummaryAgg) -> Agg {
    match agg {
        SummaryAgg::Count => Agg::CountStar,
        SummaryAgg::MeanCompleted(col) => Agg::AvgCompleted {
            metric: col.index(),
            completed: Column::Completed.index(),
        },
        SummaryAgg::CompletedFraction => Agg::CompletedFrac(Column::Completed.index()),
    }
}

/// The sweep summary as a pipeline plan: scan the cells, group by
/// `SUMMARY_KEYS`, compute `SUMMARY_AGGREGATES`. This *is* the
/// `summarize` every caller (merge, sweep reports, the CLI, `helios
/// query`) shares; its output is field-for-field the legacy
/// sequential loop.
#[must_use]
pub fn summarize_cells(cells: &[CellResult]) -> Vec<SummaryRow> {
    let scan = ScanExec::over_cells(cells);
    let keys: Vec<usize> = SUMMARY_KEYS.iter().map(|&(c, _)| c.index()).collect();
    let aggs: Vec<Agg> = SUMMARY_AGGREGATES
        .iter()
        .map(|c| summary_agg(c.agg))
        .collect();
    let names: Vec<String> = SUMMARY_KEYS
        .iter()
        .map(|&(c, _)| c.name().to_owned())
        .chain(SUMMARY_AGGREGATES.iter().map(|c| c.name.to_owned()))
        .collect();
    let mut plan = AggregateExec::new(Box::new(scan), keys, aggs, names);
    let mut out = Vec::new();
    while let Some(row) = plan.next() {
        let row = row.expect("in-memory summary scan cannot fail");
        out.push(
            summary_row_from_values(&row).expect("the summary plan emits summary-shaped rows"),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(i: usize, scheduler: &str, completed: bool, makespan: f64) -> CellResult {
        CellResult {
            cell: i,
            family: "montage".into(),
            platform: "workstation".into(),
            scheduler: scheduler.into(),
            seed: i as u64,
            makespan_secs: makespan,
            slr: makespan / 2.0,
            energy_j: makespan * 3.0,
            transfers: 1,
            transfer_bytes: 10.0,
            failures: 0,
            retries: 0,
            completed,
            wasted_work_secs: 0.0,
            recovery_overhead_secs: 0.0,
            makespan_degradation: 0.0,
            reroutes: 0,
            partition_downtime_secs: 0.0,
            rematerialized_tasks: 0,
            rematerialized_bytes: 0.0,
            incomplete_reason: if completed {
                None
            } else {
                Some("lost_workload".into())
            },
            capacity_secs: 0.0,
            preemptions: 0,
            drain_migrated_tasks: 0,
            join_utilization: 0.0,
        }
    }

    #[test]
    fn filter_project_pipeline_selects_rows() {
        let cells = vec![
            cell(0, "heft", true, 4.0),
            cell(1, "olb", true, 9.0),
            cell(2, "heft", false, 5.0),
        ];
        let scan = ScanExec::over_cells(&cells);
        let filter = FilterExec::new(
            Box::new(scan),
            vec![Predicate {
                col: Column::Scheduler.index(),
                op: CmpOp::Eq,
                literal: Literal::Str("heft".into()),
            }],
        );
        let mut plan = ProjectExec::new(
            Box::new(filter),
            vec![Column::Cell.index(), Column::MakespanSecs.index()],
            vec!["cell".into(), "makespan_secs".into()],
        );
        let rows = collect(&mut plan).unwrap();
        assert_eq!(
            rows,
            vec![
                vec![Value::U64(0), Value::F64(4.0)],
                vec![Value::U64(2), Value::F64(5.0)],
            ]
        );
        plan.rewind().unwrap();
        assert_eq!(collect(&mut plan).unwrap().len(), 2);
    }

    #[test]
    fn predicates_cover_ordering_strings_bools_and_null() {
        let cells = [cell(0, "heft", true, 4.0), cell(1, "olb", false, 9.0)];
        let rows: Vec<Row> = cells.iter().map(row_from_cell).collect();
        let pred = |col: Column, op, literal| Predicate {
            col: col.index(),
            op,
            literal,
        };
        assert!(pred(Column::MakespanSecs, CmpOp::Lt, Literal::Num(5.0)).matches(&rows[0]));
        assert!(!pred(Column::MakespanSecs, CmpOp::Ge, Literal::Num(5.0)).matches(&rows[0]));
        assert!(pred(Column::Completed, CmpOp::Eq, Literal::Bool(true)).matches(&rows[0]));
        assert!(pred(Column::IncompleteReason, CmpOp::Eq, Literal::Null).matches(&rows[0]));
        assert!(!pred(Column::IncompleteReason, CmpOp::Eq, Literal::Null).matches(&rows[1]));
        assert!(pred(
            Column::IncompleteReason,
            CmpOp::Eq,
            Literal::Str("lost_workload".into())
        )
        .matches(&rows[1]));
        // A null value never equals a string literal, and != is true.
        assert!(!pred(
            Column::IncompleteReason,
            CmpOp::Eq,
            Literal::Str("lost_workload".into())
        )
        .matches(&rows[0]));
        assert!(pred(
            Column::IncompleteReason,
            CmpOp::Ne,
            Literal::Str("lost_workload".into())
        )
        .matches(&rows[0]));
    }

    #[test]
    fn aggregate_matches_the_legacy_summarize_loop() {
        let cells = vec![
            cell(0, "heft", true, 4.0),
            cell(1, "olb", false, 9.0),
            cell(2, "heft", true, 6.0),
            cell(3, "olb", false, 1.0),
        ];
        let rows = summarize_cells(&cells);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].scheduler, "heft");
        assert_eq!(rows[0].cells, 2);
        assert_eq!(rows[0].mean_makespan_secs, Some(5.0));
        assert_eq!(rows[0].completion_probability, 1.0);
        // olb never completed: null means, zero completion.
        assert_eq!(rows[1].scheduler, "olb");
        assert_eq!(rows[1].mean_makespan_secs, None);
        assert_eq!(rows[1].mean_slr, None);
        assert_eq!(rows[1].mean_energy_j, None);
        assert_eq!(rows[1].completion_probability, 0.0);
    }

    #[test]
    fn summarize_over_no_cells_is_empty() {
        assert!(summarize_cells(&[]).is_empty());
    }

    #[test]
    fn global_aggregate_emits_one_row_even_when_empty() {
        let scan = ScanExec::over_cells(&[]);
        let mut plan = AggregateExec::new(
            Box::new(scan),
            vec![],
            vec![Agg::CountStar, Agg::Avg(Column::MakespanSecs.index())],
            vec!["count(*)".into(), "avg(makespan_secs)".into()],
        );
        let rows = collect(&mut plan).unwrap();
        assert_eq!(rows, vec![vec![Value::U64(0), Value::Null]]);
    }

    #[test]
    fn min_max_sum_cover_numeric_columns() {
        let cells = vec![cell(0, "heft", true, 4.0), cell(1, "heft", true, 9.0)];
        let scan = ScanExec::over_cells(&cells);
        let m = Column::MakespanSecs.index();
        let mut plan = AggregateExec::new(
            Box::new(scan),
            vec![],
            vec![Agg::Min(m), Agg::Max(m), Agg::Sum(m)],
            vec!["min".into(), "max".into(), "sum".into()],
        );
        let rows = collect(&mut plan).unwrap();
        assert_eq!(
            rows,
            vec![vec![Value::F64(4.0), Value::F64(9.0), Value::F64(13.0)]]
        );
    }
}
