//! The columnar cell-result store and its query pipeline.
//!
//! Three layers, each usable alone:
//!
//! * [`schema`] — the sweep row schema defined once: a [`Column`] enum
//!   mirroring every `CellResult` field, typed values, and the summary
//!   aggregation plan (`SUMMARY_KEYS`/`SUMMARY_AGGREGATES`) that
//!   merge, summarize, and the CLI printer all derive from.
//! * [`segment`] — the `HELIOSC1` append-friendly segment file:
//!   checksummed columnar row groups with journal-style
//!   longest-valid-prefix salvage, written incrementally by
//!   [`StoreWriter`] as cells finish.
//! * [`exec`] + [`query`] — a volcano-style [`Executor`] pipeline
//!   (scan → filter → project → aggregate/group-by) and the small
//!   `SELECT … [WHERE …] [GROUP BY …]` language `helios query`
//!   compiles onto it. The sweep summary is itself a plan over these
//!   executors ([`summarize_cells`]), so the aggregation math and the
//!   null-mean semantics exist exactly once.

pub mod exec;
pub mod query;
pub mod schema;
pub mod segment;

pub use exec::{
    collect, summarize_cells, Agg, AggregateExec, CmpOp, Executor, FilterExec, Literal, Predicate,
    ProjectExec, ScanExec,
};
pub use query::{parse_query, run_query, QueryOutput, QueryPlan};
pub use schema::{
    cell_from_row, row_from_cell, schema_names, summary_row_from_values, summary_row_values,
    Column, ColumnType, Row, SummaryAgg, SummaryColumn, Value, SUMMARY_AGGREGATES, SUMMARY_KEYS,
};
pub use segment::{
    is_store_bytes, read_store, recover_store, StoreHeader, StoreSalvage, StoreWriter,
    DEFAULT_SEGMENT_ROWS, STORE_MAGIC,
};
