//! The columnar segment file: append-friendly cell-row storage.
//!
//! A store file is an append-only binary file holding sweep cell rows
//! in columnar row groups. The layout is
//!
//! ```text
//! magic  "HELIOSC1"                                  (8 bytes)
//! header [len: u32][crc32: u32][StoreHeader JSON]    (checksummed)
//! group  [len: u32][crc32: u32][columnar payload]    (repeated)
//! ```
//!
//! with little-endian integers and IEEE CRC-32 (shared with the journal
//! codec) over each payload. A group payload is `[rows: u32]` followed
//! by one contiguous column of values per [`Column`], in schema order:
//! fixed-width columns are packed little-endian arrays, string columns
//! are a dictionary (`[entries: u32]` then length-prefixed UTF-8) plus
//! one `u32` code per row, and nullable string columns reserve code 0
//! for null. The header binds the file to one campaign (spec name +
//! digest + grid size), one shard geometry, and the writing schema, so
//! resume, merge, and query refuse foreign or stale files with typed
//! errors.
//!
//! Recovery is the journal's longest-valid-prefix salvage: a group that
//! fails length/CRC/decode checks starts the torn tail, and
//! [`recover_store`] truncates that tail in place so the file can be
//! appended to again. Duplicated cells keep their first occurrence.

use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use super::schema::{cell_from_row, row_from_cell, schema_names, Column, ColumnType, Row, Value};
use crate::campaign::journal::crc32;
use crate::campaign::sweep::{CellResult, ShardReport};
use crate::campaign::CampaignError;
use crate::EngineError;

/// File magic: identifies a helios columnar cell store, version 1.
pub const STORE_MAGIC: [u8; 8] = *b"HELIOSC1";

/// Rows buffered per columnar group before the writer flushes a
/// checksummed record.
pub const DEFAULT_SEGMENT_ROWS: usize = 256;

/// Upper bound on a single group payload; anything larger in the
/// length field is torn-tail garbage, not a record.
const MAX_RECORD_LEN: u32 = 16 * 1024 * 1024;

/// The checksummed first record: campaign identity, shard geometry,
/// and the column list the file was written with.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreHeader {
    /// Spec name, echoed for human consumption.
    pub spec_name: String,
    /// Digest of the canonical spec JSON (see `CampaignSpec::digest`).
    pub spec_digest: String,
    /// Cells in the full (unsharded) grid.
    pub total_cells: usize,
    /// This store's 1-based shard index.
    pub shard_index: usize,
    /// Shards in the partition.
    pub shard_count: usize,
    /// Column names in write order; must match the current schema.
    pub columns: Vec<String>,
}

/// Whether `bytes` begin with the store magic.
#[must_use]
pub fn is_store_bytes(bytes: &[u8]) -> bool {
    bytes.len() >= STORE_MAGIC.len() && bytes[..STORE_MAGIC.len()] == STORE_MAGIC
}

/// The salvageable state of a store file: header, the longest valid
/// group prefix decoded back to cells, and the torn tail size.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreSalvage {
    /// The validated header record.
    pub header: StoreHeader,
    /// Decoded rows in append order, first occurrence per cell.
    pub cells: Vec<CellResult>,
    /// Bytes of valid prefix (magic + header + intact groups).
    pub valid_bytes: u64,
    /// Bytes of torn tail after the valid prefix.
    pub dropped_bytes: u64,
}

impl StoreSalvage {
    /// The salvaged cells as a [`ShardReport`] — the bridge that lets
    /// `merge_shards` and `query` consume store files directly.
    #[must_use]
    pub fn to_shard_report(&self) -> ShardReport {
        let mut cells = self.cells.clone();
        cells.sort_by_key(|c| c.cell);
        ShardReport {
            spec_name: self.header.spec_name.clone(),
            spec_digest: self.header.spec_digest.clone(),
            total_cells: self.header.total_cells,
            shard_index: self.header.shard_index,
            shard_count: self.header.shard_count,
            cells,
        }
    }
}

fn io_err(path: &Path, what: &str, e: &std::io::Error) -> EngineError {
    EngineError::Config(format!("store {}: {what}: {e}", path.display()))
}

fn corrupt(path: &Path, offset: u64, detail: String) -> EngineError {
    CampaignError::CorruptResume {
        file: path.display().to_string(),
        offset,
        detail,
    }
    .into()
}

fn push_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn encode_wrong_type(col: Column, value: &Value) -> EngineError {
    EngineError::Config(format!(
        "store encode: column {:?} expected a {:?} value, got {value:?}",
        col.name(),
        col.column_type()
    ))
}

/// Encodes full-schema rows as one columnar group payload.
fn encode_group(rows: &[Row]) -> Result<Vec<u8>, EngineError> {
    let mut buf = Vec::new();
    push_u32(&mut buf, rows.len() as u32);
    for col in Column::ALL {
        let at = col.index();
        match col.column_type() {
            ColumnType::U64 => {
                for row in rows {
                    match &row[at] {
                        Value::U64(v) => buf.extend_from_slice(&v.to_le_bytes()),
                        other => return Err(encode_wrong_type(col, other)),
                    }
                }
            }
            ColumnType::U32 => {
                for row in rows {
                    match &row[at] {
                        Value::U32(v) => buf.extend_from_slice(&v.to_le_bytes()),
                        other => return Err(encode_wrong_type(col, other)),
                    }
                }
            }
            ColumnType::F64 => {
                for row in rows {
                    match &row[at] {
                        Value::F64(v) => buf.extend_from_slice(&v.to_bits().to_le_bytes()),
                        other => return Err(encode_wrong_type(col, other)),
                    }
                }
            }
            ColumnType::Bool => {
                for row in rows {
                    match &row[at] {
                        Value::Bool(v) => buf.push(u8::from(*v)),
                        other => return Err(encode_wrong_type(col, other)),
                    }
                }
            }
            ColumnType::Str | ColumnType::OptStr => {
                // Dictionary + per-row codes; OptStr reserves code 0
                // for null, so entry k lives at code k+1.
                let nullable = col.column_type() == ColumnType::OptStr;
                let mut dict: Vec<&str> = Vec::new();
                let mut codes: Vec<u32> = Vec::with_capacity(rows.len());
                for row in rows {
                    let code = match &row[at] {
                        Value::Str(s) => {
                            let entry = match dict.iter().position(|d| d == s) {
                                Some(at) => at,
                                None => {
                                    dict.push(s);
                                    dict.len() - 1
                                }
                            };
                            entry as u32 + u32::from(nullable)
                        }
                        Value::Null if nullable => 0,
                        other => return Err(encode_wrong_type(col, other)),
                    };
                    codes.push(code);
                }
                push_u32(&mut buf, dict.len() as u32);
                for entry in dict {
                    push_u32(&mut buf, entry.len() as u32);
                    buf.extend_from_slice(entry.as_bytes());
                }
                for code in codes {
                    push_u32(&mut buf, code);
                }
            }
        }
    }
    Ok(buf)
}

/// A forward-only cursor over a group payload; every take is
/// bounds-checked so torn or hostile bytes fail decode instead of
/// panicking.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.at.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let out = &self.bytes[self.at..end];
        self.at = end;
        Some(out)
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }
}

/// Decodes one columnar group payload back to full-schema rows.
/// `None` on any structural damage (the caller treats the record as
/// the start of the torn tail).
fn decode_group(payload: &[u8]) -> Option<Vec<Row>> {
    let mut cur = Cursor {
        bytes: payload,
        at: 0,
    };
    let rows = cur.u32()? as usize;
    if rows > MAX_RECORD_LEN as usize {
        return None;
    }
    // Not `vec![Vec::with_capacity(..); rows]`: cloning an empty Vec
    // drops its capacity, which would cost several reallocations per
    // row while the 25 columns push in.
    let mut out: Vec<Row> = (0..rows)
        .map(|_| Vec::with_capacity(Column::ALL.len()))
        .collect();
    for col in Column::ALL {
        match col.column_type() {
            ColumnType::U64 => {
                for row in out.iter_mut() {
                    let v = u64::from_le_bytes(cur.take(8)?.try_into().ok()?);
                    row.push(Value::U64(v));
                }
            }
            ColumnType::U32 => {
                for row in out.iter_mut() {
                    let v = u32::from_le_bytes(cur.take(4)?.try_into().ok()?);
                    row.push(Value::U32(v));
                }
            }
            ColumnType::F64 => {
                for row in out.iter_mut() {
                    let v = f64::from_bits(u64::from_le_bytes(cur.take(8)?.try_into().ok()?));
                    row.push(Value::F64(v));
                }
            }
            ColumnType::Bool => {
                for row in out.iter_mut() {
                    let v = match cur.take(1)? {
                        [0] => false,
                        [1] => true,
                        _ => return None,
                    };
                    row.push(Value::Bool(v));
                }
            }
            ColumnType::Str | ColumnType::OptStr => {
                let nullable = col.column_type() == ColumnType::OptStr;
                let entries = cur.u32()? as usize;
                if entries > payload.len() {
                    return None;
                }
                let mut dict: Vec<String> = Vec::with_capacity(entries);
                for _ in 0..entries {
                    let len = cur.u32()? as usize;
                    let text = std::str::from_utf8(cur.take(len)?).ok()?;
                    dict.push(text.to_owned());
                }
                for row in out.iter_mut() {
                    let code = cur.u32()? as usize;
                    let value = if nullable {
                        match code {
                            0 => Value::Null,
                            c => Value::Str(dict.get(c - 1)?.clone()),
                        }
                    } else {
                        Value::Str(dict.get(code)?.clone())
                    };
                    row.push(value);
                }
            }
        }
    }
    // A valid group consumes its payload exactly; trailing bytes mean
    // the record was not written by this codec.
    if cur.at != payload.len() {
        return None;
    }
    Some(out)
}

/// Reads and salvages a store file without modifying it: the longest
/// valid group prefix plus the size of the torn tail.
///
/// # Errors
///
/// Returns [`CampaignError::CorruptResume`] when the file is not a
/// store (bad magic), its header record is torn, or the header's
/// column list disagrees with the current schema — there is nothing to
/// salvage without a trusted header — and I/O errors as
/// [`EngineError::Config`].
pub fn read_store(path: &Path) -> Result<StoreSalvage, EngineError> {
    let bytes = std::fs::read(path).map_err(|e| io_err(path, "read", &e))?;
    salvage_store_bytes(path, &bytes)
}

/// Salvages a store file **in place**: scans like [`read_store`], then
/// truncates the torn tail (fsync'd) so the file ends on a group
/// boundary and can be appended to again.
///
/// # Errors
///
/// As [`read_store`], plus I/O errors from the truncation itself.
pub fn recover_store(path: &Path) -> Result<StoreSalvage, EngineError> {
    let salvage = read_store(path)?;
    if salvage.dropped_bytes > 0 {
        let file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| io_err(path, "open for truncate", &e))?;
        file.set_len(salvage.valid_bytes)
            .map_err(|e| io_err(path, "truncate torn tail", &e))?;
        file.sync_all()
            .map_err(|e| io_err(path, "fsync after truncate", &e))?;
    }
    Ok(salvage)
}

fn salvage_store_bytes(path: &Path, bytes: &[u8]) -> Result<StoreSalvage, EngineError> {
    if !is_store_bytes(bytes) {
        return Err(corrupt(
            path,
            0,
            "not a helios cell store (bad magic); point --store at a store \
             file, or delete the file to start fresh"
                .into(),
        ));
    }
    let mut at = STORE_MAGIC.len();

    // Header record: [len][crc][payload].
    let torn_header = |at: usize| {
        corrupt(
            path,
            at as u64,
            "store header record is torn or corrupt; the file cannot be \
             trusted — delete it to start fresh"
                .into(),
        )
    };
    if bytes.len() < at + 8 {
        return Err(torn_header(at));
    }
    let len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().expect("4 bytes"));
    if len as u32 > MAX_RECORD_LEN || bytes.len() < at + 8 + len {
        return Err(torn_header(at));
    }
    let payload = &bytes[at + 8..at + 8 + len];
    if crc32(payload) != crc {
        return Err(torn_header(at));
    }
    let header: StoreHeader = match std::str::from_utf8(payload)
        .ok()
        .and_then(|s| serde_json::from_str(s).ok())
    {
        Some(h) => h,
        None => return Err(torn_header(at)),
    };
    if header.columns != schema_names() {
        return Err(corrupt(
            path,
            at as u64,
            "store column list does not match this build's schema; the file \
             was written by a different helios version — delete the file to \
             start fresh"
                .into(),
        ));
    }
    at += 8 + len;

    // Row groups: longest valid prefix; the first bad record starts
    // the torn tail.
    let mut cells: Vec<CellResult> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    let mut valid = at;
    'groups: while at + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().expect("4 bytes"));
        if len as u32 > MAX_RECORD_LEN || bytes.len() < at + 8 + len {
            break;
        }
        let payload = &bytes[at + 8..at + 8 + len];
        if crc32(payload) != crc {
            break;
        }
        let Some(rows) = decode_group(payload) else {
            break;
        };
        for row in &rows {
            let Ok(cell) = cell_from_row(row) else {
                break 'groups;
            };
            // Deterministic cells make duplicates identical; keep the
            // first occurrence so salvage is order-stable. The seen-set
            // keeps salvage O(rows): a linear scan here is quadratic
            // and dominates large-store reads.
            if seen.insert(cell.cell) {
                cells.push(cell);
            }
        }
        at += 8 + len;
        valid = at;
    }

    Ok(StoreSalvage {
        header,
        cells,
        valid_bytes: valid as u64,
        dropped_bytes: (bytes.len() - valid) as u64,
    })
}

/// Appends cell rows to a store file as checksummed columnar groups.
///
/// Rows are buffered and flushed [`DEFAULT_SEGMENT_ROWS`] at a time;
/// call [`StoreWriter::flush`] before dropping the writer or the
/// buffered tail is lost (the driver always does, even on error paths,
/// so a crash loses at most one unflushed group — never a row that was
/// reported durable).
#[derive(Debug)]
pub struct StoreWriter {
    file: File,
    path: PathBuf,
    pending: Vec<Row>,
}

impl StoreWriter {
    /// Creates (truncating) a store file and durably writes
    /// magic+header; the header's column list is always the current
    /// schema.
    ///
    /// # Errors
    ///
    /// I/O failures as [`EngineError::Config`].
    pub fn create(path: &Path, header: &StoreHeader) -> Result<StoreWriter, EngineError> {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| io_err(path, "create", &e))?;
        let payload = serde_json::to_string(header)
            .map_err(|e| EngineError::Config(format!("serialize store header: {e}")))?;
        let payload = payload.as_bytes();
        let mut buf = Vec::with_capacity(STORE_MAGIC.len() + 8 + payload.len());
        buf.extend_from_slice(&STORE_MAGIC);
        push_u32(&mut buf, payload.len() as u32);
        push_u32(&mut buf, crc32(payload));
        buf.extend_from_slice(payload);
        file.write_all(&buf)
            .map_err(|e| io_err(path, "write header", &e))?;
        file.sync_data()
            .map_err(|e| io_err(path, "fsync header", &e))?;
        Ok(StoreWriter {
            file,
            path: path.to_path_buf(),
            pending: Vec::new(),
        })
    }

    /// Opens an existing store for appending. The caller is expected
    /// to have validated/salvaged it first ([`recover_store`]).
    ///
    /// # Errors
    ///
    /// I/O failures as [`EngineError::Config`].
    pub fn open_append(path: &Path) -> Result<StoreWriter, EngineError> {
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| io_err(path, "open for append", &e))?;
        Ok(StoreWriter {
            file,
            path: path.to_path_buf(),
            pending: Vec::new(),
        })
    }

    /// Buffers one finished cell; flushes a durable columnar group when
    /// the buffer reaches [`DEFAULT_SEGMENT_ROWS`].
    ///
    /// # Errors
    ///
    /// I/O failures from the flush as [`EngineError::Config`].
    pub fn append_cell(&mut self, cell: &CellResult) -> Result<(), EngineError> {
        self.pending.push(row_from_cell(cell));
        if self.pending.len() >= DEFAULT_SEGMENT_ROWS {
            self.flush()?;
        }
        Ok(())
    }

    /// Writes any buffered rows as one checksummed, fsync'd group; a
    /// no-op when the buffer is empty.
    ///
    /// # Errors
    ///
    /// I/O failures as [`EngineError::Config`].
    pub fn flush(&mut self) -> Result<(), EngineError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let payload = encode_group(&self.pending)?;
        if payload.len() as u64 > u64::from(MAX_RECORD_LEN) {
            return Err(EngineError::Config(format!(
                "store group payload of {} bytes exceeds the {MAX_RECORD_LEN}-byte cap",
                payload.len()
            )));
        }
        let mut buf = Vec::with_capacity(8 + payload.len());
        push_u32(&mut buf, payload.len() as u32);
        push_u32(&mut buf, crc32(&payload));
        buf.extend_from_slice(&payload);
        self.file
            .write_all(&buf)
            .map_err(|e| io_err(&self.path, "append group", &e))?;
        self.file
            .sync_data()
            .map_err(|e| io_err(&self.path, "fsync group", &e))?;
        self.pending.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("helios-store-test-{}-{name}", std::process::id()));
        p
    }

    fn header() -> StoreHeader {
        StoreHeader {
            spec_name: "t".into(),
            spec_digest: "d".into(),
            total_cells: 4,
            shard_index: 1,
            shard_count: 1,
            columns: schema_names(),
        }
    }

    fn cell(i: usize) -> CellResult {
        CellResult {
            cell: i,
            family: "montage".into(),
            platform: "workstation".into(),
            scheduler: "heft".into(),
            seed: i as u64,
            makespan_secs: 1.5 + i as f64,
            slr: 1.0,
            energy_j: 2.0,
            transfers: 1,
            transfer_bytes: 10.0,
            failures: 0,
            retries: 0,
            completed: i.is_multiple_of(2),
            wasted_work_secs: 0.0,
            recovery_overhead_secs: 0.0,
            makespan_degradation: 0.0,
            reroutes: 0,
            partition_downtime_secs: 0.0,
            rematerialized_tasks: 0,
            rematerialized_bytes: 0.0,
            incomplete_reason: if i.is_multiple_of(2) {
                None
            } else {
                Some("retries_exhausted".into())
            },
            capacity_secs: 0.0,
            preemptions: 0,
            drain_migrated_tasks: 0,
            join_utilization: 0.0,
        }
    }

    #[test]
    fn round_trips_groups_and_appends() {
        let path = tmp("roundtrip.store");
        let mut w = StoreWriter::create(&path, &header()).unwrap();
        w.append_cell(&cell(0)).unwrap();
        w.append_cell(&cell(1)).unwrap();
        w.flush().unwrap();
        drop(w);

        let s = read_store(&path).unwrap();
        assert_eq!(s.header, header());
        assert_eq!(s.cells, vec![cell(0), cell(1)]);
        assert_eq!(s.dropped_bytes, 0);

        // Append across a writer reopen, like a resumed shard.
        let mut w = StoreWriter::open_append(&path).unwrap();
        w.append_cell(&cell(2)).unwrap();
        w.flush().unwrap();
        drop(w);
        let s = read_store(&path).unwrap();
        assert_eq!(s.cells, vec![cell(0), cell(1), cell(2)]);
        assert_eq!(s.to_shard_report().cells.len(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unflushed_rows_stay_buffered_until_flush() {
        let path = tmp("buffered.store");
        let mut w = StoreWriter::create(&path, &header()).unwrap();
        w.append_cell(&cell(0)).unwrap();
        // Not flushed: on disk there is only the header so far.
        let s = read_store(&path).unwrap();
        assert!(s.cells.is_empty());
        w.flush().unwrap();
        drop(w);
        assert_eq!(read_store(&path).unwrap().cells, vec![cell(0)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_salvaged_and_truncated() {
        let path = tmp("torn.store");
        let mut w = StoreWriter::create(&path, &header()).unwrap();
        w.append_cell(&cell(0)).unwrap();
        w.flush().unwrap();
        drop(w);
        let intact = std::fs::metadata(&path).unwrap().len();
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[200, 0, 0, 0, 1, 2, 3]).unwrap();
        drop(f);

        let s = recover_store(&path).unwrap();
        assert_eq!(s.cells, vec![cell(0)]);
        assert_eq!(s.valid_bytes, intact);
        assert_eq!(s.dropped_bytes, 7);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), intact);
        let mut w = StoreWriter::open_append(&path).unwrap();
        w.append_cell(&cell(1)).unwrap();
        w.flush().unwrap();
        drop(w);
        assert_eq!(read_store(&path).unwrap().cells.len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupted_crc_starts_the_torn_tail() {
        let path = tmp("crc.store");
        let mut w = StoreWriter::create(&path, &header()).unwrap();
        w.append_cell(&cell(0)).unwrap();
        w.flush().unwrap();
        let boundary = std::fs::metadata(&path).unwrap().len();
        w.append_cell(&cell(1)).unwrap();
        w.flush().unwrap();
        drop(w);
        let mut bytes = std::fs::read(&path).unwrap();
        let at = bytes.len() - 3;
        bytes[at] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let s = read_store(&path).unwrap();
        assert_eq!(s.cells, vec![cell(0)], "the CRC-failing group is dropped");
        assert_eq!(s.valid_bytes, boundary);
        assert!(s.dropped_bytes > 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_magic_and_foreign_schema_are_corrupt_resume() {
        let path = tmp("magic.store");
        std::fs::write(&path, b"{\"not\": \"a store\"}").unwrap();
        let err = read_store(&path).unwrap_err().to_string();
        assert!(err.contains("bad magic"), "{err}");
        assert!(err.contains("corrupt resume"), "{err}");

        // A header with a foreign column list is refused outright.
        let mut h = header();
        h.columns = vec!["makespan_secs".into()];
        let w = StoreWriter::create(&path, &h).unwrap();
        drop(w);
        let err = read_store(&path).unwrap_err().to_string();
        assert!(err.contains("different helios version"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn groups_autoflush_at_the_segment_row_cap() {
        let path = tmp("autoflush.store");
        let mut w = StoreWriter::create(&path, &header()).unwrap();
        for i in 0..DEFAULT_SEGMENT_ROWS {
            w.append_cell(&cell(i)).unwrap();
        }
        // The cap flushed without an explicit flush() call.
        let s = read_store(&path).unwrap();
        assert_eq!(s.cells.len(), DEFAULT_SEGMENT_ROWS);
        w.flush().unwrap();
        drop(w);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn dictionary_codes_handle_nulls_and_repeats() {
        let rows: Vec<Row> = (0..5).map(|i| row_from_cell(&cell(i))).collect();
        let payload = encode_group(&rows).unwrap();
        let back = decode_group(&payload).unwrap();
        assert_eq!(back, rows);
        // Truncated payloads never decode.
        for cut in [1, payload.len() / 2, payload.len() - 1] {
            assert!(decode_group(&payload[..cut]).is_none(), "cut {cut}");
        }
        // Trailing garbage is rejected (exact-consumption check).
        let mut padded = payload.clone();
        padded.push(0);
        assert!(decode_group(&padded).is_none());
    }
}
