//! The `helios query` expression language.
//!
//! A tiny SQL subset compiled onto the executor pipeline:
//!
//! ```text
//! SELECT proj [, proj]*
//!   [WHERE column op literal [AND column op literal]*]
//!   [GROUP BY column [, column]*]
//! ```
//!
//! where a projection is `*`, a column name, or an aggregate —
//! `count(*)`, `sum(col)`, `avg(col)`, `min(col)`, `max(col)`,
//! `avg_completed(col)` (the sweep's completed-only mean, null when no
//! cell completed) or `frac(col)` (fraction of rows where a boolean
//! column is true) — optionally `AS alias`. Keywords and function
//! names are case-insensitive; column names are the exact
//! [`Column`] schema names; strings are single-quoted; `null`
//! compares only with `=`/`!=`.
//!
//! Every parse or planning failure is a typed
//! [`CampaignError::InvalidQuery`] naming the offending token, so the
//! CLI and the fuzz corruption suite can assert on *which* token broke
//! rather than string-matching whole messages.

use crate::campaign::sweep::CellResult;
use crate::campaign::CampaignError;
use crate::EngineError;

use super::exec::{
    collect, Agg, AggregateExec, CmpOp, Executor, FilterExec, Literal, Predicate, ProjectExec,
    ScanExec,
};
use super::schema::{schema_names, Column, ColumnType, Row};

fn err(token: &str, detail: impl Into<String>) -> EngineError {
    CampaignError::InvalidQuery {
        token: token.into(),
        detail: detail.into(),
    }
    .into()
}

fn legal_columns() -> String {
    Column::ALL
        .iter()
        .map(|c| c.name())
        .collect::<Vec<_>>()
        .join(", ")
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Word(String),
    Num(f64, String),
    Str(String),
    Punct(&'static str),
}

impl Token {
    fn text(&self) -> String {
        match self {
            Token::Word(w) => w.clone(),
            Token::Num(_, raw) => raw.clone(),
            Token::Str(s) => format!("'{s}'"),
            Token::Punct(p) => (*p).to_string(),
        }
    }
}

fn tokenize(expr: &str) -> Result<Vec<Token>, EngineError> {
    let bytes = expr.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b.is_ascii_whitespace() {
            i += 1;
        } else if b == b'\'' {
            let start = i + 1;
            let Some(end) = expr[start..].find('\'').map(|o| start + o) else {
                return Err(err(&expr[i..], "unterminated string literal"));
            };
            out.push(Token::Str(expr[start..end].to_owned()));
            i = end + 1;
        } else if b.is_ascii_alphabetic() || b == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            out.push(Token::Word(expr[start..i].to_owned()));
        } else if b.is_ascii_digit()
            || (b == b'-' && bytes.get(i + 1).is_some_and(u8::is_ascii_digit))
        {
            let start = i;
            i += 1;
            while i < bytes.len()
                && (bytes[i].is_ascii_digit()
                    || bytes[i] == b'.'
                    || bytes[i] == b'e'
                    || bytes[i] == b'E'
                    || ((bytes[i] == b'+' || bytes[i] == b'-')
                        && matches!(bytes[i - 1], b'e' | b'E')))
            {
                i += 1;
            }
            let raw = &expr[start..i];
            let Ok(v) = raw.parse::<f64>() else {
                return Err(err(raw, "not a numeric literal"));
            };
            out.push(Token::Num(v, raw.to_owned()));
        } else {
            let two = expr.get(i..i + 2);
            let punct = match (b, two) {
                (_, Some("!=")) => Some("!="),
                (_, Some("<=")) => Some("<="),
                (_, Some(">=")) => Some(">="),
                (b'=', _) => Some("="),
                (b'<', _) => Some("<"),
                (b'>', _) => Some(">"),
                (b'(', _) => Some("("),
                (b')', _) => Some(")"),
                (b',', _) => Some(","),
                (b'*', _) => Some("*"),
                _ => None,
            };
            let Some(punct) = punct else {
                return Err(err(
                    &expr[i..i + 1],
                    "unexpected character; expected a column, keyword, operator, or literal",
                ));
            };
            out.push(Token::Punct(punct));
            i += punct.len();
        }
    }
    Ok(out)
}

/// An aggregate function name in a projection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
    AvgCompleted,
    Frac,
}

impl AggFunc {
    fn by_name(name: &str) -> Option<AggFunc> {
        let lower = name.to_ascii_lowercase();
        match lower.as_str() {
            "count" => Some(AggFunc::Count),
            "sum" => Some(AggFunc::Sum),
            "avg" => Some(AggFunc::Avg),
            "min" => Some(AggFunc::Min),
            "max" => Some(AggFunc::Max),
            "avg_completed" => Some(AggFunc::AvgCompleted),
            "frac" => Some(AggFunc::Frac),
            _ => None,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Proj {
    Star,
    Col {
        col: Column,
        alias: Option<String>,
    },
    Agg {
        func: AggFunc,
        arg: Option<Column>,
        alias: Option<String>,
    },
}

impl Proj {
    fn output_name(&self) -> String {
        match self {
            Proj::Star => "*".into(),
            Proj::Col { col, alias } => alias.clone().unwrap_or_else(|| col.name().to_owned()),
            Proj::Agg { func, arg, alias } => alias.clone().unwrap_or_else(|| {
                let func = match func {
                    AggFunc::Count => "count",
                    AggFunc::Sum => "sum",
                    AggFunc::Avg => "avg",
                    AggFunc::Min => "min",
                    AggFunc::Max => "max",
                    AggFunc::AvgCompleted => "avg_completed",
                    AggFunc::Frac => "frac",
                };
                match arg {
                    Some(col) => format!("{func}({})", col.name()),
                    None => format!("{func}(*)"),
                }
            }),
        }
    }
}

/// A parsed, validated query, ready to plan onto the executors.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPlan {
    projections: Vec<Proj>,
    predicates: Vec<Predicate>,
    group_by: Vec<Column>,
}

struct Parser {
    tokens: Vec<Token>,
    at: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.at)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.at).cloned();
        if t.is_some() {
            self.at += 1;
        }
        t
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Word(w)) if w.eq_ignore_ascii_case(kw))
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), EngineError> {
        if self.at_keyword(kw) {
            self.at += 1;
            Ok(())
        } else {
            let token = self.peek().map(Token::text).unwrap_or_default();
            Err(err(&token, format!("expected the keyword {kw}")))
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), EngineError> {
        match self.peek() {
            Some(Token::Punct(q)) if *q == p => {
                self.at += 1;
                Ok(())
            }
            other => {
                let token = other.map(Token::text).unwrap_or_default();
                Err(err(&token, format!("expected {p:?}")))
            }
        }
    }

    fn column(&mut self) -> Result<Column, EngineError> {
        match self.bump() {
            Some(Token::Word(w)) => Column::by_name(&w).ok_or_else(|| {
                err(
                    &w,
                    format!("unknown column; legal columns are {}", legal_columns()),
                )
            }),
            other => {
                let token = other.map(|t| t.text()).unwrap_or_default();
                Err(err(&token, "expected a column name"))
            }
        }
    }

    fn alias(&mut self) -> Result<Option<String>, EngineError> {
        if !self.at_keyword("as") {
            return Ok(None);
        }
        self.at += 1;
        match self.bump() {
            Some(Token::Word(w)) => Ok(Some(w)),
            other => {
                let token = other.map(|t| t.text()).unwrap_or_default();
                Err(err(&token, "expected an alias name after AS"))
            }
        }
    }

    fn projection(&mut self) -> Result<Proj, EngineError> {
        match self.peek().cloned() {
            Some(Token::Punct("*")) => {
                self.at += 1;
                Ok(Proj::Star)
            }
            Some(Token::Word(w)) => {
                // A word followed by `(` is an aggregate call; anything
                // else is a column reference.
                if matches!(self.tokens.get(self.at + 1), Some(Token::Punct("("))) {
                    let Some(func) = AggFunc::by_name(&w) else {
                        return Err(err(
                            &w,
                            "unknown aggregate; legal aggregates are count, sum, avg, \
                             min, max, avg_completed, frac",
                        ));
                    };
                    self.at += 2;
                    let arg = if func == AggFunc::Count {
                        match self.peek() {
                            Some(Token::Punct("*")) => self.at += 1,
                            other => {
                                let token = other.map(Token::text).unwrap_or_default();
                                return Err(err(&token, "count takes exactly (*)"));
                            }
                        }
                        None
                    } else {
                        Some(self.column()?)
                    };
                    self.expect_punct(")")?;
                    if let Some(col) = arg {
                        let numeric = matches!(
                            col.column_type(),
                            ColumnType::U64 | ColumnType::U32 | ColumnType::F64
                        );
                        if func == AggFunc::Frac {
                            if col.column_type() != ColumnType::Bool {
                                return Err(err(
                                    col.name(),
                                    "frac needs a boolean column (completed)",
                                ));
                            }
                        } else if !numeric {
                            return Err(err(
                                col.name(),
                                format!(
                                    "aggregates need a numeric column, and {:?} is {:?}",
                                    col.name(),
                                    col.column_type()
                                ),
                            ));
                        }
                    }
                    let alias = self.alias()?;
                    Ok(Proj::Agg { func, arg, alias })
                } else {
                    let col = self.column()?;
                    let alias = self.alias()?;
                    Ok(Proj::Col { col, alias })
                }
            }
            other => {
                let token = other.map(|t| t.text()).unwrap_or_default();
                Err(err(
                    &token,
                    "expected a projection: *, a column name, or an aggregate",
                ))
            }
        }
    }

    fn literal(&mut self) -> Result<(Literal, String), EngineError> {
        match self.bump() {
            Some(Token::Num(v, raw)) => Ok((Literal::Num(v), raw)),
            Some(Token::Str(s)) => Ok((Literal::Str(s.clone()), format!("'{s}'"))),
            Some(Token::Word(w)) if w.eq_ignore_ascii_case("true") => Ok((Literal::Bool(true), w)),
            Some(Token::Word(w)) if w.eq_ignore_ascii_case("false") => {
                Ok((Literal::Bool(false), w))
            }
            Some(Token::Word(w)) if w.eq_ignore_ascii_case("null") => Ok((Literal::Null, w)),
            other => {
                let token = other.map(|t| t.text()).unwrap_or_default();
                Err(err(
                    &token,
                    "expected a literal: a number, 'string', true, false, or null",
                ))
            }
        }
    }

    fn predicate(&mut self) -> Result<Predicate, EngineError> {
        let col = self.column()?;
        let op = match self.bump() {
            Some(Token::Punct("=")) => CmpOp::Eq,
            Some(Token::Punct("!=")) => CmpOp::Ne,
            Some(Token::Punct("<")) => CmpOp::Lt,
            Some(Token::Punct("<=")) => CmpOp::Le,
            Some(Token::Punct(">")) => CmpOp::Gt,
            Some(Token::Punct(">=")) => CmpOp::Ge,
            other => {
                let token = other.map(|t| t.text()).unwrap_or_default();
                return Err(err(&token, "expected a comparison: =, !=, <, <=, >, >="));
            }
        };
        let (literal, raw) = self.literal()?;
        let numeric = matches!(
            col.column_type(),
            ColumnType::U64 | ColumnType::U32 | ColumnType::F64
        );
        let ok = match &literal {
            Literal::Num(_) => numeric,
            Literal::Str(_) => matches!(col.column_type(), ColumnType::Str | ColumnType::OptStr),
            Literal::Bool(_) => col.column_type() == ColumnType::Bool,
            Literal::Null => col.column_type() == ColumnType::OptStr,
        };
        if !ok {
            return Err(err(
                &raw,
                format!(
                    "literal does not match column {:?} of type {:?}",
                    col.name(),
                    col.column_type()
                ),
            ));
        }
        if !numeric && !matches!(op, CmpOp::Eq | CmpOp::Ne) {
            return Err(err(
                &raw,
                format!("column {:?} supports only = and !=", col.name()),
            ));
        }
        Ok(Predicate {
            col: col.index(),
            op,
            literal,
        })
    }
}

/// Parses and validates a query expression.
///
/// # Errors
///
/// [`CampaignError::InvalidQuery`] naming the offending token for
/// every syntax or planning failure.
pub fn parse_query(expr: &str) -> Result<QueryPlan, EngineError> {
    if expr.trim().is_empty() {
        return Err(err(
            "",
            "empty query; expected SELECT projections [WHERE ...] [GROUP BY ...]",
        ));
    }
    let mut p = Parser {
        tokens: tokenize(expr)?,
        at: 0,
    };
    p.expect_keyword("select")?;
    let mut projections = vec![p.projection()?];
    while matches!(p.peek(), Some(Token::Punct(","))) {
        p.at += 1;
        projections.push(p.projection()?);
    }

    let mut predicates = Vec::new();
    if p.at_keyword("where") {
        p.at += 1;
        predicates.push(p.predicate()?);
        while p.at_keyword("and") {
            p.at += 1;
            predicates.push(p.predicate()?);
        }
    }

    let mut group_by = Vec::new();
    if p.at_keyword("group") {
        p.at += 1;
        p.expect_keyword("by")?;
        group_by.push(p.column()?);
        while matches!(p.peek(), Some(Token::Punct(","))) {
            p.at += 1;
            group_by.push(p.column()?);
        }
    }

    if let Some(extra) = p.peek() {
        return Err(err(
            &extra.text(),
            "unexpected trailing input after the query",
        ));
    }

    // Shape checks: * stands alone; plain columns and aggregates only
    // mix under GROUP BY, and grouped output may only name group keys.
    let has_star = projections.contains(&Proj::Star);
    let has_agg = projections.iter().any(|p| matches!(p, Proj::Agg { .. }));
    if has_star && (projections.len() > 1 || !group_by.is_empty()) {
        return Err(err("*", "SELECT * stands alone and cannot be grouped"));
    }
    for proj in &projections {
        if let Proj::Col { col, .. } = proj {
            if !group_by.is_empty() && !group_by.contains(col) {
                return Err(err(
                    col.name(),
                    "selected column must appear in GROUP BY or inside an aggregate",
                ));
            }
            if group_by.is_empty() && has_agg {
                return Err(err(
                    col.name(),
                    "plain column cannot mix with aggregates without GROUP BY",
                ));
            }
        }
    }
    Ok(QueryPlan {
        projections,
        predicates,
        group_by,
    })
}

/// A query result: output column names plus the result rows.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutput {
    /// Output column names, in SELECT order.
    pub schema: Vec<String>,
    /// Result rows.
    pub rows: Vec<Row>,
}

fn to_agg(func: AggFunc, arg: Option<Column>) -> Agg {
    match (func, arg) {
        (AggFunc::Count, _) => Agg::CountStar,
        (AggFunc::Sum, Some(c)) => Agg::Sum(c.index()),
        (AggFunc::Avg, Some(c)) => Agg::Avg(c.index()),
        (AggFunc::Min, Some(c)) => Agg::Min(c.index()),
        (AggFunc::Max, Some(c)) => Agg::Max(c.index()),
        (AggFunc::AvgCompleted, Some(c)) => Agg::AvgCompleted {
            metric: c.index(),
            completed: Column::Completed.index(),
        },
        (AggFunc::Frac, Some(c)) => Agg::CompletedFrac(c.index()),
        // The parser never emits a non-count aggregate without an arg.
        (_, None) => Agg::CountStar,
    }
}

/// Compiles `expr` onto the executor pipeline and runs it over
/// `cells`. Rows are scanned in cell-index order regardless of input
/// order, so results are deterministic across shard layouts.
///
/// # Errors
///
/// [`CampaignError::InvalidQuery`] for parse/plan failures; plan
/// execution over in-memory cells cannot fail.
pub fn run_query(expr: &str, cells: &[CellResult]) -> Result<QueryOutput, EngineError> {
    let plan = parse_query(expr)?;
    let mut sorted: Vec<CellResult> = cells.to_vec();
    sorted.sort_by_key(|c| c.cell);

    let scan = ScanExec::over_cells(&sorted);
    let mut node: Box<dyn Executor> = Box::new(scan);
    if !plan.predicates.is_empty() {
        node = Box::new(FilterExec::new(node, plan.predicates.clone()));
    }

    let has_agg = plan
        .projections
        .iter()
        .any(|p| matches!(p, Proj::Agg { .. }));
    let mut exec: Box<dyn Executor> = if has_agg {
        let keys: Vec<usize> = plan.group_by.iter().map(|c| c.index()).collect();
        let mut agg_list: Vec<Agg> = Vec::new();
        let mut names: Vec<String> = plan.group_by.iter().map(|c| c.name().to_owned()).collect();
        let mut indices: Vec<usize> = Vec::new();
        let mut out_names: Vec<String> = Vec::new();
        for proj in &plan.projections {
            match proj {
                Proj::Col { col, .. } => {
                    let at = plan
                        .group_by
                        .iter()
                        .position(|g| g == col)
                        .expect("validated: selected column is a group key");
                    indices.push(at);
                    out_names.push(proj.output_name());
                }
                Proj::Agg { func, arg, .. } => {
                    indices.push(keys.len() + agg_list.len());
                    agg_list.push(to_agg(*func, *arg));
                    out_names.push(proj.output_name());
                }
                Proj::Star => unreachable!("validated: * never reaches an aggregate plan"),
            }
        }
        names.extend(out_names.iter().cloned());
        let agg = AggregateExec::new(node, keys, agg_list, names);
        Box::new(ProjectExec::new(Box::new(agg), indices, out_names))
    } else if plan.projections == [Proj::Star] {
        // SELECT *: the full schema passes through unchanged.
        node
    } else {
        let mut indices = Vec::new();
        let mut out_names = Vec::new();
        for proj in &plan.projections {
            if let Proj::Col { col, .. } = proj {
                indices.push(col.index());
                out_names.push(proj.output_name());
            }
        }
        Box::new(ProjectExec::new(node, indices, out_names))
    };

    let schema = if plan.projections == [Proj::Star] {
        schema_names()
    } else {
        exec.schema().to_vec()
    };
    let rows = collect(exec.as_mut())?;
    Ok(QueryOutput { schema, rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::schema::Value;

    fn cell(i: usize, scheduler: &str, completed: bool, makespan: f64) -> CellResult {
        CellResult {
            cell: i,
            family: "montage".into(),
            platform: "workstation".into(),
            scheduler: scheduler.into(),
            seed: i as u64,
            makespan_secs: makespan,
            slr: 1.0,
            energy_j: 2.0,
            transfers: 1,
            transfer_bytes: 10.0,
            failures: 0,
            retries: 0,
            completed,
            wasted_work_secs: 0.0,
            recovery_overhead_secs: 0.0,
            makespan_degradation: 0.0,
            reroutes: 0,
            partition_downtime_secs: 0.0,
            rematerialized_tasks: 0,
            rematerialized_bytes: 0.0,
            incomplete_reason: if completed {
                None
            } else {
                Some("lost_workload".into())
            },
            capacity_secs: 0.0,
            preemptions: 0,
            drain_migrated_tasks: 0,
            join_utilization: 0.0,
        }
    }

    fn cells() -> Vec<CellResult> {
        vec![
            cell(0, "heft", true, 4.0),
            cell(1, "olb", true, 9.0),
            cell(2, "heft", true, 6.0),
            cell(3, "olb", false, 1.0),
        ]
    }

    fn invalid_token(expr: &str) -> String {
        match run_query(expr, &cells()).unwrap_err() {
            EngineError::Campaign(CampaignError::InvalidQuery { token, .. }) => token,
            other => panic!("expected InvalidQuery, got {other:?}"),
        }
    }

    #[test]
    fn select_star_returns_every_row_in_cell_order() {
        let shuffled: Vec<CellResult> = cells().into_iter().rev().collect();
        let out = run_query("SELECT *", &shuffled).unwrap();
        assert_eq!(out.schema, schema_names());
        assert_eq!(out.rows.len(), 4);
        assert_eq!(out.rows[0][Column::Cell.index()], Value::U64(0));
        assert_eq!(out.rows[3][Column::Cell.index()], Value::U64(3));
    }

    #[test]
    fn where_filters_and_projects() {
        let out = run_query(
            "SELECT cell, makespan_secs WHERE scheduler = 'heft' AND makespan_secs > 5",
            &cells(),
        )
        .unwrap();
        assert_eq!(out.schema, vec!["cell".to_owned(), "makespan_secs".into()]);
        assert_eq!(out.rows, vec![vec![Value::U64(2), Value::F64(6.0)]]);
    }

    #[test]
    fn group_by_matches_summary_semantics() {
        let out = run_query(
            "SELECT scheduler, count(*) AS cells, avg_completed(makespan_secs), \
             frac(completed) GROUP BY scheduler",
            &cells(),
        )
        .unwrap();
        assert_eq!(
            out.schema,
            vec![
                "scheduler".to_owned(),
                "cells".into(),
                "avg_completed(makespan_secs)".into(),
                "frac(completed)".into(),
            ]
        );
        assert_eq!(
            out.rows,
            vec![
                vec![
                    Value::Str("heft".into()),
                    Value::U64(2),
                    Value::F64(5.0),
                    Value::F64(1.0),
                ],
                vec![
                    Value::Str("olb".into()),
                    Value::U64(2),
                    Value::F64(9.0),
                    Value::F64(0.5),
                ],
            ]
        );
    }

    #[test]
    fn global_aggregates_need_no_group_by() {
        let out = run_query(
            "SELECT count(*), min(makespan_secs), max(makespan_secs)",
            &cells(),
        )
        .unwrap();
        assert_eq!(
            out.rows,
            vec![vec![Value::U64(4), Value::F64(1.0), Value::F64(9.0)]]
        );
    }

    #[test]
    fn null_literals_filter_incomplete_reason() {
        let out = run_query("SELECT cell WHERE incomplete_reason != null", &cells()).unwrap();
        assert_eq!(out.rows, vec![vec![Value::U64(3)]]);
    }

    #[test]
    fn select_order_is_preserved_over_group_keys() {
        let out = run_query("SELECT count(*), scheduler GROUP BY scheduler", &cells()).unwrap();
        assert_eq!(out.schema, vec!["count(*)".to_owned(), "scheduler".into()]);
        assert_eq!(out.rows[0], vec![Value::U64(2), Value::Str("heft".into())]);
    }

    #[test]
    fn errors_name_the_offending_token() {
        assert_eq!(invalid_token("SELECT frobnicate"), "frobnicate");
        assert_eq!(
            invalid_token("SELECT * WHERE makespan_secs = 'fast'"),
            "'fast'"
        );
        assert_eq!(invalid_token("SELECT * GROUP BY scheduler"), "*");
        assert_eq!(invalid_token("SELECT cell, count(*)"), "cell");
        assert_eq!(invalid_token("SELECT cell GROUP BY scheduler"), "cell");
        assert_eq!(invalid_token("SELECT count(cell)"), "cell");
        assert_eq!(invalid_token("SELECT avg(scheduler)"), "scheduler");
        assert_eq!(invalid_token("SELECT frac(makespan_secs)"), "makespan_secs");
        assert_eq!(invalid_token("SELECT median(makespan_secs)"), "median");
        assert_eq!(invalid_token("SELECT cell WHERE family < 'm'"), "'m'");
        assert_eq!(invalid_token("SELECT cell extra"), "extra");
        assert_eq!(invalid_token("SELECT cell WHERE cell = 'oops"), "'oops");
        assert_eq!(invalid_token(""), "");
        assert_eq!(invalid_token("SUMMARIZE *"), "SUMMARIZE");
    }
}
