//! Execution reports.

use serde::{Deserialize, Serialize};

use helios_energy::EnergyReport;
use helios_platform::Platform;
use helios_sched::{SchedError, Schedule};
use helios_sim::trace::Trace;
use helios_sim::SimDuration;
use helios_workflow::Workflow;

use crate::elastic::ElasticityMetrics;
use crate::resilience::ResilienceMetrics;

/// Aggregate data-movement statistics for one run.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TransferStats {
    /// Number of inter-device transfers performed (same-device data
    /// hand-offs are free and not counted).
    pub count: usize,
    /// Bytes moved across links.
    pub bytes: f64,
    /// Summed transfer latency (seconds; overlapping transfers both
    /// count in full).
    pub total_secs: f64,
}

/// The outcome of executing a workflow: realized placements plus run
/// statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionReport {
    schedule: Schedule,
    energy: EnergyReport,
    transfers: TransferStats,
    failures: u32,
    retries: u32,
    trace: Option<Trace>,
    #[serde(default)]
    resilience: Option<ResilienceMetrics>,
    #[serde(default)]
    elasticity: Option<ElasticityMetrics>,
}

impl ExecutionReport {
    pub(crate) fn new(
        schedule: Schedule,
        energy: EnergyReport,
        transfers: TransferStats,
        failures: u32,
        retries: u32,
        trace: Option<Trace>,
    ) -> ExecutionReport {
        ExecutionReport {
            schedule,
            energy,
            transfers,
            failures,
            retries,
            trace,
            resilience: None,
            elasticity: None,
        }
    }

    /// Attaches resilience metrics (set by the
    /// [`ResilientRunner`](crate::ResilientRunner)).
    pub(crate) fn with_resilience(mut self, metrics: ResilienceMetrics) -> ExecutionReport {
        self.resilience = Some(metrics);
        self
    }

    /// Resilience metrics, when the run was executed by the
    /// [`ResilientRunner`](crate::ResilientRunner).
    #[must_use]
    pub fn resilience(&self) -> Option<&ResilienceMetrics> {
        self.resilience.as_ref()
    }

    /// Attaches elasticity metrics (set by the
    /// [`ResilientRunner`](crate::ResilientRunner) when the run had an
    /// elasticity block).
    pub(crate) fn with_elasticity(mut self, metrics: ElasticityMetrics) -> ExecutionReport {
        self.elasticity = Some(metrics);
        self
    }

    /// Elasticity metrics, when the run had a capacity-event plan.
    #[must_use]
    pub fn elasticity(&self) -> Option<&ElasticityMetrics> {
        self.elasticity.as_ref()
    }

    /// The realized schedule: actual start/finish times as executed.
    #[must_use]
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// The run's makespan.
    #[must_use]
    pub fn makespan(&self) -> SimDuration {
        self.schedule.makespan()
    }

    /// Energy accounting for the run.
    #[must_use]
    pub fn energy(&self) -> &EnergyReport {
        &self.energy
    }

    /// Data-movement statistics.
    #[must_use]
    pub fn transfers(&self) -> &TransferStats {
        &self.transfers
    }

    /// Device failures that hit an executing task.
    #[must_use]
    pub fn failures(&self) -> u32 {
        self.failures
    }

    /// Task re-executions caused by failures.
    #[must_use]
    pub fn retries(&self) -> u32 {
        self.retries
    }

    /// Schedule length ratio of the realized schedule.
    ///
    /// # Errors
    ///
    /// Propagates metric computation errors.
    pub fn slr(&self, wf: &Workflow, platform: &Platform) -> Result<f64, SchedError> {
        helios_sched::metrics::slr(&self.schedule, wf, platform)
    }

    /// Renders the realized schedule as a textual Gantt chart.
    #[must_use]
    pub fn gantt(&self, wf: &Workflow, platform: &Platform) -> String {
        self.schedule.gantt(wf, platform)
    }

    /// The execution trace, when the run was configured with
    /// [`EngineConfig::tracing`](crate::EngineConfig).
    #[must_use]
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Exports the trace as Chrome trace-event JSON (viewable in
    /// `chrome://tracing` or Perfetto), or `None` when tracing was off.
    #[must_use]
    pub fn chrome_trace(&self, platform: &Platform) -> Option<String> {
        let names: Vec<String> = platform
            .devices()
            .iter()
            .map(|d| d.name().to_owned())
            .collect();
        self.trace.as_ref().map(|t| t.to_chrome_json(&names))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_stats_default() {
        let t = TransferStats::default();
        assert_eq!(t.count, 0);
        assert_eq!(t.bytes, 0.0);
    }
}
