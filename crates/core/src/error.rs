//! Error type for the execution engine.

use std::fmt;

use helios_platform::PlatformError;
use helios_sched::SchedError;
use helios_workflow::{TaskId, WorkflowError};

/// Errors produced while executing a workflow.
#[derive(Debug)]
pub enum EngineError {
    /// A scheduling error while planning or validating.
    Sched(SchedError),
    /// A platform model error during execution.
    Platform(PlatformError),
    /// A workflow structural error during execution.
    Workflow(WorkflowError),
    /// A task exhausted its retry budget.
    RetriesExhausted {
        /// The failing task.
        task: TaskId,
        /// Retries attempted.
        attempts: u32,
    },
    /// Every device failed permanently before the workflow completed, or
    /// the remaining tasks have no surviving feasible device.
    AllDevicesLost {
        /// Simulation time of the final permanent failure, seconds.
        at_secs: f64,
        /// Tasks completed before the platform was lost.
        completed: usize,
        /// Total tasks.
        total: usize,
    },
    /// Every elastic device departed (preemption, drain or leave) with
    /// no join still pending, so the remaining work has nowhere to run.
    /// Campaign sweeps record this as a measurement
    /// (`incomplete_reason = "capacity_exhausted"`), not an error.
    CapacityExhausted {
        /// Simulation time of the final departure, seconds.
        at_secs: f64,
        /// Tasks completed before capacity ran out.
        completed: usize,
        /// Total tasks.
        total: usize,
    },
    /// The engine's event loop drained without completing every task —
    /// an internal invariant violation.
    Stalled {
        /// Tasks completed before the stall.
        completed: usize,
        /// Total tasks.
        total: usize,
    },
    /// The watchdog budget on simulated events
    /// ([`EngineConfig::step_budget`](crate::EngineConfig)) ran out
    /// before the workflow completed — the fault configuration is
    /// grinding the run instead of hanging the whole campaign.
    StepBudgetExceeded {
        /// The exhausted budget.
        steps: u64,
        /// Tasks completed within the budget.
        completed: usize,
        /// Total tasks.
        total: usize,
    },
    /// Invalid engine configuration.
    Config(String),
    /// A campaign-layer error: malformed or invalid sweep input.
    Campaign(crate::campaign::CampaignError),
    /// A worker thread panicked or disconnected in the threaded executor.
    Executor(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Sched(e) => write!(f, "scheduling error: {e}"),
            EngineError::Platform(e) => write!(f, "platform error: {e}"),
            EngineError::Workflow(e) => write!(f, "workflow error: {e}"),
            EngineError::RetriesExhausted { task, attempts } => {
                write!(
                    f,
                    "task {task} failed permanently after {attempts} attempts"
                )
            }
            EngineError::AllDevicesLost {
                at_secs,
                completed,
                total,
            } => {
                write!(
                    f,
                    "all devices failed permanently at {at_secs:.3}s with {completed}/{total} tasks complete"
                )
            }
            EngineError::CapacityExhausted {
                at_secs,
                completed,
                total,
            } => {
                write!(
                    f,
                    "all elastic capacity departed at {at_secs:.3}s with {completed}/{total} tasks complete"
                )
            }
            EngineError::Stalled { completed, total } => {
                write!(f, "engine stalled after {completed}/{total} tasks")
            }
            EngineError::StepBudgetExceeded {
                steps,
                completed,
                total,
            } => {
                write!(
                    f,
                    "cell step budget of {steps} simulated events exhausted with \
                     {completed}/{total} tasks complete"
                )
            }
            EngineError::Config(msg) => write!(f, "invalid engine config: {msg}"),
            EngineError::Campaign(e) => write!(f, "campaign error: {e}"),
            EngineError::Executor(msg) => write!(f, "threaded executor error: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Sched(e) => Some(e),
            EngineError::Platform(e) => Some(e),
            EngineError::Workflow(e) => Some(e),
            EngineError::Campaign(e) => Some(e),
            _ => None,
        }
    }
}

impl From<crate::campaign::CampaignError> for EngineError {
    fn from(e: crate::campaign::CampaignError) -> Self {
        EngineError::Campaign(e)
    }
}

impl From<SchedError> for EngineError {
    fn from(e: SchedError) -> Self {
        EngineError::Sched(e)
    }
}

impl From<PlatformError> for EngineError {
    fn from(e: PlatformError) -> Self {
        EngineError::Platform(e)
    }
}

impl From<WorkflowError> for EngineError {
    fn from(e: WorkflowError) -> Self {
        EngineError::Workflow(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e: EngineError = PlatformError::Empty.into();
        assert!(e.to_string().contains("platform"));
        assert!(std::error::Error::source(&e).is_some());
        let e = EngineError::RetriesExhausted {
            task: TaskId(2),
            attempts: 3,
        };
        assert!(e.to_string().contains("t2"));
        let e = EngineError::Stalled {
            completed: 1,
            total: 5,
        };
        assert!(e.to_string().contains("1/5"));
        let e = EngineError::AllDevicesLost {
            at_secs: 2.5,
            completed: 3,
            total: 9,
        };
        assert!(e.to_string().contains("2.500s"), "{e}");
        assert!(e.to_string().contains("3/9"), "{e}");
        let e = EngineError::CapacityExhausted {
            at_secs: 4.25,
            completed: 2,
            total: 7,
        };
        assert!(e.to_string().contains("4.250s"), "{e}");
        assert!(e.to_string().contains("2/7"), "{e}");
        assert!(e.to_string().contains("capacity"), "{e}");
    }
}
