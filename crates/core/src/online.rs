//! Online (just-in-time) workflow execution.
//!
//! Instead of following a static plan, the [`OnlineRunner`] assigns ready
//! tasks to devices at event time, using *observed* history — the remedy
//! the online-scheduling literature prescribes when task durations are
//! noisy and static plans go stale. A [`DvfsGovernor`] may be attached;
//! it picks the DVFS level per dispatch from the current load pressure.
//!
//! The runner is the online re-planning hook set over the execution
//! core ([`crate::exec`]): its [`Hooks`] implementation owns the
//! ready-set, the calibration model and the just-in-time dispatch rule,
//! while the step loop, occupancy math, transfer staging, residency
//! caching and report accounting are the core's single copy.

use helios_energy::DvfsGovernor;
use helios_platform::{DeviceId, DvfsLevel, Platform};
use helios_sched::Placement;
use helios_sim::trace::Trace;
use helios_sim::{EventQueue, SimRng, SimTime};
use helios_workflow::{analysis, TaskId, Workflow};

use crate::config::{EngineConfig, FaultView};
use crate::error::EngineError;
use crate::exec::{
    drive, fault_occupancy, finish_report, noise_factor, slowdown_factor, BudgetPoint,
    DeliveredCache, Hooks, LinkState,
};
use crate::report::{ExecutionReport, TransferStats};

/// Task-selection policy for the online dispatcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OnlinePolicy {
    /// Pick the globally best (ready task, idle device) pair by
    /// predicted completion time.
    #[default]
    Jit,
    /// Pick the highest upward-rank ready task first (HEFT priorities),
    /// then its best idle device.
    RankedJit,
}

impl OnlinePolicy {
    /// A short stable name for reports.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            OnlinePolicy::Jit => "online-jit",
            OnlinePolicy::RankedJit => "online-ranked",
        }
    }
}

/// Online executor: dispatches tasks just-in-time as devices free up.
pub struct OnlineRunner {
    config: EngineConfig,
    policy: OnlinePolicy,
    governor: Option<Box<dyn DvfsGovernor>>,
    estimates: Option<Workflow>,
}

impl std::fmt::Debug for OnlineRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OnlineRunner")
            .field("config", &self.config)
            .field("policy", &self.policy)
            .field(
                "governor",
                &self.governor.as_ref().map(|g| g.name().to_owned()),
            )
            .finish()
    }
}

impl OnlineRunner {
    /// Creates a runner with the given configuration and policy.
    #[must_use]
    pub fn new(config: EngineConfig, policy: OnlinePolicy) -> OnlineRunner {
        OnlineRunner {
            config,
            policy,
            governor: None,
            estimates: None,
        }
    }

    /// Attaches the *planner's view* of the workflow: task costs the
    /// dispatcher believes, which may differ from the costs actually
    /// executed. Models stale or mis-calibrated performance estimates —
    /// the regime where online rescheduling earns its keep. The
    /// estimate workflow must be structurally identical to the executed
    /// one (same tasks and edges; only costs may differ).
    #[must_use]
    pub fn with_estimates(mut self, estimates: Workflow) -> OnlineRunner {
        self.estimates = Some(estimates);
        self
    }

    /// Attaches a DVFS governor consulted at every dispatch.
    #[must_use]
    pub fn with_governor(mut self, governor: Box<dyn DvfsGovernor>) -> OnlineRunner {
        self.governor = Some(governor);
        self
    }

    /// Executes `wf` on `platform` with just-in-time dispatching.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::RetriesExhausted`] under fault injection
    /// when a task exceeds its retry budget, or propagates model errors.
    pub fn run(&self, platform: &Platform, wf: &Workflow) -> Result<ExecutionReport, EngineError> {
        self.config.validate_for(platform)?;
        let n = wf.num_tasks();
        // The dispatcher's beliefs come from the estimate view when one
        // is attached; execution always uses the true costs in `wf`.
        let believed = self.estimates.as_ref().unwrap_or(wf);
        if believed.num_tasks() != n || believed.num_edges() != wf.num_edges() {
            return Err(EngineError::Config(
                "estimate workflow differs structurally from the executed one".into(),
            ));
        }
        let ranks = match self.policy {
            OnlinePolicy::RankedJit => analysis::bottom_levels(believed, platform)?,
            OnlinePolicy::Jit => vec![0.0; n],
        };
        let preds_left: Vec<usize> = (0..n).map(|i| wf.predecessors(TaskId(i)).len()).collect();
        let ready: Vec<TaskId> = (0..n).filter(|&i| preds_left[i] == 0).map(TaskId).collect();

        let base_rng = SimRng::seed_from(self.config.seed);
        let mut exec = OnlineExec {
            config: &self.config,
            policy: self.policy,
            governor: self.governor.as_deref(),
            platform,
            wf,
            believed,
            view: self.config.fault_view()?,
            // Task-intrinsic noise: each task's factor comes from its own
            // stream, so drawing all of them up front replays the exact
            // values the per-dispatch forks produced.
            noise: (0..n)
                .map(|t| noise_factor(self.config.noise_cv, &base_rng, t))
                .collect(),
            base_rng,
            ranks,
            preds_left,
            producer_device: vec![DeviceId(0); n],
            realized: vec![None; n],
            ready,
            candidates: Vec::new(),
            device_idle: vec![true; platform.num_devices()],
            links: LinkState::new(platform),
            stats: TransferStats::default(),
            trace: self.config.tracing.then(Trace::new),
            delivered: DeliveredCache::new(self.config.data_caching, n, platform.num_devices()),
            failures: 0,
            retries: 0,
            completed: 0,
            queue: EventQueue::new(),
            calibration: vec![1.0f64; platform.num_devices()],
            believed_dur: vec![0.0f64; n],
            work_dur: vec![0.0f64; n],
            device_free_pred: vec![SimTime::ZERO; platform.num_devices()],
        };
        exec.dispatch(SimTime::ZERO)?;
        drive(&mut exec)?;
        finish_report(
            platform,
            wf,
            exec.realized,
            exec.trace,
            exec.stats,
            exec.failures,
            exec.retries,
        )
    }
}

/// Per-device calibration: an exponentially weighted running ratio of
/// observed to believed duration. This is how adaptive runtimes keep
/// their performance models honest — a throttled or misestimated device
/// is quickly predicted as slow and work routes around it.
const CALIBRATION_EWMA: f64 = 0.5;

/// The online re-planning hook set: a ready-set dispatched just-in-time
/// by predicted completion, with task finishes as the only events.
struct OnlineExec<'a> {
    config: &'a EngineConfig,
    policy: OnlinePolicy,
    governor: Option<&'a dyn DvfsGovernor>,
    platform: &'a Platform,
    wf: &'a Workflow,
    believed: &'a Workflow,
    view: FaultView,
    base_rng: SimRng,
    noise: Vec<f64>,
    ranks: Vec<f64>,
    preds_left: Vec<usize>,
    producer_device: Vec<DeviceId>,
    realized: Vec<Option<Placement>>,
    ready: Vec<TaskId>,
    /// Scratch for one dispatch round's policy-ordered candidates,
    /// reused across rounds to avoid per-round clone + allocation.
    candidates: Vec<TaskId>,
    device_idle: Vec<bool>,
    links: LinkState,
    stats: TransferStats,
    trace: Option<Trace>,
    delivered: DeliveredCache,
    failures: u32,
    retries: u32,
    completed: usize,
    queue: EventQueue<TaskId>,
    calibration: Vec<f64>,
    believed_dur: Vec<f64>,
    // Fault-free device time per task, for calibration: retry stalls
    // say nothing about how fast the device executes work.
    work_dur: Vec<f64>,
    // Predicted instant each device frees up (modeled, since a real
    // runtime cannot observe the noise ahead of time).
    device_free_pred: Vec<SimTime>,
}

impl OnlineExec<'_> {
    /// Predicted completion of `task` on `device`, using believed costs
    /// scaled by the device's learned calibration (the dispatcher
    /// cannot see the noise it is about to suffer).
    fn predict(
        &self,
        task: TaskId,
        device: DeviceId,
        now: SimTime,
        level: DvfsLevel,
    ) -> Result<f64, EngineError> {
        let mut data_at = now;
        for &e in self.wf.predecessors(task) {
            let edge = self.wf.edge(e);
            let t = self.platform.transfer_time(
                edge.bytes,
                self.producer_device[edge.src.0],
                device,
            )?;
            data_at = data_at.max(now + t);
        }
        let exec = self
            .platform
            .device(device)?
            .execution_time(self.believed.task(task)?.cost(), level)?;
        Ok((data_at + exec * self.calibration[device.0]).as_secs())
    }

    /// Keeps committing (ready task, idle device) pairs until no task's
    /// *best* device is idle. A task whose best device is busy waits —
    /// forcing it onto a slow idle device (OLB behaviour) is the failure
    /// mode this dispatcher exists to avoid.
    fn dispatch(&mut self, now: SimTime) -> Result<(), EngineError> {
        let platform = self.platform;
        let wf = self.wf;
        loop {
            let idle_count = self.device_idle.iter().filter(|&&i| i).count();
            if idle_count == 0 || self.ready.is_empty() {
                break;
            }
            let pressure = self.ready.len() as f64 / idle_count as f64;

            // Candidate tasks per policy, staged in the reusable scratch
            // (taken out of `self` for the duration of the round so the
            // commit path below can borrow `self` mutably).
            let mut tasks = std::mem::take(&mut self.candidates);
            tasks.clear();
            tasks.extend_from_slice(&self.ready);
            if self.policy == OnlinePolicy::RankedJit {
                tasks.sort_by(|a, b| {
                    self.ranks[b.0]
                        .total_cmp(&self.ranks[a.0])
                        .then(a.0.cmp(&b.0))
                });
            }
            let mut committed = false;
            for &task in &tasks {
                // Best device over ALL devices, busy ones at their
                // predicted free time.
                let mut best: Option<(DeviceId, DvfsLevel, f64)> = None;
                for d in 0..platform.num_devices() {
                    let dev = DeviceId(d);
                    let device = platform.device(dev)?;
                    if !helios_sched::placement_feasible(device, wf.task(task)?) {
                        continue;
                    }
                    let level = match self.governor {
                        Some(g) => g.select_level(device, pressure),
                        None => device.nominal_level(),
                    };
                    let est = now.max(self.device_free_pred[d]);
                    let score = self.predict(task, dev, est, level)?;
                    if best.is_none_or(|(_, _, b)| score < b) {
                        best = Some((dev, level, score));
                    }
                }
                let (dev, level, _score) = best.ok_or(EngineError::Sched(
                    helios_sched::SchedError::NoFeasibleDevice(task),
                ))?;
                if !self.device_idle[dev.0] {
                    // Best device busy: wait for it (this task will be
                    // reconsidered at the next event).
                    continue;
                }
                self.ready.retain(|&t| t != task);
                self.device_idle[dev.0] = false;

                // Pull inputs now; execution starts when the last
                // arrives.
                let mut start = now;
                for &e in wf.predecessors(task) {
                    let edge = wf.edge(e);
                    if let Some(at) = self.delivered.lookup(edge.src, dev) {
                        start = start.max(at);
                        continue;
                    }
                    // The transfer label is only rendered when a trace
                    // is actually recording.
                    let label = self
                        .trace
                        .is_some()
                        .then(|| format!("{}->{}", edge.src, edge.dst));
                    let arrival = self.links.transfer_arrival(
                        platform,
                        self.config.link_contention,
                        edge.bytes,
                        self.producer_device[edge.src.0],
                        dev,
                        now,
                        &mut self.stats,
                        self.trace
                            .as_mut()
                            .and_then(|t| label.as_deref().map(|l| (t, l))),
                    )?;
                    self.delivered.record(edge.src, dev, arrival);
                    start = start.max(arrival);
                }
                let device = platform.device(dev)?;
                let believed_exec =
                    device.execution_time(self.believed.task(task)?.cost(), level)?;
                let modeled = device.execution_time(wf.task(task)?.cost(), level)?;
                let slow = slowdown_factor(self.config.device_slowdown.as_ref(), dev.0);
                let noise = self.noise[task.0];
                let occ = fault_occupancy(
                    &self.view,
                    &self.base_rng,
                    modeled * noise * slow,
                    task,
                    dev.0,
                )?;
                self.failures += occ.failures;
                self.retries += occ.retries;
                let finish = start + occ.total;
                self.device_free_pred[dev.0] = start + believed_exec * self.calibration[dev.0];
                self.believed_dur[task.0] = believed_exec.as_secs();
                self.work_dur[task.0] = occ.work.as_secs();
                self.realized[task.0] = Some(Placement {
                    task,
                    device: dev,
                    level,
                    start,
                    finish,
                });
                self.producer_device[task.0] = dev;
                self.queue.push(finish, task);
                // A commitment changed the state: restart the round so
                // remaining tasks see the new free times.
                committed = true;
                break;
            }
            self.candidates = tasks;
            if !committed {
                // No task could commit this round.
                break;
            }
        }
        Ok(())
    }
}

impl Hooks for OnlineExec<'_> {
    type Event = TaskId;

    fn budget(&self) -> Option<u64> {
        // The online loop pops exactly one finish per dispatched task,
        // so it cannot grind: no watchdog.
        None
    }

    fn budget_point(&self) -> BudgetPoint {
        BudgetPoint::AfterPop
    }

    fn completed(&self) -> usize {
        self.completed
    }

    fn total(&self) -> usize {
        self.wf.num_tasks()
    }

    fn exit_on_complete(&self) -> bool {
        false
    }

    fn pop(&mut self) -> Option<(SimTime, TaskId)> {
        self.queue.pop()
    }

    fn handle(&mut self, now: SimTime, task: TaskId) -> Result<(), EngineError> {
        self.completed += 1;
        let placement = self.realized[task.0].expect("placed before finishing");
        let dev = placement.device;
        self.device_idle[dev.0] = true;
        // Learn from the observation (fault-free portion only, so retry
        // stalls don't poison the model of device speed).
        if self.believed_dur[task.0] > 0.0 && self.work_dur[task.0] > 0.0 {
            let ratio = self.work_dur[task.0] / self.believed_dur[task.0];
            self.calibration[dev.0] =
                (1.0 - CALIBRATION_EWMA) * self.calibration[dev.0] + CALIBRATION_EWMA * ratio;
        }
        let wf = self.wf;
        for succ in wf.successor_tasks(task) {
            self.preds_left[succ.0] -= 1;
            if self.preds_left[succ.0] == 0 {
                self.ready.push(succ);
            }
        }
        self.dispatch(now)
    }
}

#[cfg(test)]
#[path = "online_tests.rs"]
mod tests;
