//! Online (just-in-time) workflow execution.
//!
//! Instead of following a static plan, the [`OnlineRunner`] assigns ready
//! tasks to devices at event time, using *observed* history — the remedy
//! the online-scheduling literature prescribes when task durations are
//! noisy and static plans go stale. A [`DvfsGovernor`] may be attached;
//! it picks the DVFS level per dispatch from the current load pressure.

use helios_energy::{account, DvfsGovernor};
use helios_platform::{DeviceId, Platform};
use helios_sched::{Placement, Schedule};
use helios_sim::{EventQueue, SimRng, SimTime};
use helios_workflow::{analysis, TaskId, Workflow};

use crate::config::EngineConfig;
use crate::engine::{occupancy_on, LinkState, FAULT_STREAM_BASE, NOISE_STREAM_BASE};
use crate::error::EngineError;
use crate::report::{ExecutionReport, TransferStats};

/// Task-selection policy for the online dispatcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OnlinePolicy {
    /// Pick the globally best (ready task, idle device) pair by
    /// predicted completion time.
    #[default]
    Jit,
    /// Pick the highest upward-rank ready task first (HEFT priorities),
    /// then its best idle device.
    RankedJit,
}

impl OnlinePolicy {
    /// A short stable name for reports.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            OnlinePolicy::Jit => "online-jit",
            OnlinePolicy::RankedJit => "online-ranked",
        }
    }
}

/// Online executor: dispatches tasks just-in-time as devices free up.
pub struct OnlineRunner {
    config: EngineConfig,
    policy: OnlinePolicy,
    governor: Option<Box<dyn DvfsGovernor>>,
    estimates: Option<Workflow>,
}

impl std::fmt::Debug for OnlineRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OnlineRunner")
            .field("config", &self.config)
            .field("policy", &self.policy)
            .field(
                "governor",
                &self.governor.as_ref().map(|g| g.name().to_owned()),
            )
            .finish()
    }
}

impl OnlineRunner {
    /// Creates a runner with the given configuration and policy.
    #[must_use]
    pub fn new(config: EngineConfig, policy: OnlinePolicy) -> OnlineRunner {
        OnlineRunner {
            config,
            policy,
            governor: None,
            estimates: None,
        }
    }

    /// Attaches the *planner's view* of the workflow: task costs the
    /// dispatcher believes, which may differ from the costs actually
    /// executed. Models stale or mis-calibrated performance estimates —
    /// the regime where online rescheduling earns its keep. The
    /// estimate workflow must be structurally identical to the executed
    /// one (same tasks and edges; only costs may differ).
    #[must_use]
    pub fn with_estimates(mut self, estimates: Workflow) -> OnlineRunner {
        self.estimates = Some(estimates);
        self
    }

    /// Attaches a DVFS governor consulted at every dispatch.
    #[must_use]
    pub fn with_governor(mut self, governor: Box<dyn DvfsGovernor>) -> OnlineRunner {
        self.governor = Some(governor);
        self
    }

    /// Executes `wf` on `platform` with just-in-time dispatching.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::RetriesExhausted`] under fault injection
    /// when a task exceeds its retry budget, or propagates model errors.
    pub fn run(&self, platform: &Platform, wf: &Workflow) -> Result<ExecutionReport, EngineError> {
        self.config.validate()?;
        let n = wf.num_tasks();
        // The dispatcher's beliefs come from the estimate view when one
        // is attached; execution always uses the true costs in `wf`.
        let believed = self.estimates.as_ref().unwrap_or(wf);
        if believed.num_tasks() != n || believed.num_edges() != wf.num_edges() {
            return Err(EngineError::Config(
                "estimate workflow differs structurally from the executed one".into(),
            ));
        }
        let ranks = match self.policy {
            OnlinePolicy::RankedJit => analysis::bottom_levels(believed, platform)?,
            OnlinePolicy::Jit => vec![0.0; n],
        };

        let mut preds_left: Vec<usize> = (0..n).map(|i| wf.predecessors(TaskId(i)).len()).collect();
        let mut finished = vec![false; n];
        let mut producer_device = vec![DeviceId(0); n];
        let mut realized: Vec<Option<Placement>> = vec![None; n];
        let mut ready: Vec<TaskId> = (0..n).filter(|&i| preds_left[i] == 0).map(TaskId).collect();
        let mut device_idle = vec![true; platform.num_devices()];

        let view = self.config.fault_view()?;
        let base_rng = SimRng::seed_from(self.config.seed);
        let mut links = LinkState::new(platform);
        let mut stats = TransferStats::default();
        let mut trace = self.config.tracing.then(helios_sim::trace::Trace::new);
        // data_caching: (producer, destination) -> availability instant.
        let mut delivered: std::collections::BTreeMap<(TaskId, DeviceId), SimTime> =
            std::collections::BTreeMap::new();
        let mut failures = 0u32;
        let mut retries = 0u32;
        let mut completed = 0usize;
        let mut queue: EventQueue<TaskId> = EventQueue::new();

        // Per-device calibration: an exponentially weighted running
        // ratio of observed to believed duration. This is how adaptive
        // runtimes keep their performance models honest — a throttled
        // or misestimated device is quickly predicted as slow and work
        // routes around it.
        let mut calibration = vec![1.0f64; platform.num_devices()];
        let mut believed_dur = vec![0.0f64; n];
        // Fault-free device time per task, for calibration: retry stalls
        // say nothing about how fast the device executes work.
        let mut work_dur = vec![0.0f64; n];
        const CALIBRATION_EWMA: f64 = 0.5;

        // Predicted completion of `task` on `device`, using believed
        // costs scaled by the device's learned calibration (the
        // dispatcher cannot see the noise it is about to suffer).
        let predict = |task: TaskId,
                       device: DeviceId,
                       now: SimTime,
                       producer_device: &[DeviceId],
                       calibration: &[f64],
                       level: helios_platform::DvfsLevel|
         -> Result<f64, EngineError> {
            let mut data_at = now;
            for &e in wf.predecessors(task) {
                let edge = wf.edge(e);
                let t = platform.transfer_time(edge.bytes, producer_device[edge.src.0], device)?;
                data_at = data_at.max(now + t);
            }
            let exec = platform
                .device(device)?
                .execution_time(believed.task(task)?.cost(), level)?;
            Ok((data_at + exec * calibration[device.0]).as_secs())
        };

        // Predicted instant each device frees up (modeled, since a real
        // runtime cannot observe the noise ahead of time).
        let mut device_free_pred = vec![SimTime::ZERO; platform.num_devices()];

        macro_rules! dispatch {
            ($now:expr) => {{
                let now: SimTime = $now;
                // Keep committing until no task's *best* device is idle.
                // A task whose best device is busy waits — forcing it onto
                // a slow idle device (OLB behaviour) is the failure mode
                // this dispatcher exists to avoid.
                'rounds: loop {
                    let idle_count = device_idle.iter().filter(|&&i| i).count();
                    if idle_count == 0 || ready.is_empty() {
                        break;
                    }
                    let pressure = ready.len() as f64 / idle_count as f64;

                    // Candidate tasks per policy.
                    let tasks: Vec<TaskId> = match self.policy {
                        OnlinePolicy::Jit => ready.clone(),
                        OnlinePolicy::RankedJit => {
                            let mut sorted = ready.clone();
                            sorted.sort_by(|a, b| {
                                ranks[b.0].total_cmp(&ranks[a.0]).then(a.0.cmp(&b.0))
                            });
                            sorted
                        }
                    };
                    for task in tasks {
                        // Best device over ALL devices, busy ones at their
                        // predicted free time.
                        let mut best: Option<(DeviceId, helios_platform::DvfsLevel, f64)> = None;
                        for d in 0..platform.num_devices() {
                            let dev = DeviceId(d);
                            let device = platform.device(dev)?;
                            if !helios_sched::placement_feasible(device, wf.task(task)?) {
                                continue;
                            }
                            let level = match &self.governor {
                                Some(g) => g.select_level(device, pressure),
                                None => device.nominal_level(),
                            };
                            let est = now.max(device_free_pred[d]);
                            let score =
                                predict(task, dev, est, &producer_device, &calibration, level)?;
                            if best.map_or(true, |(_, _, b)| score < b) {
                                best = Some((dev, level, score));
                            }
                        }
                        let (dev, level, score) = best.ok_or(EngineError::Sched(
                            helios_sched::SchedError::NoFeasibleDevice(task),
                        ))?;
                        if !device_idle[dev.0] {
                            // Best device busy: wait for it (this task will
                            // be reconsidered at the next event).
                            continue;
                        }
                        let task_commit = task;
                        let dev_commit = dev;
                        let level_commit = level;
                        let _ = score;
                        let (task, dev, level) = (task_commit, dev_commit, level_commit);
                        ready.retain(|&t| t != task);
                        device_idle[dev.0] = false;

                        // Pull inputs now; execution starts when the last
                        // arrives.
                        let mut start = now;
                        for &e in wf.predecessors(task) {
                            let edge = wf.edge(e);
                            if self.config.data_caching {
                                if let Some(&at) = delivered.get(&(edge.src, dev)) {
                                    start = start.max(at);
                                    continue;
                                }
                            }
                            let label = format!("{}->{}", edge.src, edge.dst);
                            let arrival = links.transfer_arrival(
                                platform,
                                self.config.link_contention,
                                edge.bytes,
                                producer_device[edge.src.0],
                                dev,
                                now,
                                &mut stats,
                                trace.as_mut().map(|t| (t, label.as_str())),
                            )?;
                            if self.config.data_caching {
                                delivered.insert((edge.src, dev), arrival);
                            }
                            start = start.max(arrival);
                        }
                        let device = platform.device(dev)?;
                        let believed_exec =
                            device.execution_time(believed.task(task)?.cost(), level)?;
                        let modeled = device.execution_time(wf.task(task)?.cost(), level)?;
                        let slow = self
                            .config
                            .device_slowdown
                            .as_ref()
                            .and_then(|v| v.get(dev.0))
                            .copied()
                            .unwrap_or(1.0);
                        let noise = if self.config.noise_cv > 0.0 {
                            let mut rng = base_rng.fork(NOISE_STREAM_BASE + task.0 as u64);
                            rng.normal(1.0, self.config.noise_cv).max(0.05)
                        } else {
                            1.0
                        };
                        let mut fault_rng = base_rng.fork(FAULT_STREAM_BASE + task.0 as u64);
                        let occ = occupancy_on(
                            &view,
                            modeled * noise * slow,
                            task,
                            dev.0,
                            &mut fault_rng,
                        )?;
                        failures += occ.failures;
                        retries += occ.retries;
                        let finish = start + occ.total;
                        device_free_pred[dev.0] = start + believed_exec * calibration[dev.0];
                        believed_dur[task.0] = believed_exec.as_secs();
                        work_dur[task.0] = occ.work.as_secs();
                        realized[task.0] = Some(Placement {
                            task,
                            device: dev,
                            level,
                            start,
                            finish,
                        });
                        producer_device[task.0] = dev;
                        queue.push(finish, task);
                        // A commitment changed the state: restart the
                        // round so remaining tasks see the new free times.
                        continue 'rounds;
                    }
                    // No task could commit this round.
                    break;
                }
            }};
        }

        dispatch!(SimTime::ZERO);
        while let Some((now, task)) = queue.pop() {
            finished[task.0] = true;
            completed += 1;
            let placement = realized[task.0].expect("placed before finishing");
            let dev = placement.device;
            device_idle[dev.0] = true;
            // Learn from the observation (fault-free portion only, so
            // retry stalls don't poison the model of device speed).
            if believed_dur[task.0] > 0.0 && work_dur[task.0] > 0.0 {
                let ratio = work_dur[task.0] / believed_dur[task.0];
                calibration[dev.0] =
                    (1.0 - CALIBRATION_EWMA) * calibration[dev.0] + CALIBRATION_EWMA * ratio;
            }
            for succ in wf.successor_tasks(task) {
                preds_left[succ.0] -= 1;
                if preds_left[succ.0] == 0 {
                    ready.push(succ);
                }
            }
            dispatch!(now);
        }

        if completed != n {
            return Err(EngineError::Stalled {
                completed,
                total: n,
            });
        }
        let placements: Vec<Placement> = realized
            .into_iter()
            .map(|p| p.expect("all tasks completed"))
            .collect();
        if let Some(trace) = trace.as_mut() {
            for p in &placements {
                trace.record(
                    wf.task(p.task)?.name().to_owned(),
                    helios_sim::trace::TraceKind::Execution,
                    p.device.0,
                    p.start,
                    p.finish,
                );
            }
        }
        let schedule = Schedule::new(placements)?;
        let energy = account(&schedule, wf, platform, false)?;
        Ok(ExecutionReport::new(
            schedule, energy, stats, failures, retries, trace,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Engine;
    use helios_energy::{OnDemand, Powersave};
    use helios_platform::presets;
    use helios_sched::{HeftScheduler, Scheduler};
    use helios_workflow::generators::{montage, sipht};

    #[test]
    fn online_completes_all_tasks() {
        let p = presets::hpc_node();
        let wf = montage(60, 1).unwrap();
        for policy in [OnlinePolicy::Jit, OnlinePolicy::RankedJit] {
            let r = OnlineRunner::new(EngineConfig::default(), policy)
                .run(&p, &wf)
                .unwrap();
            assert_eq!(r.schedule().placements().len(), wf.num_tasks());
            assert!(r.makespan().as_secs() > 0.0);
        }
    }

    #[test]
    fn online_respects_precedence() {
        let p = presets::hpc_node();
        let wf = sipht(50, 2).unwrap();
        let r = OnlineRunner::new(EngineConfig::default(), OnlinePolicy::Jit)
            .run(&p, &wf)
            .unwrap();
        for pl in r.schedule().placements() {
            for &e in wf.predecessors(pl.task) {
                let edge = wf.edge(e);
                let pred = r.schedule().placement(edge.src).unwrap();
                assert!(
                    pred.finish.as_secs() <= pl.start.as_secs() + 1e-9,
                    "{} started before {} finished",
                    pl.task,
                    edge.src
                );
            }
        }
    }

    #[test]
    fn online_is_competitive_without_noise() {
        let p = presets::hpc_node();
        let wf = montage(80, 3).unwrap();
        let static_report = Engine::default()
            .run(&p, &wf, &HeftScheduler::default())
            .unwrap();
        let online = OnlineRunner::new(EngineConfig::default(), OnlinePolicy::RankedJit)
            .run(&p, &wf)
            .unwrap();
        let ratio = online.makespan().as_secs() / static_report.makespan().as_secs();
        assert!(ratio < 2.0, "online {ratio}x of static HEFT");
    }

    #[test]
    fn online_gains_under_heavy_noise() {
        // Average over several seeds: with large duration noise the
        // static plan's device order goes stale, while JIT adapts.
        let p = presets::hpc_node();
        let mut static_total = 0.0;
        let mut online_total = 0.0;
        for seed in 0..8 {
            let wf = sipht(60, seed).unwrap();
            let plan = HeftScheduler::default().schedule(&wf, &p).unwrap();
            let cfg = EngineConfig {
                noise_cv: 0.6,
                seed,
                ..Default::default()
            };
            static_total += Engine::new(cfg.clone())
                .execute_plan(&p, &wf, &plan)
                .unwrap()
                .makespan()
                .as_secs();
            online_total += OnlineRunner::new(cfg, OnlinePolicy::RankedJit)
                .run(&p, &wf)
                .unwrap()
                .makespan()
                .as_secs();
        }
        assert!(
            online_total < 1.35 * static_total,
            "online {online_total} should track static {static_total} under noise"
        );
    }

    #[test]
    fn governor_changes_levels_and_energy() {
        let p = presets::hpc_node();
        let wf = montage(60, 4).unwrap();
        let perf = OnlineRunner::new(EngineConfig::default(), OnlinePolicy::Jit)
            .run(&p, &wf)
            .unwrap();
        let save = OnlineRunner::new(EngineConfig::default(), OnlinePolicy::Jit)
            .with_governor(Box::new(Powersave))
            .run(&p, &wf)
            .unwrap();
        assert!(save.makespan() > perf.makespan(), "powersave is slower");
        assert!(
            save.energy().active_j < perf.energy().active_j,
            "powersave must cut active energy"
        );
        let ondemand = OnlineRunner::new(EngineConfig::default(), OnlinePolicy::Jit)
            .with_governor(Box::new(OnDemand::default()))
            .run(&p, &wf)
            .unwrap();
        assert!(ondemand.makespan() >= perf.makespan());
        assert!(ondemand.makespan() <= save.makespan());
    }

    #[test]
    fn online_deterministic_per_seed() {
        let p = presets::workstation();
        let wf = montage(40, 5).unwrap();
        let cfg = EngineConfig {
            noise_cv: 0.3,
            seed: 9,
            ..Default::default()
        };
        let a = OnlineRunner::new(cfg.clone(), OnlinePolicy::Jit)
            .run(&p, &wf)
            .unwrap();
        let b = OnlineRunner::new(cfg, OnlinePolicy::Jit)
            .run(&p, &wf)
            .unwrap();
        assert_eq!(a, b);
    }
}
