//! Error type for platform construction and queries.

use std::fmt;

/// Errors produced while building or querying a platform model.
#[derive(Debug, Clone, PartialEq)]
pub enum PlatformError {
    /// A numeric model parameter was NaN, infinite, zero or negative where a
    /// positive finite value is required.
    InvalidParameter {
        /// Which parameter was rejected.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// Two devices (or links) were registered with the same name.
    DuplicateName(String),
    /// A device id referenced a device that does not exist.
    UnknownDevice(usize),
    /// A link id referenced a link that does not exist.
    UnknownLink(usize),
    /// The platform has no devices.
    Empty,
    /// A device has no DVFS states.
    NoDvfsStates(String),
    /// A DVFS level index was out of range for the device.
    InvalidDvfsLevel {
        /// Device name.
        device: String,
        /// Requested level.
        level: usize,
        /// Number of available states.
        available: usize,
    },
    /// No route is defined between two devices and no default link exists.
    NoRoute {
        /// Source device index.
        from: usize,
        /// Destination device index.
        to: usize,
    },
    /// A derived model quantity (execution time, rank, …) came out NaN
    /// or infinite — usually an overflow from extreme but individually
    /// valid inputs. Catching it at the model boundary keeps NaN out of
    /// ordering comparisons downstream.
    NonFiniteModel {
        /// Which quantity was non-finite.
        what: &'static str,
        /// Index of the offending element (task, device, …).
        index: usize,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::InvalidParameter { name, value } => {
                write!(f, "invalid {name}: {value}")
            }
            PlatformError::DuplicateName(name) => write!(f, "duplicate name {name:?}"),
            PlatformError::UnknownDevice(id) => write!(f, "unknown device id {id}"),
            PlatformError::UnknownLink(id) => write!(f, "unknown link id {id}"),
            PlatformError::Empty => write!(f, "platform has no devices"),
            PlatformError::NoDvfsStates(d) => write!(f, "device {d:?} has no DVFS states"),
            PlatformError::InvalidDvfsLevel {
                device,
                level,
                available,
            } => write!(
                f,
                "DVFS level {level} out of range for device {device:?} ({available} states)"
            ),
            PlatformError::NoRoute { from, to } => {
                write!(f, "no route between device {from} and device {to}")
            }
            PlatformError::NonFiniteModel { what, index, value } => {
                write!(f, "{what} for element {index} is not finite: {value}")
            }
        }
    }
}

impl std::error::Error for PlatformError {}

pub(crate) fn positive(name: &'static str, value: f64) -> Result<f64, PlatformError> {
    if value.is_finite() && value > 0.0 {
        Ok(value)
    } else {
        Err(PlatformError::InvalidParameter { name, value })
    }
}

pub(crate) fn non_negative(name: &'static str, value: f64) -> Result<f64, PlatformError> {
    if value.is_finite() && value >= 0.0 {
        Ok(value)
    } else {
        Err(PlatformError::InvalidParameter { name, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validators() {
        assert!(positive("x", 1.0).is_ok());
        assert!(positive("x", 0.0).is_err());
        assert!(positive("x", f64::NAN).is_err());
        assert!(non_negative("x", 0.0).is_ok());
        assert!(non_negative("x", -1.0).is_err());
    }

    #[test]
    fn display_is_informative() {
        let e = PlatformError::InvalidParameter {
            name: "peak_gflops",
            value: -3.0,
        };
        assert_eq!(e.to_string(), "invalid peak_gflops: -3");
        assert!(PlatformError::Empty.to_string().contains("no devices"));
        let e = PlatformError::InvalidDvfsLevel {
            device: "gpu0".into(),
            level: 9,
            available: 3,
        };
        assert!(e.to_string().contains("gpu0"));
    }
}
