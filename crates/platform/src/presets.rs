//! Ready-made platform configurations (evaluation Table T1).
//!
//! Four presets span the deployment spectrum the paper targets, from a
//! two-socket accelerator-dense HPC node down to an embedded SoC:
//!
//! | preset | devices | interconnect |
//! |---|---|---|
//! | [`workstation`] | 2×CPU, 1×GPU | DRAM + PCIe 3.0 |
//! | [`hpc_node`] | 2×CPU, 4×GPU, 1×FPGA, 1×ASIC | DRAM + PCIe 4.0 + NVLink |
//! | [`cluster`] | n×(CPU+GPU) nodes | PCIe intra-node, 100 GbE inter-node |
//! | [`edge_soc`] | 1×CPU, 1×DSP, 1×NPU | shared on-chip bus |
//!
//! Parameters are ballpark public-datasheet figures; scheduling results
//! depend on their *ratios*, which match real 2021-era hardware.

use helios_sim::SimDuration;

use crate::cost::KernelClass;
use crate::device::{DeviceBuilder, DeviceId, DeviceKind};
use crate::interconnect::{InterconnectBuilder, Link};
use crate::platform::{Platform, PlatformBuilder};

fn us(micros: f64) -> SimDuration {
    SimDuration::from_secs(micros * 1e-6)
}

/// A developer workstation: two CPU sockets and one discrete GPU on
/// PCIe 3.0 x16 (16 GB/s).
#[must_use]
pub fn workstation() -> Platform {
    let mut b = PlatformBuilder::new("workstation");
    let cpu0 = b.add_device(
        DeviceBuilder::new("cpu0", DeviceKind::Cpu)
            .build()
            .expect("preset device parameters are valid"),
    );
    let cpu1 = b.add_device(
        DeviceBuilder::new("cpu1", DeviceKind::Cpu)
            .build()
            .expect("preset device parameters are valid"),
    );
    let gpu0 = b.add_device(
        DeviceBuilder::new("gpu0", DeviceKind::Gpu)
            .peak_gflops(7_000.0)
            .mem_bandwidth_gbs(450.0)
            .build()
            .expect("preset device parameters are valid"),
    );

    let mut ic = InterconnectBuilder::new();
    let dram = ic.add_link(Link::new("dram", 50.0, us(0.2)).expect("valid link"));
    let pcie = ic.add_link(Link::new("pcie3-x16", 16.0, us(5.0)).expect("valid link"));
    ic.route_symmetric(cpu0, cpu1, vec![dram]);
    ic.route_symmetric(cpu0, gpu0, vec![pcie]);
    ic.route_symmetric(cpu1, gpu0, vec![pcie]);
    b.interconnect(ic.build());
    b.build().expect("preset platform is valid")
}

/// An accelerator-dense HPC node: 2 CPU sockets, 4 GPUs (NVLink mesh),
/// one FPGA and one ML ASIC, all hanging off PCIe 4.0.
#[must_use]
pub fn hpc_node() -> Platform {
    hpc_node_with_gpus(4)
}

/// [`hpc_node`] with a configurable GPU count (speedup experiment F4).
/// `gpus` may be zero.
#[must_use]
pub fn hpc_node_with_gpus(gpus: usize) -> Platform {
    let mut b = PlatformBuilder::new("hpc_node");
    let mut cpus = Vec::new();
    for i in 0..2 {
        cpus.push(
            b.add_device(
                DeviceBuilder::new(format!("cpu{i}"), DeviceKind::Cpu)
                    .peak_gflops(800.0)
                    .mem_bandwidth_gbs(100.0)
                    .build()
                    .expect("preset device parameters are valid"),
            ),
        );
    }
    let mut gpu_ids = Vec::new();
    for i in 0..gpus {
        gpu_ids.push(
            b.add_device(
                DeviceBuilder::new(format!("gpu{i}"), DeviceKind::Gpu)
                    .build()
                    .expect("preset device parameters are valid"),
            ),
        );
    }
    let fpga = b.add_device(
        DeviceBuilder::new("fpga0", DeviceKind::Fpga)
            .build()
            .expect("preset device parameters are valid"),
    );
    let asic = b.add_device(
        DeviceBuilder::new("asic0", DeviceKind::Asic)
            .build()
            .expect("preset device parameters are valid"),
    );

    let mut ic = InterconnectBuilder::new();
    let dram = ic.add_link(Link::new("dram", 80.0, us(0.2)).expect("valid link"));
    let pcie = ic.add_link(Link::new("pcie4-x16", 32.0, us(5.0)).expect("valid link"));
    let nvlink = ic.add_link(Link::new("nvlink", 300.0, us(1.0)).expect("valid link"));
    ic.route_symmetric(cpus[0], cpus[1], vec![dram]);
    let accels: Vec<DeviceId> = gpu_ids.iter().copied().chain([fpga, asic]).collect();
    for &cpu in &cpus {
        for &acc in &accels {
            ic.route_symmetric(cpu, acc, vec![pcie]);
        }
    }
    // GPU↔GPU over NVLink; every other accelerator pair bounces through
    // host PCIe (two hops).
    for (i, &a) in accels.iter().enumerate() {
        for &bdev in &accels[i + 1..] {
            let both_gpu = gpu_ids.contains(&a) && gpu_ids.contains(&bdev);
            if both_gpu {
                ic.route_symmetric(a, bdev, vec![nvlink]);
            } else {
                ic.route_symmetric(a, bdev, vec![pcie, pcie]);
            }
        }
    }
    b.interconnect(ic.build());
    b.build().expect("preset platform is valid")
}

/// A small cluster of `nodes` identical CPU+GPU nodes connected by
/// 100 GbE (12.5 GB/s, 50 µs).
///
/// # Panics
///
/// Panics if `nodes` is zero.
#[must_use]
pub fn cluster(nodes: usize) -> Platform {
    assert!(nodes > 0, "cluster needs at least one node");
    let mut b = PlatformBuilder::new(format!("cluster{nodes}"));
    let mut node_devs = Vec::new();
    for n in 0..nodes {
        let cpu = b.add_device(
            DeviceBuilder::new(format!("node{n}-cpu"), DeviceKind::Cpu)
                .build()
                .expect("preset device parameters are valid"),
        );
        let gpu = b.add_device(
            DeviceBuilder::new(format!("node{n}-gpu"), DeviceKind::Gpu)
                .build()
                .expect("preset device parameters are valid"),
        );
        node_devs.push((cpu, gpu));
    }
    let mut ic = InterconnectBuilder::new();
    let pcie = ic.add_link(Link::new("pcie4-x16", 32.0, us(5.0)).expect("valid link"));
    let eth = ic.add_link(Link::new("100gbe", 12.5, us(50.0)).expect("valid link"));
    for (i, &(cpu_a, gpu_a)) in node_devs.iter().enumerate() {
        ic.route_symmetric(cpu_a, gpu_a, vec![pcie]);
        for &(cpu_b, gpu_b) in &node_devs[i + 1..] {
            ic.route_symmetric(cpu_a, cpu_b, vec![eth]);
            ic.route_symmetric(cpu_a, gpu_b, vec![eth, pcie]);
            ic.route_symmetric(gpu_a, cpu_b, vec![pcie, eth]);
            ic.route_symmetric(gpu_a, gpu_b, vec![pcie, eth, pcie]);
        }
    }
    b.interconnect(ic.build());
    b.build().expect("preset platform is valid")
}

/// An embedded discovery-instrument SoC: a small CPU, a DSP and a tiny
/// NPU on a shared 10 GB/s on-chip bus.
#[must_use]
pub fn edge_soc() -> Platform {
    let mut b = PlatformBuilder::new("edge_soc");
    let cpu = b.add_device(
        DeviceBuilder::new("cpu0", DeviceKind::Cpu)
            .peak_gflops(20.0)
            .mem_bandwidth_gbs(8.0)
            .memory_gb(4.0)
            .build()
            .expect("preset device parameters are valid"),
    );
    let dsp = b.add_device(
        DeviceBuilder::new("dsp0", DeviceKind::Dsp)
            .build()
            .expect("preset device parameters are valid"),
    );
    let npu = b.add_device(
        DeviceBuilder::new("npu0", DeviceKind::Asic)
            .peak_gflops(4_000.0)
            .mem_bandwidth_gbs(30.0)
            .memory_gb(1.0)
            // An NPU has no scalar pipeline to speak of; emulating branchy
            // control flow on it is slower than the SoC's small CPU.
            .affinity(KernelClass::BranchyScalar, 0.001)
            .build()
            .expect("preset device parameters are valid"),
    );
    let mut ic = InterconnectBuilder::new();
    let bus = ic.add_link(Link::new("soc-bus", 10.0, us(0.5)).expect("valid link"));
    ic.default_link(bus);
    let _ = (cpu, dsp, npu);
    b.interconnect(ic.build());
    b.build().expect("preset platform is valid")
}

/// A synthetic node of `devices` CPU-class devices whose peak rates are
/// drawn log-uniformly from `[500/(1+h), 500·(1+h)]` GFLOP/s — the
/// *machine heterogeneity* knob of the list-scheduling literature.
/// `h = 0` yields a homogeneous node; larger `h` widens the speed
/// spread (and with it, the gap between placement-aware schedulers and
/// naive ones). Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `devices == 0` or `h` is negative/non-finite.
#[must_use]
pub fn heterogeneous_node(devices: usize, h: f64, seed: u64) -> Platform {
    assert!(devices > 0, "need at least one device");
    assert!(h.is_finite() && h >= 0.0, "heterogeneity {h} must be >= 0");
    let mut rng = helios_sim::SimRng::seed_from(seed ^ 0x4E7E);
    let mut b = PlatformBuilder::new(format!("hetero-h{h}"));
    for i in 0..devices {
        let factor = if h == 0.0 {
            1.0
        } else {
            let lo = (1.0 / (1.0 + h)).ln();
            let hi = (1.0 + h).ln();
            rng.uniform(lo, hi).exp()
        };
        b.add_device(
            DeviceBuilder::new(format!("dev{i}"), DeviceKind::Cpu)
                .peak_gflops(500.0 * factor)
                .mem_bandwidth_gbs(80.0 * factor)
                .build()
                .expect("parameters are valid"),
        );
    }
    let mut ic = InterconnectBuilder::new();
    let bus = ic.add_link(Link::new("bus", 32.0, us(1.0)).expect("valid link"));
    ic.default_link(bus);
    b.interconnect(ic.build());
    b.build().expect("platform is valid")
}

/// All presets paired with their names, for tables and sweeps.
#[must_use]
pub fn all() -> Vec<Platform> {
    vec![workstation(), hpc_node(), cluster(16), edge_soc()]
}

/// Resolves a preset by its CLI/spec-file name: `workstation`,
/// `hpc_node`, `cluster<N>` (e.g. `cluster4`) or `edge_soc`. Returns
/// `None` for anything else, including `cluster0`.
#[must_use]
pub fn by_name(name: &str) -> Option<Platform> {
    match name {
        "workstation" => Some(workstation()),
        "hpc_node" => Some(hpc_node()),
        "edge_soc" => Some(edge_soc()),
        other => other
            .strip_prefix("cluster")
            .and_then(|n| n.parse::<usize>().ok())
            .filter(|&nodes| nodes >= 1)
            .map(cluster),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::ComputeCost;

    #[test]
    fn by_name_resolves_presets() {
        assert_eq!(by_name("workstation").unwrap().name(), "workstation");
        assert_eq!(by_name("hpc_node").unwrap().name(), "hpc_node");
        assert_eq!(by_name("edge_soc").unwrap().name(), "edge_soc");
        let cluster = by_name("cluster3").unwrap();
        assert_eq!(cluster.num_devices(), super::cluster(3).num_devices());
        for bad in ["cluster0", "cluster", "clusterx", "laptop", ""] {
            assert!(by_name(bad).is_none(), "{bad:?} must not resolve");
        }
    }

    #[test]
    fn all_presets_build_and_route() {
        for p in all() {
            assert!(p.num_devices() > 0, "{}", p.name());
            // Every ordered pair must have a route.
            for a in 0..p.num_devices() {
                for b in 0..p.num_devices() {
                    let t = p
                        .transfer_time(1e6, DeviceId(a), DeviceId(b))
                        .unwrap_or_else(|e| panic!("{}: no route {a}->{b}: {e}", p.name()));
                    if a == b {
                        assert_eq!(t, SimDuration::ZERO);
                    } else {
                        assert!(t.as_secs() > 0.0);
                    }
                }
            }
        }
    }

    #[test]
    fn hpc_node_census() {
        let p = hpc_node();
        assert_eq!(p.devices_of_kind(DeviceKind::Cpu).count(), 2);
        assert_eq!(p.devices_of_kind(DeviceKind::Gpu).count(), 4);
        assert_eq!(p.devices_of_kind(DeviceKind::Fpga).count(), 1);
        assert_eq!(p.devices_of_kind(DeviceKind::Asic).count(), 1);
        assert_eq!(p.num_devices(), 8);
    }

    #[test]
    fn hpc_node_gpu_count_configurable() {
        assert_eq!(
            hpc_node_with_gpus(0)
                .devices_of_kind(DeviceKind::Gpu)
                .count(),
            0
        );
        assert_eq!(
            hpc_node_with_gpus(8)
                .devices_of_kind(DeviceKind::Gpu)
                .count(),
            8
        );
    }

    #[test]
    fn nvlink_beats_pcie_between_gpus() {
        let p = hpc_node();
        let gpu0 = p.device_by_name("gpu0").unwrap().id();
        let gpu1 = p.device_by_name("gpu1").unwrap().id();
        let fpga = p.device_by_name("fpga0").unwrap().id();
        let bytes = 1e9;
        let gg = p.transfer_time(bytes, gpu0, gpu1).unwrap();
        let gf = p.transfer_time(bytes, gpu0, fpga).unwrap();
        assert!(gg < gf, "NVLink route must beat double-PCIe route");
    }

    #[test]
    fn cluster_scales_in_devices() {
        let p = cluster(4);
        assert_eq!(p.num_devices(), 8);
        // Cross-node transfer pays the ethernet latency.
        let a = p.device_by_name("node0-cpu").unwrap().id();
        let b = p.device_by_name("node1-cpu").unwrap().id();
        let t = p.transfer_time(0.0, a, b).unwrap();
        assert!(t.as_secs() >= 49e-6);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn cluster_zero_panics() {
        let _ = cluster(0);
    }

    #[test]
    fn edge_npu_dominates_dense_but_not_branchy() {
        let p = edge_soc();
        let cpu = p.device_by_name("cpu0").unwrap();
        let npu = p.device_by_name("npu0").unwrap();
        let dense = ComputeCost::new(10.0, 0.0, KernelClass::DenseLinearAlgebra);
        let branchy = ComputeCost::new(10.0, 0.0, KernelClass::BranchyScalar);
        assert!(
            npu.execution_time(&dense, npu.nominal_level()).unwrap()
                < cpu.execution_time(&dense, cpu.nominal_level()).unwrap()
        );
        assert!(
            npu.execution_time(&branchy, npu.nominal_level()).unwrap()
                > cpu.execution_time(&branchy, cpu.nominal_level()).unwrap()
        );
    }
}

#[cfg(test)]
mod hetero_tests {
    use super::*;

    #[test]
    fn heterogeneity_knob_controls_speed_spread() {
        let homo = heterogeneous_node(8, 0.0, 1);
        let speeds: Vec<f64> = homo.devices().iter().map(|d| d.peak_gflops()).collect();
        assert!(speeds.iter().all(|&s| (s - 500.0).abs() < 1e-9));

        let hetero = heterogeneous_node(8, 7.0, 1);
        let speeds: Vec<f64> = hetero.devices().iter().map(|d| d.peak_gflops()).collect();
        let max = speeds.iter().copied().fold(0.0f64, f64::max);
        let min = speeds.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(max / min > 2.0, "spread {}..{}", min, max);
        assert!(speeds
            .iter()
            .all(|&s| (500.0 / 8.0 - 1e-6..=4000.0 + 1e-6).contains(&s)));
        // Deterministic.
        let again = heterogeneous_node(8, 7.0, 1);
        assert_eq!(hetero, again);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn zero_devices_panics() {
        let _ = heterogeneous_node(0, 1.0, 0);
    }
}
