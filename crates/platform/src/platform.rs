//! The [`Platform`] aggregate: devices + interconnect.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use helios_sim::SimDuration;

use crate::cost::ComputeCost;
use crate::device::{Device, DeviceId, DeviceKind};
use crate::error::PlatformError;
use crate::interconnect::Interconnect;

/// A complete heterogeneous computing platform.
///
/// Construct with [`PlatformBuilder`] or one of the
/// [`presets`](crate::presets).
///
/// # Examples
///
/// ```
/// use helios_platform::{DeviceBuilder, DeviceKind, Interconnect, PlatformBuilder};
/// use helios_sim::SimDuration;
///
/// let mut b = PlatformBuilder::new("two-device");
/// b.add_device(DeviceBuilder::new("cpu0", DeviceKind::Cpu).build()?);
/// b.add_device(DeviceBuilder::new("gpu0", DeviceKind::Gpu).build()?);
/// b.interconnect(Interconnect::shared_bus(16.0, SimDuration::from_secs(5e-6))?);
/// let platform = b.build()?;
/// assert_eq!(platform.num_devices(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    name: String,
    devices: Vec<Device>,
    interconnect: Interconnect,
}

impl Platform {
    /// The platform's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All devices, in id order.
    #[must_use]
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Number of devices.
    #[must_use]
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Looks up a device by id.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::UnknownDevice`] for an out-of-range id.
    pub fn device(&self, id: DeviceId) -> Result<&Device, PlatformError> {
        self.devices
            .get(id.0)
            .ok_or(PlatformError::UnknownDevice(id.0))
    }

    /// Looks up a device by name.
    #[must_use]
    pub fn device_by_name(&self, name: &str) -> Option<&Device> {
        self.devices.iter().find(|d| d.name() == name)
    }

    /// All devices of a given kind, in id order.
    pub fn devices_of_kind(&self, kind: DeviceKind) -> impl Iterator<Item = &Device> {
        self.devices.iter().filter(move |d| d.kind() == kind)
    }

    /// Count of devices per kind (for reporting).
    #[must_use]
    pub fn kind_census(&self) -> BTreeMap<DeviceKind, usize> {
        let mut census = BTreeMap::new();
        for d in &self.devices {
            *census.entry(d.kind()).or_insert(0) += 1;
        }
        census
    }

    /// The communication topology.
    #[must_use]
    pub fn interconnect(&self) -> &Interconnect {
        &self.interconnect
    }

    /// Returns a copy of the platform with a different interconnect
    /// (used by bandwidth-sensitivity experiments).
    #[must_use]
    pub fn with_interconnect(&self, interconnect: Interconnect) -> Platform {
        Platform {
            name: self.name.clone(),
            devices: self.devices.clone(),
            interconnect,
        }
    }

    /// Builds the platform that remains after every device *not* in
    /// `keep` has failed permanently.
    ///
    /// Surviving devices are re-indexed densely in the order given (pass
    /// ascending original ids to keep relative order), so the new id of
    /// `keep[i]` is `DeviceId(i)`. Links are copied verbatim and every
    /// surviving route — including routes that were served by the default
    /// link — is materialized explicitly; pairs that had no route keep
    /// having none.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::Empty`] if `keep` is empty and
    /// [`PlatformError::UnknownDevice`] for an out-of-range id.
    pub fn survivors(&self, keep: &[DeviceId]) -> Result<Platform, PlatformError> {
        if keep.is_empty() {
            return Err(PlatformError::Empty);
        }
        let mut builder = PlatformBuilder::new(format!("{}+survivors", self.name));
        for &id in keep {
            builder.add_device(self.device(id)?.clone());
        }
        let mut ic = crate::interconnect::InterconnectBuilder::new();
        for link in self.interconnect.links() {
            ic.add_link(link.clone());
        }
        for (new_from, &from) in keep.iter().enumerate() {
            for (new_to, &to) in keep.iter().enumerate() {
                if from == to {
                    continue;
                }
                if let Ok(route) = self.interconnect.route(from, to) {
                    ic.route(DeviceId(new_from), DeviceId(new_to), route);
                }
            }
        }
        builder.interconnect(ic.build());
        builder.build()
    }

    /// Time to move `bytes` between two devices.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::NoRoute`] if the pair has no route.
    pub fn transfer_time(
        &self,
        bytes: f64,
        from: DeviceId,
        to: DeviceId,
    ) -> Result<SimDuration, PlatformError> {
        self.interconnect.transfer_time(bytes, from, to)
    }

    /// Execution time of `cost` on device `id` at its nominal DVFS state.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::UnknownDevice`] for an out-of-range id.
    pub fn execution_time(
        &self,
        cost: &ComputeCost,
        id: DeviceId,
    ) -> Result<SimDuration, PlatformError> {
        let d = self.device(id)?;
        d.execution_time(cost, d.nominal_level())
    }

    /// Mean nominal execution time of `cost` across all devices — the
    /// quantity HEFT-family schedulers use for upward ranks.
    ///
    /// # Errors
    ///
    /// Propagates device model errors (none occur for valid platforms).
    pub fn mean_execution_time(&self, cost: &ComputeCost) -> Result<SimDuration, PlatformError> {
        let mut total = SimDuration::ZERO;
        for d in &self.devices {
            total += d.execution_time(cost, d.nominal_level())?;
        }
        Ok(total / self.devices.len() as f64)
    }

    /// Mean transfer time for `bytes` over all ordered device pairs with
    /// distinct endpoints — the communication analogue of
    /// [`Platform::mean_execution_time`].
    ///
    /// Returns zero for single-device platforms.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::NoRoute`] if any pair has no route.
    pub fn mean_transfer_time(&self, bytes: f64) -> Result<SimDuration, PlatformError> {
        let n = self.devices.len();
        if n < 2 {
            return Ok(SimDuration::ZERO);
        }
        let mut total = SimDuration::ZERO;
        let mut pairs = 0u32;
        for from in 0..n {
            for to in 0..n {
                if from != to {
                    total += self.transfer_time(bytes, DeviceId(from), DeviceId(to))?;
                    pairs += 1;
                }
            }
        }
        Ok(total / f64::from(pairs))
    }
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} devices:", self.name, self.devices.len())?;
        for (kind, count) in self.kind_census() {
            write!(f, " {count}×{kind}")?;
        }
        write!(f, ")")
    }
}

/// Builder for [`Platform`].
#[derive(Debug, Clone)]
pub struct PlatformBuilder {
    name: String,
    devices: Vec<Device>,
    interconnect: Option<Interconnect>,
}

impl PlatformBuilder {
    /// Starts building a platform named `name`.
    #[must_use]
    pub fn new(name: impl Into<String>) -> PlatformBuilder {
        PlatformBuilder {
            name: name.into(),
            devices: Vec::new(),
            interconnect: None,
        }
    }

    /// Adds a device, assigning and returning its id.
    pub fn add_device(&mut self, mut device: Device) -> DeviceId {
        let id = DeviceId(self.devices.len());
        device.id = id;
        self.devices.push(device);
        id
    }

    /// Sets the interconnect. Without one, `build` falls back to a shared
    /// 16 GB/s bus with 5 µs latency.
    pub fn interconnect(&mut self, interconnect: Interconnect) -> &mut Self {
        self.interconnect = Some(interconnect);
        self
    }

    /// Finalizes the platform.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::Empty`] if no devices were added, or
    /// [`PlatformError::DuplicateName`] if two devices share a name.
    pub fn build(self) -> Result<Platform, PlatformError> {
        if self.devices.is_empty() {
            return Err(PlatformError::Empty);
        }
        let mut names = std::collections::BTreeSet::new();
        for d in &self.devices {
            if !names.insert(d.name().to_owned()) {
                return Err(PlatformError::DuplicateName(d.name().to_owned()));
            }
        }
        let interconnect = match self.interconnect {
            Some(ic) => ic,
            None => Interconnect::shared_bus(16.0, SimDuration::from_secs(5e-6))
                .expect("fallback bus parameters are valid"),
        };
        Ok(Platform {
            name: self.name,
            devices: self.devices,
            interconnect,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::KernelClass;
    use crate::device::DeviceBuilder;

    fn two_device() -> Platform {
        let mut b = PlatformBuilder::new("test");
        b.add_device(DeviceBuilder::new("cpu0", DeviceKind::Cpu).build().unwrap());
        b.add_device(DeviceBuilder::new("gpu0", DeviceKind::Gpu).build().unwrap());
        b.build().unwrap()
    }

    #[test]
    fn ids_are_assigned_in_order() {
        let p = two_device();
        assert_eq!(p.device(DeviceId(0)).unwrap().name(), "cpu0");
        assert_eq!(p.device(DeviceId(1)).unwrap().name(), "gpu0");
        assert_eq!(p.device(DeviceId(1)).unwrap().id(), DeviceId(1));
        assert!(matches!(
            p.device(DeviceId(9)),
            Err(PlatformError::UnknownDevice(9))
        ));
    }

    #[test]
    fn lookup_by_name_and_kind() {
        let p = two_device();
        assert!(p.device_by_name("gpu0").is_some());
        assert!(p.device_by_name("nope").is_none());
        assert_eq!(p.devices_of_kind(DeviceKind::Gpu).count(), 1);
        assert_eq!(p.devices_of_kind(DeviceKind::Fpga).count(), 0);
        let census = p.kind_census();
        assert_eq!(census[&DeviceKind::Cpu], 1);
    }

    #[test]
    fn empty_platform_rejected() {
        assert!(matches!(
            PlatformBuilder::new("e").build(),
            Err(PlatformError::Empty)
        ));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut b = PlatformBuilder::new("d");
        b.add_device(DeviceBuilder::new("x", DeviceKind::Cpu).build().unwrap());
        b.add_device(DeviceBuilder::new("x", DeviceKind::Gpu).build().unwrap());
        assert!(matches!(
            b.build(),
            Err(PlatformError::DuplicateName(n)) if n == "x"
        ));
    }

    #[test]
    fn mean_execution_time_averages() {
        let p = two_device();
        let cost = ComputeCost::new(450.0, 0.0, KernelClass::DenseLinearAlgebra);
        let t_cpu = p.execution_time(&cost, DeviceId(0)).unwrap();
        let t_gpu = p.execution_time(&cost, DeviceId(1)).unwrap();
        let mean = p.mean_execution_time(&cost).unwrap();
        let expect = (t_cpu.as_secs() + t_gpu.as_secs()) / 2.0;
        assert!((mean.as_secs() - expect).abs() < 1e-12);
    }

    #[test]
    fn mean_transfer_time_symmetric_bus() {
        let p = two_device();
        let one = p.transfer_time(1e9, DeviceId(0), DeviceId(1)).unwrap();
        let mean = p.mean_transfer_time(1e9).unwrap();
        assert_eq!(one, mean);

        let mut single = PlatformBuilder::new("s");
        single.add_device(DeviceBuilder::new("c", DeviceKind::Cpu).build().unwrap());
        let single = single.build().unwrap();
        assert_eq!(single.mean_transfer_time(1e9).unwrap(), SimDuration::ZERO);
    }

    #[test]
    fn with_interconnect_swaps_topology() {
        let p = two_device();
        let slow = Interconnect::shared_bus(1.0, SimDuration::ZERO).unwrap();
        let p2 = p.with_interconnect(slow);
        let t1 = p.transfer_time(8e9, DeviceId(0), DeviceId(1)).unwrap();
        let t2 = p2.transfer_time(8e9, DeviceId(0), DeviceId(1)).unwrap();
        assert!(t2 > t1);
        assert_eq!(p2.name(), p.name());
    }

    #[test]
    fn survivors_reindexes_and_keeps_routes() {
        let mut b = PlatformBuilder::new("tri");
        b.add_device(DeviceBuilder::new("cpu0", DeviceKind::Cpu).build().unwrap());
        b.add_device(DeviceBuilder::new("gpu0", DeviceKind::Gpu).build().unwrap());
        b.add_device(DeviceBuilder::new("gpu1", DeviceKind::Gpu).build().unwrap());
        let p = b.build().unwrap();

        let sub = p.survivors(&[DeviceId(0), DeviceId(2)]).unwrap();
        assert_eq!(sub.num_devices(), 2);
        assert_eq!(sub.device(DeviceId(0)).unwrap().name(), "cpu0");
        assert_eq!(sub.device(DeviceId(1)).unwrap().name(), "gpu1");
        assert_eq!(sub.device(DeviceId(1)).unwrap().id(), DeviceId(1));
        // The shared-bus default route must survive re-indexing, with the
        // same transfer time the pair had on the full platform.
        let full = p.transfer_time(1e9, DeviceId(0), DeviceId(2)).unwrap();
        let kept = sub.transfer_time(1e9, DeviceId(0), DeviceId(1)).unwrap();
        assert_eq!(full, kept);

        assert!(matches!(p.survivors(&[]), Err(PlatformError::Empty)));
        assert!(matches!(
            p.survivors(&[DeviceId(7)]),
            Err(PlatformError::UnknownDevice(7))
        ));
    }

    #[test]
    fn display_shows_census() {
        let p = two_device();
        let s = p.to_string();
        assert!(s.contains("1×cpu") && s.contains("1×gpu"), "{s}");
    }
}
