//! DVFS states, power and sleep models.
//!
//! Dynamic voltage and frequency scaling is the primary energy-management
//! knob on heterogeneous devices. A device exposes a sorted list of
//! [`DvfsState`]s; its [`PowerModel`] maps a state to dissipated power with
//! the standard CMOS model `P = P_static + C_eff · V² · f`, and its
//! [`SleepModel`] covers dynamic resource sleep (DRS): a deep low-power
//! state with a wake-up latency.

use serde::{Deserialize, Serialize};

use helios_sim::SimDuration;

use crate::error::{non_negative, positive, PlatformError};

/// Index of a DVFS state within a device's state table (0 = slowest).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct DvfsLevel(pub usize);

impl std::fmt::Display for DvfsLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// One voltage/frequency operating point.
///
/// # Examples
///
/// ```
/// use helios_platform::DvfsState;
///
/// let s = DvfsState::new(1.5, 1.0)?;
/// assert_eq!(s.frequency_ghz(), 1.5);
/// # Ok::<(), helios_platform::PlatformError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DvfsState {
    frequency_ghz: f64,
    voltage_v: f64,
}

impl DvfsState {
    /// Creates an operating point at `frequency_ghz` GHz and `voltage_v`
    /// volts.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidParameter`] if either value is not
    /// positive and finite.
    pub fn new(frequency_ghz: f64, voltage_v: f64) -> Result<DvfsState, PlatformError> {
        Ok(DvfsState {
            frequency_ghz: positive("frequency_ghz", frequency_ghz)?,
            voltage_v: positive("voltage_v", voltage_v)?,
        })
    }

    /// Clock frequency in GHz.
    #[must_use]
    pub fn frequency_ghz(&self) -> f64 {
        self.frequency_ghz
    }

    /// Supply voltage in volts.
    #[must_use]
    pub fn voltage_v(&self) -> f64 {
        self.voltage_v
    }
}

/// CMOS-style device power model.
///
/// Active power at state `s` is `static_w + ceff · V(s)² · f(s)`, with `f`
/// in GHz — `ceff` therefore carries units of W/(V²·GHz). Idle power is
/// dissipated whenever the device is powered but not executing; sleep power
/// (see [`SleepModel`]) applies only when DRS has parked the device.
///
/// # Examples
///
/// ```
/// use helios_platform::{DvfsState, PowerModel};
///
/// let pm = PowerModel::new(10.0, 20.0, 5.0)?;
/// let hi = DvfsState::new(2.0, 1.2)?;
/// let lo = DvfsState::new(1.0, 0.8)?;
/// assert!(pm.active_power(&hi) > pm.active_power(&lo));
/// # Ok::<(), helios_platform::PlatformError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    static_w: f64,
    ceff: f64,
    idle_w: f64,
}

impl PowerModel {
    /// Creates a power model.
    ///
    /// * `static_w` — leakage power drawn at any active state, in watts,
    /// * `ceff` — effective switched capacitance coefficient, W/(V²·GHz),
    /// * `idle_w` — power when powered-on but idle, in watts.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidParameter`] if any value is negative
    /// or not finite.
    pub fn new(static_w: f64, ceff: f64, idle_w: f64) -> Result<PowerModel, PlatformError> {
        Ok(PowerModel {
            static_w: non_negative("static_w", static_w)?,
            ceff: non_negative("ceff", ceff)?,
            idle_w: non_negative("idle_w", idle_w)?,
        })
    }

    /// Power dissipated while executing at `state`, in watts.
    #[must_use]
    pub fn active_power(&self, state: &DvfsState) -> f64 {
        self.static_w + self.ceff * state.voltage_v.powi(2) * state.frequency_ghz
    }

    /// Power dissipated while powered but idle, in watts.
    #[must_use]
    pub fn idle_power(&self) -> f64 {
        self.idle_w
    }

    /// Leakage (static) component, in watts.
    #[must_use]
    pub fn static_power(&self) -> f64 {
        self.static_w
    }

    /// Energy in joules for executing for `duration` at `state`.
    #[must_use]
    pub fn active_energy(&self, state: &DvfsState, duration: SimDuration) -> f64 {
        self.active_power(state) * duration.as_secs()
    }

    /// Energy in joules for idling for `duration`.
    #[must_use]
    pub fn idle_energy(&self, duration: SimDuration) -> f64 {
        self.idle_w * duration.as_secs()
    }
}

/// Dynamic-resource-sleep (DRS) model: deep sleep power and wake latency.
///
/// # Examples
///
/// ```
/// use helios_platform::SleepModel;
/// use helios_sim::SimDuration;
///
/// let drs = SleepModel::new(0.5, SimDuration::from_secs(0.002))?;
/// assert_eq!(drs.sleep_power_w(), 0.5);
/// # Ok::<(), helios_platform::PlatformError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SleepModel {
    sleep_power_w: f64,
    wake_latency: SimDuration,
}

impl SleepModel {
    /// Creates a sleep model drawing `sleep_power_w` watts while parked and
    /// requiring `wake_latency` to resume execution.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidParameter`] if `sleep_power_w` is
    /// negative or not finite.
    pub fn new(sleep_power_w: f64, wake_latency: SimDuration) -> Result<SleepModel, PlatformError> {
        Ok(SleepModel {
            sleep_power_w: non_negative("sleep_power_w", sleep_power_w)?,
            wake_latency,
        })
    }

    /// Power drawn while sleeping, in watts.
    #[must_use]
    pub fn sleep_power_w(&self) -> f64 {
        self.sleep_power_w
    }

    /// Latency to wake from sleep.
    #[must_use]
    pub fn wake_latency(&self) -> SimDuration {
        self.wake_latency
    }

    /// Energy in joules spent sleeping for `duration`.
    #[must_use]
    pub fn sleep_energy(&self, duration: SimDuration) -> f64 {
        self.sleep_power_w * duration.as_secs()
    }

    /// The minimum idle span for which sleeping beats idling, given the
    /// device's idle power: below this break-even the wake latency and the
    /// idle/sleep delta do not pay off. Returns `None` when sleeping never
    /// saves energy (sleep power ≥ idle power).
    #[must_use]
    pub fn break_even(&self, idle_power_w: f64) -> Option<SimDuration> {
        if self.sleep_power_w >= idle_power_w {
            return None;
        }
        // Sleeping for span T costs sleep_power·T; idling costs idle·T.
        // Waking costs an extra wake_latency at (approximated) idle power.
        let delta = idle_power_w - self.sleep_power_w;
        let overhead_j = idle_power_w * self.wake_latency.as_secs();
        Some(SimDuration::from_secs(overhead_j / delta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_validates() {
        assert!(DvfsState::new(0.0, 1.0).is_err());
        assert!(DvfsState::new(1.0, -1.0).is_err());
        assert!(DvfsState::new(f64::INFINITY, 1.0).is_err());
        let s = DvfsState::new(2.5, 1.1).unwrap();
        assert_eq!(s.frequency_ghz(), 2.5);
        assert_eq!(s.voltage_v(), 1.1);
    }

    #[test]
    fn power_is_monotone_in_frequency_and_voltage() {
        let pm = PowerModel::new(5.0, 10.0, 2.0).unwrap();
        let base = DvfsState::new(1.0, 1.0).unwrap();
        let faster = DvfsState::new(2.0, 1.0).unwrap();
        let hotter = DvfsState::new(1.0, 1.3).unwrap();
        assert!(pm.active_power(&faster) > pm.active_power(&base));
        assert!(pm.active_power(&hotter) > pm.active_power(&base));
        assert_eq!(pm.active_power(&base), 5.0 + 10.0);
        assert_eq!(pm.idle_power(), 2.0);
        assert_eq!(pm.static_power(), 5.0);
    }

    #[test]
    fn energies() {
        let pm = PowerModel::new(0.0, 10.0, 2.0).unwrap();
        let s = DvfsState::new(1.0, 1.0).unwrap();
        let d = SimDuration::from_secs(3.0);
        assert_eq!(pm.active_energy(&s, d), 30.0);
        assert_eq!(pm.idle_energy(d), 6.0);
    }

    #[test]
    fn sleep_break_even() {
        let drs = SleepModel::new(1.0, SimDuration::from_secs(0.1)).unwrap();
        // idle 5 W, sleep 1 W, wake costs 5 W × 0.1 s = 0.5 J, delta 4 W:
        // break-even = 0.125 s.
        let be = drs.break_even(5.0).unwrap();
        assert!((be.as_secs() - 0.125).abs() < 1e-12);
        // Sleeping that draws more than idle never pays.
        assert!(drs.break_even(0.5).is_none());
        assert_eq!(drs.sleep_energy(SimDuration::from_secs(2.0)), 2.0);
        assert_eq!(drs.wake_latency(), SimDuration::from_secs(0.1));
    }

    #[test]
    fn dvfs_level_display() {
        assert_eq!(DvfsLevel(2).to_string(), "P2");
    }
}
