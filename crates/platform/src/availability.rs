//! Dynamic device availability during a simulated run.
//!
//! The platform description itself is immutable; what changes over a run
//! is each device's *availability state*: healthy, degraded (still
//! executing, but slower by a known factor until repair) or down
//! (permanently lost). [`Availability`] tracks that state per device so
//! executors can ask "is this device usable, and at what speed?" without
//! mutating the shared [`Platform`](crate::Platform).

use helios_sim::SimTime;

use crate::device::DeviceId;
use crate::interconnect::LinkId;

/// Availability state of one device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeviceState {
    /// Fully available at nominal speed.
    Up,
    /// Available, but all work runs `factor` times slower until repair.
    Degraded {
        /// Slowdown multiplier applied to execution time (> 1).
        factor: f64,
    },
    /// Permanently failed; the device accepts no further work.
    Down,
}

/// Per-device availability tracker for a run.
///
/// # Examples
///
/// ```
/// use helios_platform::{Availability, DeviceId, DeviceState};
///
/// let mut avail = Availability::new(3);
/// assert_eq!(avail.num_up(), 3);
/// avail.set_degraded(DeviceId(1), 2.5);
/// avail.set_down(DeviceId(2));
/// assert_eq!(avail.num_up(), 2);
/// assert_eq!(avail.slowdown(DeviceId(1)), 2.5);
/// assert_eq!(avail.surviving(), vec![DeviceId(0), DeviceId(1)]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Availability {
    states: Vec<DeviceState>,
}

impl Availability {
    /// Creates a tracker with `num_devices` devices, all up.
    #[must_use]
    pub fn new(num_devices: usize) -> Availability {
        Availability {
            states: vec![DeviceState::Up; num_devices],
        }
    }

    /// Current state of `device`.
    ///
    /// # Panics
    ///
    /// Panics if `device` is out of range.
    #[must_use]
    pub fn state(&self, device: DeviceId) -> DeviceState {
        self.states[device.0]
    }

    /// Whether `device` can accept or continue work (up or degraded).
    #[must_use]
    pub fn is_up(&self, device: DeviceId) -> bool {
        !matches!(self.states[device.0], DeviceState::Down)
    }

    /// Execution-time multiplier for `device`: 1 when healthy, the
    /// degradation factor while degraded.
    ///
    /// # Panics
    ///
    /// Panics if the device is down — callers must not plan work there.
    #[must_use]
    pub fn slowdown(&self, device: DeviceId) -> f64 {
        match self.states[device.0] {
            DeviceState::Up => 1.0,
            DeviceState::Degraded { factor } => factor,
            DeviceState::Down => panic!("device {} is down", device.0),
        }
    }

    /// Marks `device` degraded by `factor` (> 1 slows it down).
    ///
    /// # Panics
    ///
    /// Panics if the device is already down or `factor` is not positive
    /// and finite.
    pub fn set_degraded(&mut self, device: DeviceId, factor: f64) {
        assert!(
            factor.is_finite() && factor > 0.0,
            "invalid degradation factor {factor}"
        );
        assert!(self.is_up(device), "cannot degrade a down device");
        self.states[device.0] = DeviceState::Degraded { factor };
    }

    /// Repairs a degraded device back to full speed. No-op when already
    /// up; panics if the device is down (permanent failures are final).
    pub fn repair(&mut self, device: DeviceId) {
        assert!(self.is_up(device), "cannot repair a down device");
        self.states[device.0] = DeviceState::Up;
    }

    /// Permanently removes `device` from service.
    pub fn set_down(&mut self, device: DeviceId) {
        self.states[device.0] = DeviceState::Down;
    }

    /// Number of devices still accepting work.
    #[must_use]
    pub fn num_up(&self) -> usize {
        self.states
            .iter()
            .filter(|s| !matches!(s, DeviceState::Down))
            .count()
    }

    /// Ids of devices still accepting work, in ascending id order.
    #[must_use]
    pub fn surviving(&self) -> Vec<DeviceId> {
        self.states
            .iter()
            .enumerate()
            .filter(|(_, s)| !matches!(s, DeviceState::Down))
            .map(|(i, _)| DeviceId(i))
            .collect()
    }
}

/// Availability state of one interconnect link.
///
/// Unlike devices, a down link is not necessarily gone for good: an
/// outage carries the instant the link comes back (`until`), and
/// `until = None` marks a permanent loss (e.g. a failed rack uplink),
/// which partitions whatever the link connected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkHealth {
    /// Fully available at nominal bandwidth.
    Up,
    /// Still moving data, but every transfer crossing it takes `factor`
    /// times longer until repair.
    Degraded {
        /// Transfer-time multiplier (> 1).
        factor: f64,
    },
    /// Carrying no data; repaired at `until`, or never when `None`.
    Down {
        /// Repair instant for a transient outage; `None` is permanent.
        until: Option<SimTime>,
    },
}

/// Per-link availability tracker for a run, the interconnect analogue of
/// [`Availability`].
///
/// # Examples
///
/// ```
/// use helios_platform::{LinkAvailability, LinkHealth, LinkId};
/// use helios_sim::SimTime;
///
/// let mut links = LinkAvailability::new(2);
/// links.set_down(LinkId(0), Some(SimTime::from_secs(2.0)));
/// links.set_degraded(LinkId(1), 4.0);
/// assert!(!links.is_up(LinkId(0)));
/// assert_eq!(links.slowdown(LinkId(1)), 4.0);
/// links.repair(LinkId(0));
/// assert!(links.is_up(LinkId(0)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinkAvailability {
    states: Vec<LinkHealth>,
}

impl LinkAvailability {
    /// Creates a tracker with `num_links` links, all up.
    #[must_use]
    pub fn new(num_links: usize) -> LinkAvailability {
        LinkAvailability {
            states: vec![LinkHealth::Up; num_links],
        }
    }

    /// Current state of `link`.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    #[must_use]
    pub fn state(&self, link: LinkId) -> LinkHealth {
        self.states[link.0]
    }

    /// Whether `link` is carrying data (up or degraded).
    #[must_use]
    pub fn is_up(&self, link: LinkId) -> bool {
        !matches!(self.states[link.0], LinkHealth::Down { .. })
    }

    /// Repair instant for a down link: `Some(Some(t))` when it comes
    /// back at `t`, `Some(None)` when it never does, `None` when the
    /// link is not down at all.
    #[must_use]
    pub fn down_until(&self, link: LinkId) -> Option<Option<SimTime>> {
        match self.states[link.0] {
            LinkHealth::Down { until } => Some(until),
            _ => None,
        }
    }

    /// Transfer-time multiplier for `link`: 1 when healthy, the
    /// degradation factor while degraded.
    ///
    /// # Panics
    ///
    /// Panics if the link is down — callers must not route over it.
    #[must_use]
    pub fn slowdown(&self, link: LinkId) -> f64 {
        match self.states[link.0] {
            LinkHealth::Up => 1.0,
            LinkHealth::Degraded { factor } => factor,
            LinkHealth::Down { .. } => panic!("link {} is down", link.0),
        }
    }

    /// Marks `link` degraded by `factor` (> 1 slows transfers down).
    /// Overwrites an outage: a repaired-but-degraded link carries data.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite.
    pub fn set_degraded(&mut self, link: LinkId, factor: f64) {
        assert!(
            factor.is_finite() && factor > 0.0,
            "invalid degradation factor {factor}"
        );
        self.states[link.0] = LinkHealth::Degraded { factor };
    }

    /// Takes `link` down; it comes back at `until`, or never when
    /// `None`.
    pub fn set_down(&mut self, link: LinkId, until: Option<SimTime>) {
        self.states[link.0] = LinkHealth::Down { until };
    }

    /// Restores `link` to full health (outages and degradations are both
    /// repairable; callers enforce that permanent losses stay down).
    pub fn repair(&mut self, link: LinkId) {
        self.states[link.0] = LinkHealth::Up;
    }

    /// Number of links currently carrying data.
    #[must_use]
    pub fn num_up(&self) -> usize {
        self.states
            .iter()
            .filter(|s| !matches!(s, LinkHealth::Down { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle() {
        let mut a = Availability::new(2);
        assert_eq!(a.state(DeviceId(0)), DeviceState::Up);
        assert_eq!(a.slowdown(DeviceId(0)), 1.0);
        a.set_degraded(DeviceId(0), 3.0);
        assert!(a.is_up(DeviceId(0)));
        assert_eq!(a.slowdown(DeviceId(0)), 3.0);
        a.repair(DeviceId(0));
        assert_eq!(a.slowdown(DeviceId(0)), 1.0);
        a.set_down(DeviceId(1));
        assert!(!a.is_up(DeviceId(1)));
        assert_eq!(a.num_up(), 1);
        assert_eq!(a.surviving(), vec![DeviceId(0)]);
    }

    #[test]
    #[should_panic(expected = "cannot degrade a down device")]
    fn degrading_a_down_device_panics() {
        let mut a = Availability::new(1);
        a.set_down(DeviceId(0));
        a.set_degraded(DeviceId(0), 2.0);
    }

    #[test]
    #[should_panic(expected = "is down")]
    fn slowdown_of_down_device_panics() {
        let mut a = Availability::new(1);
        a.set_down(DeviceId(0));
        let _ = a.slowdown(DeviceId(0));
    }

    #[test]
    fn link_lifecycle() {
        let mut l = LinkAvailability::new(3);
        assert_eq!(l.num_up(), 3);
        assert_eq!(l.state(LinkId(0)), LinkHealth::Up);
        assert_eq!(l.down_until(LinkId(0)), None);
        let back = SimTime::from_secs(1.5);
        l.set_down(LinkId(0), Some(back));
        assert!(!l.is_up(LinkId(0)));
        assert_eq!(l.down_until(LinkId(0)), Some(Some(back)));
        l.set_down(LinkId(1), None);
        assert_eq!(l.down_until(LinkId(1)), Some(None), "permanent loss");
        assert_eq!(l.num_up(), 1);
        l.set_degraded(LinkId(2), 3.0);
        assert_eq!(l.slowdown(LinkId(2)), 3.0);
        assert!(l.is_up(LinkId(2)));
        l.repair(LinkId(0));
        l.repair(LinkId(2));
        assert_eq!(l.slowdown(LinkId(0)), 1.0);
        assert_eq!(l.slowdown(LinkId(2)), 1.0);
    }

    #[test]
    #[should_panic(expected = "is down")]
    fn slowdown_of_down_link_panics() {
        let mut l = LinkAvailability::new(1);
        l.set_down(LinkId(0), None);
        let _ = l.slowdown(LinkId(0));
    }
}
