//! Interconnect topology and data-transfer cost model.
//!
//! Devices exchange data products over named [`Link`]s (PCIe, NVLink,
//! network fabric, on-chip bus). A [`Route`] is the ordered list of links a
//! transfer crosses; its cost is the sum of link latencies plus the payload
//! size divided by the bottleneck (minimum) bandwidth — the standard
//! wormhole/cut-through approximation used by workflow simulators.
//!
//! Transfers between a device and itself are free: the data product is
//! already resident.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use helios_sim::SimDuration;

use crate::device::DeviceId;
use crate::error::{positive, PlatformError};

/// Index of a link within an [`Interconnect`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct LinkId(pub usize);

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "link{}", self.0)
    }
}

/// A physical communication link.
///
/// # Examples
///
/// ```
/// use helios_platform::Link;
/// use helios_sim::SimDuration;
///
/// let pcie = Link::new("pcie4-x16", 32.0, SimDuration::from_secs(5e-6))?;
/// assert_eq!(pcie.bandwidth_gbs(), 32.0);
/// # Ok::<(), helios_platform::PlatformError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Link {
    name: String,
    bandwidth_gbs: f64,
    latency: SimDuration,
}

impl Link {
    /// Creates a link with `bandwidth_gbs` GB/s and one-way `latency`.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidParameter`] if the bandwidth is not
    /// positive and finite.
    pub fn new(
        name: impl Into<String>,
        bandwidth_gbs: f64,
        latency: SimDuration,
    ) -> Result<Link, PlatformError> {
        Ok(Link {
            name: name.into(),
            bandwidth_gbs: positive("bandwidth_gbs", bandwidth_gbs)?,
            latency,
        })
    }

    /// The link's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Bandwidth in GB/s.
    #[must_use]
    pub fn bandwidth_gbs(&self) -> f64 {
        self.bandwidth_gbs
    }

    /// One-way latency.
    #[must_use]
    pub fn latency(&self) -> SimDuration {
        self.latency
    }
}

/// An ordered sequence of links a transfer traverses.
pub type Route = Vec<LinkId>;

/// The complete communication topology of a platform.
///
/// Build with [`InterconnectBuilder`]. Pairs without an explicit route fall
/// back to the builder's default link, if one was set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Interconnect {
    links: Vec<Link>,
    #[serde(with = "route_map")]
    routes: BTreeMap<(usize, usize), Route>,
    default_link: Option<LinkId>,
}

/// Serde adapter: JSON object keys must be strings, so the route table
/// is flattened to a list of `(from, to, route)` entries on disk.
mod route_map {
    use std::collections::BTreeMap;

    use serde::de::Deserializer;
    use serde::ser::Serializer;
    use serde::{Deserialize, Serialize};

    use super::Route;

    pub fn serialize<S: Serializer>(
        map: &BTreeMap<(usize, usize), Route>,
        serializer: S,
    ) -> Result<S::Ok, S::Error> {
        let entries: Vec<(usize, usize, &Route)> =
            map.iter().map(|(&(a, b), r)| (a, b, r)).collect();
        entries.serialize(serializer)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(
        deserializer: D,
    ) -> Result<BTreeMap<(usize, usize), Route>, D::Error> {
        let entries: Vec<(usize, usize, Route)> = Vec::deserialize(deserializer)?;
        Ok(entries.into_iter().map(|(a, b, r)| ((a, b), r)).collect())
    }
}

impl Interconnect {
    /// An interconnect with a single shared link used for every pair.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidParameter`] for an invalid bandwidth.
    pub fn shared_bus(
        bandwidth_gbs: f64,
        latency: SimDuration,
    ) -> Result<Interconnect, PlatformError> {
        let mut b = InterconnectBuilder::new();
        let bus = b.add_link(Link::new("bus", bandwidth_gbs, latency)?);
        b.default_link(bus);
        Ok(b.build())
    }

    /// All links.
    #[must_use]
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Looks up a link by id.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::UnknownLink`] for an out-of-range id.
    pub fn link(&self, id: LinkId) -> Result<&Link, PlatformError> {
        self.links.get(id.0).ok_or(PlatformError::UnknownLink(id.0))
    }

    /// Looks up every link carrying `name` (preset link names may be
    /// shared, e.g. one PCIe link per cluster node), in id order.
    #[must_use]
    pub fn links_by_name(&self, name: &str) -> Vec<LinkId> {
        self.links
            .iter()
            .enumerate()
            .filter(|(_, l)| l.name == name)
            .map(|(i, _)| LinkId(i))
            .collect()
    }

    /// The fallback link used for pairs without an explicit route, if
    /// one was configured.
    #[must_use]
    pub fn default_link(&self) -> Option<LinkId> {
        self.default_link
    }

    /// The route a transfer from `from` to `to` takes. Same-device routes
    /// are empty.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::NoRoute`] if the pair has no explicit route
    /// and no default link was configured, and
    /// [`PlatformError::UnknownLink`] if the stored route references a
    /// link id that does not exist (a malformed topology would otherwise
    /// surface as NaN transfer times or an out-of-bounds panic much
    /// later, inside the engine's contention bookkeeping).
    pub fn route(&self, from: DeviceId, to: DeviceId) -> Result<Route, PlatformError> {
        if from == to {
            return Ok(Vec::new());
        }
        if let Some(route) = self.routes.get(&(from.0, to.0)) {
            for &id in route {
                if id.0 >= self.links.len() {
                    return Err(PlatformError::UnknownLink(id.0));
                }
            }
            return Ok(route.clone());
        }
        match self.default_link {
            Some(link) => {
                if link.0 >= self.links.len() {
                    return Err(PlatformError::UnknownLink(link.0));
                }
                Ok(vec![link])
            }
            None => Err(PlatformError::NoRoute {
                from: from.0,
                to: to.0,
            }),
        }
    }

    /// The bottleneck bandwidth (GB/s) between two devices, or `None` for
    /// same-device transfers (infinite).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::NoRoute`] if no route exists.
    pub fn bottleneck_bandwidth_gbs(
        &self,
        from: DeviceId,
        to: DeviceId,
    ) -> Result<Option<f64>, PlatformError> {
        let route = self.route(from, to)?;
        let mut min_bw: Option<f64> = None;
        for id in route {
            let bw = self.link(id)?.bandwidth_gbs();
            min_bw = Some(min_bw.map_or(bw, |m: f64| m.min(bw)));
        }
        Ok(min_bw)
    }

    /// Time to move `bytes` from `from` to `to`: route latencies plus
    /// `bytes / bottleneck_bandwidth`. Zero for same-device transfers.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::NoRoute`] if no route exists.
    pub fn transfer_time(
        &self,
        bytes: f64,
        from: DeviceId,
        to: DeviceId,
    ) -> Result<SimDuration, PlatformError> {
        let route = self.route(from, to)?;
        if route.is_empty() {
            return Ok(SimDuration::ZERO);
        }
        let mut latency = SimDuration::ZERO;
        let mut min_bw = f64::INFINITY;
        for id in route {
            let link = self.link(id)?;
            latency += link.latency();
            min_bw = min_bw.min(link.bandwidth_gbs());
        }
        Ok(latency + SimDuration::from_secs(bytes / (min_bw * 1e9)))
    }

    /// Returns a copy with every link's bandwidth multiplied by `factor`
    /// (used by the bandwidth-sensitivity experiment).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidParameter`] if `factor` is not
    /// positive and finite, and [`PlatformError::UnknownLink`] if any
    /// stored route references a link that does not exist (scaling would
    /// otherwise bake the dangling reference into a fresh topology).
    pub fn scaled_bandwidth(&self, factor: f64) -> Result<Interconnect, PlatformError> {
        positive("bandwidth scale factor", factor)?;
        for route in self.routes.values() {
            for &id in route {
                if id.0 >= self.links.len() {
                    return Err(PlatformError::UnknownLink(id.0));
                }
            }
        }
        let links = self
            .links
            .iter()
            .map(|l| Link::new(l.name.clone(), l.bandwidth_gbs * factor, l.latency))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Interconnect {
            links,
            routes: self.routes.clone(),
            default_link: self.default_link,
        })
    }
}

/// Builder for [`Interconnect`].
///
/// # Examples
///
/// ```
/// use helios_platform::{DeviceId, InterconnectBuilder, Link};
/// use helios_sim::SimDuration;
///
/// let mut b = InterconnectBuilder::new();
/// let pcie = b.add_link(Link::new("pcie", 32.0, SimDuration::from_secs(5e-6))?);
/// b.route_symmetric(DeviceId(0), DeviceId(1), vec![pcie]);
/// let ic = b.build();
/// assert!(ic.transfer_time(1e9, DeviceId(0), DeviceId(1))?.as_secs() > 0.03);
/// # Ok::<(), helios_platform::PlatformError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct InterconnectBuilder {
    links: Vec<Link>,
    routes: BTreeMap<(usize, usize), Route>,
    default_link: Option<LinkId>,
}

impl InterconnectBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> InterconnectBuilder {
        InterconnectBuilder::default()
    }

    /// Registers a link, returning its id.
    pub fn add_link(&mut self, link: Link) -> LinkId {
        let id = LinkId(self.links.len());
        self.links.push(link);
        id
    }

    /// Sets the one-directional route from `from` to `to`.
    pub fn route(&mut self, from: DeviceId, to: DeviceId, route: Route) -> &mut Self {
        self.routes.insert((from.0, to.0), route);
        self
    }

    /// Sets the same route in both directions.
    pub fn route_symmetric(&mut self, a: DeviceId, b: DeviceId, route: Route) -> &mut Self {
        self.routes.insert((a.0, b.0), route.clone());
        self.routes.insert((b.0, a.0), route);
        self
    }

    /// Sets a fallback link used for any pair without an explicit route.
    pub fn default_link(&mut self, link: LinkId) -> &mut Self {
        self.default_link = Some(link);
        self
    }

    /// Finalizes the interconnect.
    #[must_use]
    pub fn build(self) -> Interconnect {
        Interconnect {
            links: self.links,
            routes: self.routes,
            default_link: self.default_link,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(s: f64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn link_validates() {
        assert!(Link::new("bad", 0.0, ms(0.0)).is_err());
        assert!(Link::new("bad", f64::NAN, ms(0.0)).is_err());
        let l = Link::new("ok", 16.0, ms(1e-6)).unwrap();
        assert_eq!(l.name(), "ok");
        assert_eq!(l.latency(), ms(1e-6));
    }

    #[test]
    fn same_device_transfer_is_free() {
        let ic = Interconnect::shared_bus(10.0, ms(1e-6)).unwrap();
        let t = ic.transfer_time(1e12, DeviceId(3), DeviceId(3)).unwrap();
        assert_eq!(t, SimDuration::ZERO);
        assert_eq!(ic.route(DeviceId(3), DeviceId(3)).unwrap(), Vec::new());
        assert_eq!(
            ic.bottleneck_bandwidth_gbs(DeviceId(1), DeviceId(1))
                .unwrap(),
            None
        );
    }

    #[test]
    fn shared_bus_costs_latency_plus_serialization() {
        let ic = Interconnect::shared_bus(10.0, ms(1e-3)).unwrap();
        // 10 GB over a 10 GB/s bus = 1 s, plus 1 ms latency.
        let t = ic.transfer_time(10e9, DeviceId(0), DeviceId(1)).unwrap();
        assert!((t.as_secs() - 1.001).abs() < 1e-12);
    }

    #[test]
    fn multi_hop_uses_bottleneck_and_sums_latency() {
        let mut b = InterconnectBuilder::new();
        let fast = b.add_link(Link::new("fast", 100.0, ms(1e-6)).unwrap());
        let slow = b.add_link(Link::new("slow", 1.0, ms(2e-6)).unwrap());
        b.route(DeviceId(0), DeviceId(1), vec![fast, slow]);
        let ic = b.build();
        let t = ic.transfer_time(1e9, DeviceId(0), DeviceId(1)).unwrap();
        // bottleneck 1 GB/s → 1 s, latencies 3 µs.
        assert!((t.as_secs() - (1.0 + 3e-6)).abs() < 1e-12);
        assert_eq!(
            ic.bottleneck_bandwidth_gbs(DeviceId(0), DeviceId(1))
                .unwrap(),
            Some(1.0)
        );
        // No reverse route and no default link.
        assert!(matches!(
            ic.transfer_time(1.0, DeviceId(1), DeviceId(0)),
            Err(PlatformError::NoRoute { from: 1, to: 0 })
        ));
    }

    #[test]
    fn symmetric_routes() {
        let mut b = InterconnectBuilder::new();
        let l = b.add_link(Link::new("l", 5.0, ms(0.0)).unwrap());
        b.route_symmetric(DeviceId(0), DeviceId(2), vec![l]);
        let ic = b.build();
        let fwd = ic.transfer_time(5e9, DeviceId(0), DeviceId(2)).unwrap();
        let rev = ic.transfer_time(5e9, DeviceId(2), DeviceId(0)).unwrap();
        assert_eq!(fwd, rev);
        assert!((fwd.as_secs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scaled_bandwidth() {
        let ic = Interconnect::shared_bus(10.0, ms(0.0)).unwrap();
        let double = ic.scaled_bandwidth(2.0).unwrap();
        let t1 = ic.transfer_time(20e9, DeviceId(0), DeviceId(1)).unwrap();
        let t2 = double
            .transfer_time(20e9, DeviceId(0), DeviceId(1))
            .unwrap();
        assert!((t1.as_secs() / t2.as_secs() - 2.0).abs() < 1e-12);
        assert!(ic.scaled_bandwidth(0.0).is_err());
    }

    #[test]
    fn unknown_link_is_error() {
        let ic = Interconnect::shared_bus(1.0, ms(0.0)).unwrap();
        assert!(matches!(
            ic.link(LinkId(7)),
            Err(PlatformError::UnknownLink(7))
        ));
    }

    #[test]
    fn dangling_route_links_are_typed_errors() {
        let mut b = InterconnectBuilder::new();
        let l = b.add_link(Link::new("real", 8.0, ms(0.0)).unwrap());
        b.route(DeviceId(0), DeviceId(1), vec![l, LinkId(9)]);
        let ic = b.build();
        assert!(matches!(
            ic.route(DeviceId(0), DeviceId(1)),
            Err(PlatformError::UnknownLink(9))
        ));
        assert!(matches!(
            ic.transfer_time(1e9, DeviceId(0), DeviceId(1)),
            Err(PlatformError::UnknownLink(9))
        ));
        assert!(matches!(
            ic.scaled_bandwidth(2.0),
            Err(PlatformError::UnknownLink(9))
        ));
    }

    #[test]
    fn links_by_name_and_default_link() {
        let mut b = InterconnectBuilder::new();
        let a = b.add_link(Link::new("pcie", 32.0, ms(0.0)).unwrap());
        let _ = b.add_link(Link::new("eth", 12.5, ms(0.0)).unwrap());
        let c = b.add_link(Link::new("pcie", 32.0, ms(0.0)).unwrap());
        b.default_link(a);
        let ic = b.build();
        assert_eq!(ic.links_by_name("pcie"), vec![a, c]);
        assert_eq!(ic.links_by_name("missing"), Vec::<LinkId>::new());
        assert_eq!(ic.default_link(), Some(a));
    }
}
