//! Heterogeneous platform models for the `helios` workspace.
//!
//! A [`Platform`] is a set of processing [`Device`]s (CPUs, GP-GPUs, FPGAs,
//! ML ASICs, DSPs) joined by an [`Interconnect`]. Each device carries:
//!
//! * a **performance model** — a roofline-style execution-time estimate from
//!   a task's compute cost ([`ComputeCost`]): `max(flops/rate, bytes/bw)`
//!   plus a launch overhead, scaled by the device's affinity for the task's
//!   [`KernelClass`] and by its active DVFS state,
//! * a **power model** — `P = P_static + C_eff · V² · f` per
//!   [`DvfsState`], plus idle and sleep states for dynamic resource sleep,
//! * an **interconnect position** — data transfers between devices are
//!   routed over [`Link`]s with latency and bandwidth, so schedulers can
//!   weigh communication against computation.
//!
//! Real accelerators are *modeled*, not driven: the repro target is the
//! orchestration layer, and scheduling decisions depend only on relative
//! task-on-device costs, which these models capture (see DESIGN.md §1).
//!
//! # Examples
//!
//! ```
//! use helios_platform::{presets, ComputeCost, KernelClass};
//!
//! let node = presets::hpc_node();
//! let cost = ComputeCost::new(500.0, 2e9, KernelClass::DenseLinearAlgebra);
//! // The GPU runs dense linear algebra much faster than the host CPU.
//! let cpu = node.device_by_name("cpu0").unwrap();
//! let gpu = node.device_by_name("gpu0").unwrap();
//! assert!(gpu.execution_time(&cost, gpu.nominal_level()).unwrap()
//!       < cpu.execution_time(&cost, cpu.nominal_level()).unwrap());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod availability;
mod cost;
mod device;
mod dvfs;
mod error;
mod interconnect;
mod platform;
pub mod presets;

pub use availability::{Availability, DeviceState, LinkAvailability, LinkHealth};
pub use cost::{ComputeCost, KernelClass};
pub use device::{Device, DeviceBuilder, DeviceId, DeviceKind};
pub use dvfs::{DvfsLevel, DvfsState, PowerModel, SleepModel};
pub use error::PlatformError;
pub use interconnect::{Interconnect, InterconnectBuilder, Link, LinkId, Route};
pub use platform::{Platform, PlatformBuilder};
