//! Processing devices and their performance models.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use helios_sim::SimDuration;

use crate::cost::{ComputeCost, KernelClass};
use crate::dvfs::{DvfsLevel, DvfsState, PowerModel, SleepModel};
use crate::error::{positive, PlatformError};

/// Index of a device within its [`Platform`](crate::Platform).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct DeviceId(pub usize);

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev{}", self.0)
    }
}

/// The architectural family of a processing device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DeviceKind {
    /// General-purpose multi-core CPU (one device per socket or core group).
    Cpu,
    /// General-purpose GPU.
    Gpu,
    /// Field-programmable gate array with a reconfigurable datapath.
    Fpga,
    /// Fixed-function ML accelerator (TPU/NPU-like).
    Asic,
    /// Digital signal processor.
    Dsp,
}

impl DeviceKind {
    /// All device kinds, for exhaustive iteration.
    pub const ALL: [DeviceKind; 5] = [
        DeviceKind::Cpu,
        DeviceKind::Gpu,
        DeviceKind::Fpga,
        DeviceKind::Asic,
        DeviceKind::Dsp,
    ];

    /// Short stable identifier.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            DeviceKind::Cpu => "cpu",
            DeviceKind::Gpu => "gpu",
            DeviceKind::Fpga => "fpga",
            DeviceKind::Asic => "asic",
            DeviceKind::Dsp => "dsp",
        }
    }

    /// The default per-class efficiency table for this kind of device: the
    /// fraction of peak throughput it sustains on each [`KernelClass`].
    ///
    /// Values are calibrated to the qualitative behaviour reported across
    /// the heterogeneous-computing literature: GPUs near peak on dense and
    /// particle kernels but very poor on branchy scalar code; ASICs peak
    /// only on dense tensor work; FPGAs/DSPs excel at signal pipelines.
    #[must_use]
    pub fn default_affinity(self) -> BTreeMap<KernelClass, f64> {
        use KernelClass::*;
        let pairs: &[(KernelClass, f64)] = match self {
            DeviceKind::Cpu => &[
                (DenseLinearAlgebra, 0.90),
                (SparseLinearAlgebra, 0.50),
                (Fft, 0.70),
                (Stencil, 0.70),
                (NBody, 0.80),
                (Reduction, 0.80),
                (BranchyScalar, 1.00),
                (SignalProcessing, 0.60),
                (DataMovement, 1.00),
            ],
            DeviceKind::Gpu => &[
                (DenseLinearAlgebra, 1.00),
                (SparseLinearAlgebra, 0.30),
                (Fft, 0.90),
                (Stencil, 0.90),
                (NBody, 1.00),
                (Reduction, 0.70),
                (BranchyScalar, 0.05),
                (SignalProcessing, 0.60),
                (DataMovement, 0.30),
            ],
            DeviceKind::Fpga => &[
                (DenseLinearAlgebra, 0.40),
                (SparseLinearAlgebra, 0.60),
                (Fft, 0.80),
                (Stencil, 0.90),
                (NBody, 0.50),
                (Reduction, 0.60),
                (BranchyScalar, 0.10),
                (SignalProcessing, 1.00),
                (DataMovement, 0.70),
            ],
            DeviceKind::Asic => &[
                (DenseLinearAlgebra, 1.00),
                (SparseLinearAlgebra, 0.20),
                (Fft, 0.30),
                (Stencil, 0.30),
                (NBody, 0.30),
                (Reduction, 0.50),
                (BranchyScalar, 0.02),
                (SignalProcessing, 0.40),
                (DataMovement, 0.20),
            ],
            DeviceKind::Dsp => &[
                (DenseLinearAlgebra, 0.30),
                (SparseLinearAlgebra, 0.20),
                (Fft, 0.90),
                (Stencil, 0.50),
                (NBody, 0.30),
                (Reduction, 0.50),
                (BranchyScalar, 0.30),
                (SignalProcessing, 1.00),
                (DataMovement, 0.50),
            ],
        };
        pairs.iter().copied().collect()
    }
}

impl fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A modeled processing device.
///
/// Construct with [`DeviceBuilder`]; the builder fills kind-appropriate
/// defaults for everything but the name.
///
/// # Examples
///
/// ```
/// use helios_platform::{ComputeCost, DeviceBuilder, DeviceKind, KernelClass};
///
/// let gpu = DeviceBuilder::new("gpu0", DeviceKind::Gpu)
///     .peak_gflops(9_000.0)
///     .build()?;
/// let cost = ComputeCost::new(90.0, 1e6, KernelClass::DenseLinearAlgebra);
/// let t = gpu.execution_time(&cost, gpu.nominal_level())?;
/// assert!(t.as_secs() > 0.0);
/// # Ok::<(), helios_platform::PlatformError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Device {
    pub(crate) id: DeviceId,
    name: String,
    kind: DeviceKind,
    peak_gflops: f64,
    mem_bandwidth_gbs: f64,
    memory_gb: f64,
    launch_overhead: SimDuration,
    affinity: BTreeMap<KernelClass, f64>,
    dvfs_states: Vec<DvfsState>,
    power: PowerModel,
    sleep: SleepModel,
    execution_slots: usize,
    #[serde(default = "default_trust")]
    trust_level: u8,
}

/// Serde default for platforms serialized before trust levels existed.
fn default_trust() -> u8 {
    Device::MAX_TRUST
}

impl Device {
    /// The highest trust level a device can carry (fully verified,
    /// certified component).
    pub const MAX_TRUST: u8 = 3;

    /// The device's index within its platform. Devices built standalone
    /// (not yet added to a platform) report id 0.
    #[must_use]
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// The device's unique name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The architectural family.
    #[must_use]
    pub fn kind(&self) -> DeviceKind {
        self.kind
    }

    /// Peak throughput in GFLOP/s at the nominal (highest) DVFS state.
    #[must_use]
    pub fn peak_gflops(&self) -> f64 {
        self.peak_gflops
    }

    /// Device memory bandwidth in GB/s.
    #[must_use]
    pub fn mem_bandwidth_gbs(&self) -> f64 {
        self.mem_bandwidth_gbs
    }

    /// Device memory capacity in GB.
    #[must_use]
    pub fn memory_gb(&self) -> f64 {
        self.memory_gb
    }

    /// Fixed overhead added to every task execution (kernel launch, task
    /// dispatch, reconfiguration amortization).
    #[must_use]
    pub fn launch_overhead(&self) -> SimDuration {
        self.launch_overhead
    }

    /// Number of tasks the device can execute concurrently.
    #[must_use]
    pub fn execution_slots(&self) -> usize {
        self.execution_slots
    }

    /// The device's trust level (0 = untrusted black-box component,
    /// [`Device::MAX_TRUST`] = fully verified). Heterogeneous systems
    /// mix components from many vendors with uneven assurance; tasks
    /// handling sensitive data must only run on devices whose trust
    /// clears their requirement.
    #[must_use]
    pub fn trust_level(&self) -> u8 {
        self.trust_level
    }

    /// The available DVFS states, sorted ascending by frequency.
    #[must_use]
    pub fn dvfs_states(&self) -> &[DvfsState] {
        &self.dvfs_states
    }

    /// The nominal level: the fastest DVFS state.
    #[must_use]
    pub fn nominal_level(&self) -> DvfsLevel {
        DvfsLevel(self.dvfs_states.len() - 1)
    }

    /// The slowest DVFS state.
    #[must_use]
    pub fn min_level(&self) -> DvfsLevel {
        DvfsLevel(0)
    }

    /// Looks up a DVFS state by level.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidDvfsLevel`] if the level is out of
    /// range.
    pub fn dvfs_state(&self, level: DvfsLevel) -> Result<&DvfsState, PlatformError> {
        self.dvfs_states
            .get(level.0)
            .ok_or_else(|| PlatformError::InvalidDvfsLevel {
                device: self.name.clone(),
                level: level.0,
                available: self.dvfs_states.len(),
            })
    }

    /// The device's power model.
    #[must_use]
    pub fn power_model(&self) -> &PowerModel {
        &self.power
    }

    /// The device's sleep (DRS) model.
    #[must_use]
    pub fn sleep_model(&self) -> &SleepModel {
        &self.sleep
    }

    /// Sustained efficiency (fraction of peak) on `class`.
    ///
    /// Classes absent from the affinity table fall back to the kind's
    /// default table, and finally to 0.5.
    #[must_use]
    pub fn affinity(&self, class: KernelClass) -> f64 {
        self.affinity.get(&class).copied().unwrap_or(0.5)
    }

    /// Sustained throughput in GFLOP/s on `class` at `level`.
    ///
    /// Frequency scaling is linear: a state at half the nominal frequency
    /// sustains half the nominal rate.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidDvfsLevel`] if `level` is out of
    /// range.
    pub fn sustained_gflops(
        &self,
        class: KernelClass,
        level: DvfsLevel,
    ) -> Result<f64, PlatformError> {
        let state = self.dvfs_state(level)?;
        let nominal = self.dvfs_states[self.dvfs_states.len() - 1].frequency_ghz();
        let scale = state.frequency_ghz() / nominal;
        Ok(self.peak_gflops * self.affinity(class) * scale)
    }

    /// Whether `cost`'s working set fits in this device's memory.
    /// Placement on a device that cannot hold the task's data is
    /// infeasible, and memory-aware schedulers must skip it.
    #[must_use]
    pub fn fits(&self, cost: &ComputeCost) -> bool {
        cost.bytes_touched() <= self.memory_gb * 1e9
    }

    /// Roofline execution-time estimate for `cost` at DVFS `level`:
    /// `max(gflop / sustained_rate, bytes / mem_bandwidth) + launch_overhead`.
    ///
    /// Memory bandwidth is not frequency-scaled (DRAM clocks are independent
    /// of core DVFS on the modeled devices).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidDvfsLevel`] if `level` is out of
    /// range.
    pub fn execution_time(
        &self,
        cost: &ComputeCost,
        level: DvfsLevel,
    ) -> Result<SimDuration, PlatformError> {
        let rate = self.sustained_gflops(cost.kernel_class(), level)?;
        let compute_s = if cost.gflop() == 0.0 {
            0.0
        } else {
            cost.gflop() / rate
        };
        let mem_s = cost.bytes_touched() / (self.mem_bandwidth_gbs * 1e9);
        Ok(SimDuration::from_secs(compute_s.max(mem_s)) + self.launch_overhead)
    }

    /// Energy in joules to execute `cost` at `level` (active power × time,
    /// launch overhead included at active power).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidDvfsLevel`] if `level` is out of
    /// range.
    pub fn execution_energy(
        &self,
        cost: &ComputeCost,
        level: DvfsLevel,
    ) -> Result<f64, PlatformError> {
        let time = self.execution_time(cost, level)?;
        let state = self.dvfs_state(level)?;
        Ok(self.power.active_energy(state, time))
    }
}

impl fmt::Display for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {:.0} GFLOP/s, {:.0} GB/s, {} DVFS states",
            self.name,
            self.kind,
            self.peak_gflops,
            self.mem_bandwidth_gbs,
            self.dvfs_states.len()
        )
    }
}

/// Builder for [`Device`], pre-populated with kind-appropriate defaults.
///
/// Defaults (overridable): peak throughput, memory bandwidth/capacity,
/// launch overhead, a three-point DVFS ladder, a CMOS power model, a DRS
/// sleep model and the kind's affinity table.
#[derive(Debug, Clone)]
pub struct DeviceBuilder {
    name: String,
    kind: DeviceKind,
    peak_gflops: f64,
    mem_bandwidth_gbs: f64,
    memory_gb: f64,
    launch_overhead: SimDuration,
    affinity: BTreeMap<KernelClass, f64>,
    dvfs_states: Vec<DvfsState>,
    power: PowerModel,
    sleep: SleepModel,
    execution_slots: usize,
    trust_level: u8,
}

/// Default parameter bundle per device kind:
/// (peak_gflops, mem_bw, mem_gb, launch_overhead_s,
///  dvfs [(ghz, v); 3] ascending, (static_w, ceff, idle_w), sleep_w).
type KindDefaults = (f64, f64, f64, f64, [(f64, f64); 3], (f64, f64, f64), f64);

/// Kind-specific default parameters: ballpark figures from public
/// datasheets of the device classes a 2021-era heterogeneous node contains.
fn kind_defaults(kind: DeviceKind) -> KindDefaults {
    match kind {
        DeviceKind::Cpu => (
            500.0,
            80.0,
            64.0,
            20e-6,
            [(1.2, 0.85), (2.0, 1.0), (3.0, 1.2)],
            (20.0, 25.0, 35.0),
            8.0,
        ),
        DeviceKind::Gpu => (
            9_000.0,
            700.0,
            16.0,
            10e-6,
            [(0.8, 0.75), (1.2, 0.9), (1.6, 1.05)],
            (40.0, 120.0, 55.0),
            12.0,
        ),
        DeviceKind::Fpga => (
            1_500.0,
            60.0,
            8.0,
            50e-6,
            [(0.15, 0.85), (0.25, 0.9), (0.35, 0.95)],
            (10.0, 180.0, 15.0),
            3.0,
        ),
        DeviceKind::Asic => (
            40_000.0,
            900.0,
            32.0,
            15e-6,
            [(0.5, 0.7), (0.7, 0.8), (0.94, 0.9)],
            (30.0, 250.0, 40.0),
            10.0,
        ),
        DeviceKind::Dsp => (
            100.0,
            20.0,
            2.0,
            5e-6,
            [(0.3, 0.7), (0.6, 0.85), (1.0, 1.0)],
            (1.0, 8.0, 2.0),
            0.3,
        ),
    }
}

impl DeviceBuilder {
    /// Starts building a device of the given `kind` named `name`.
    #[must_use]
    pub fn new(name: impl Into<String>, kind: DeviceKind) -> DeviceBuilder {
        let (peak, bw, mem, overhead, dvfs, (static_w, ceff, idle_w), sleep_w) =
            kind_defaults(kind);
        let dvfs_states = dvfs
            .iter()
            .map(|&(f, v)| DvfsState::new(f, v).expect("kind defaults are valid"))
            .collect();
        DeviceBuilder {
            name: name.into(),
            kind,
            peak_gflops: peak,
            mem_bandwidth_gbs: bw,
            memory_gb: mem,
            launch_overhead: SimDuration::from_secs(overhead),
            affinity: kind.default_affinity(),
            dvfs_states,
            power: PowerModel::new(static_w, ceff, idle_w).expect("kind defaults are valid"),
            sleep: SleepModel::new(sleep_w, SimDuration::from_secs(2e-3))
                .expect("kind defaults are valid"),
            execution_slots: 1,
            trust_level: Device::MAX_TRUST,
        }
    }

    /// Sets peak throughput in GFLOP/s at the nominal DVFS state.
    #[must_use]
    pub fn peak_gflops(mut self, gflops: f64) -> DeviceBuilder {
        self.peak_gflops = gflops;
        self
    }

    /// Sets device memory bandwidth in GB/s.
    #[must_use]
    pub fn mem_bandwidth_gbs(mut self, gbs: f64) -> DeviceBuilder {
        self.mem_bandwidth_gbs = gbs;
        self
    }

    /// Sets device memory capacity in GB.
    #[must_use]
    pub fn memory_gb(mut self, gb: f64) -> DeviceBuilder {
        self.memory_gb = gb;
        self
    }

    /// Sets the fixed per-task launch overhead.
    #[must_use]
    pub fn launch_overhead(mut self, overhead: SimDuration) -> DeviceBuilder {
        self.launch_overhead = overhead;
        self
    }

    /// Overrides the efficiency for one kernel class.
    #[must_use]
    pub fn affinity(mut self, class: KernelClass, efficiency: f64) -> DeviceBuilder {
        self.affinity.insert(class, efficiency);
        self
    }

    /// Replaces the DVFS ladder (must be non-empty, ascending frequency).
    #[must_use]
    pub fn dvfs_states(mut self, states: Vec<DvfsState>) -> DeviceBuilder {
        self.dvfs_states = states;
        self
    }

    /// Replaces the power model.
    #[must_use]
    pub fn power_model(mut self, power: PowerModel) -> DeviceBuilder {
        self.power = power;
        self
    }

    /// Replaces the sleep model.
    #[must_use]
    pub fn sleep_model(mut self, sleep: SleepModel) -> DeviceBuilder {
        self.sleep = sleep;
        self
    }

    /// Sets the number of concurrent execution slots.
    #[must_use]
    pub fn execution_slots(mut self, slots: usize) -> DeviceBuilder {
        self.execution_slots = slots;
        self
    }

    /// Sets the trust level (0 = untrusted, [`Device::MAX_TRUST`] =
    /// fully verified). Values above the maximum are clamped at build.
    #[must_use]
    pub fn trust_level(mut self, level: u8) -> DeviceBuilder {
        self.trust_level = level;
        self
    }

    /// Finalizes the device.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError`] if any numeric parameter is invalid, the
    /// DVFS ladder is empty or not ascending in frequency, any affinity is
    /// outside `(0, 1]`, or `execution_slots` is zero.
    pub fn build(self) -> Result<Device, PlatformError> {
        positive("peak_gflops", self.peak_gflops)?;
        positive("mem_bandwidth_gbs", self.mem_bandwidth_gbs)?;
        positive("memory_gb", self.memory_gb)?;
        if self.dvfs_states.is_empty() {
            return Err(PlatformError::NoDvfsStates(self.name));
        }
        for pair in self.dvfs_states.windows(2) {
            if pair[1].frequency_ghz() <= pair[0].frequency_ghz() {
                return Err(PlatformError::InvalidParameter {
                    name: "dvfs_states (must ascend in frequency)",
                    value: pair[1].frequency_ghz(),
                });
            }
        }
        for (&class, &eff) in &self.affinity {
            if !(eff > 0.0 && eff <= 1.0) {
                let _ = class;
                return Err(PlatformError::InvalidParameter {
                    name: "affinity (must be in (0, 1])",
                    value: eff,
                });
            }
        }
        if self.execution_slots == 0 {
            return Err(PlatformError::InvalidParameter {
                name: "execution_slots",
                value: 0.0,
            });
        }
        Ok(Device {
            id: DeviceId(0),
            name: self.name,
            kind: self.kind,
            peak_gflops: self.peak_gflops,
            mem_bandwidth_gbs: self.mem_bandwidth_gbs,
            memory_gb: self.memory_gb,
            launch_overhead: self.launch_overhead,
            affinity: self.affinity,
            dvfs_states: self.dvfs_states,
            power: self.power,
            sleep: self.sleep,
            execution_slots: self.execution_slots,
            trust_level: self.trust_level.min(Device::MAX_TRUST),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu() -> Device {
        DeviceBuilder::new("g", DeviceKind::Gpu).build().unwrap()
    }

    #[test]
    fn builder_defaults_are_valid_for_all_kinds() {
        for kind in DeviceKind::ALL {
            let d = DeviceBuilder::new(format!("{kind}"), kind).build().unwrap();
            assert_eq!(d.kind(), kind);
            assert!(d.peak_gflops() > 0.0);
            assert_eq!(d.dvfs_states().len(), 3);
            assert_eq!(d.nominal_level(), DvfsLevel(2));
            assert_eq!(d.min_level(), DvfsLevel(0));
            for class in KernelClass::ALL {
                let a = d.affinity(class);
                assert!(a > 0.0 && a <= 1.0, "{kind}/{class}: {a}");
            }
        }
    }

    #[test]
    fn execution_time_scales_with_dvfs() {
        let d = gpu();
        let cost = ComputeCost::new(160.0, 0.0, KernelClass::DenseLinearAlgebra);
        let fast = d.execution_time(&cost, d.nominal_level()).unwrap();
        let slow = d.execution_time(&cost, d.min_level()).unwrap();
        assert!(slow > fast, "lower frequency must be slower");
        // 0.8 GHz vs 1.6 GHz nominal: compute-bound time doubles
        // (modulo the constant launch overhead).
        let ratio = (slow.as_secs() - d.launch_overhead().as_secs())
            / (fast.as_secs() - d.launch_overhead().as_secs());
        assert!((ratio - 2.0).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn roofline_memory_bound() {
        let d = gpu(); // 700 GB/s
                       // Tiny flops, huge traffic: memory-bound.
        let cost = ComputeCost::new(0.001, 700e9, KernelClass::Reduction);
        let t = d.execution_time(&cost, d.nominal_level()).unwrap();
        assert!((t.as_secs() - (1.0 + 10e-6)).abs() < 1e-9, "t = {t}");
    }

    #[test]
    fn zero_work_costs_only_overhead() {
        let d = gpu();
        let cost = ComputeCost::new(0.0, 0.0, KernelClass::DataMovement);
        let t = d.execution_time(&cost, d.nominal_level()).unwrap();
        assert_eq!(t, d.launch_overhead());
    }

    #[test]
    fn affinity_changes_rate() {
        let d = gpu();
        let dense = ComputeCost::new(100.0, 0.0, KernelClass::DenseLinearAlgebra);
        let branchy = ComputeCost::new(100.0, 0.0, KernelClass::BranchyScalar);
        let td = d.execution_time(&dense, d.nominal_level()).unwrap();
        let tb = d.execution_time(&branchy, d.nominal_level()).unwrap();
        assert!(
            tb.as_secs() > 10.0 * td.as_secs(),
            "GPU must be far slower on branchy code"
        );
    }

    #[test]
    fn invalid_level_is_error() {
        let d = gpu();
        let cost = ComputeCost::new(1.0, 0.0, KernelClass::Fft);
        let err = d.execution_time(&cost, DvfsLevel(9)).unwrap_err();
        assert!(matches!(err, PlatformError::InvalidDvfsLevel { .. }));
    }

    #[test]
    fn builder_validation() {
        assert!(DeviceBuilder::new("x", DeviceKind::Cpu)
            .peak_gflops(-1.0)
            .build()
            .is_err());
        assert!(DeviceBuilder::new("x", DeviceKind::Cpu)
            .dvfs_states(vec![])
            .build()
            .is_err());
        // Descending ladder rejected.
        let desc = vec![
            DvfsState::new(2.0, 1.0).unwrap(),
            DvfsState::new(1.0, 0.9).unwrap(),
        ];
        assert!(DeviceBuilder::new("x", DeviceKind::Cpu)
            .dvfs_states(desc)
            .build()
            .is_err());
        assert!(DeviceBuilder::new("x", DeviceKind::Cpu)
            .affinity(KernelClass::Fft, 1.5)
            .build()
            .is_err());
        assert!(DeviceBuilder::new("x", DeviceKind::Cpu)
            .execution_slots(0)
            .build()
            .is_err());
    }

    #[test]
    fn energy_increases_with_level() {
        let d = gpu();
        // Compute-bound task: faster state burns more power but for less
        // time; with the default ceff the energy at nominal is higher
        // because V²f grows superlinearly while time shrinks linearly.
        let cost = ComputeCost::new(800.0, 0.0, KernelClass::DenseLinearAlgebra);
        let e_hi = d.execution_energy(&cost, d.nominal_level()).unwrap();
        let e_lo = d.execution_energy(&cost, d.min_level()).unwrap();
        assert!(e_hi > 0.0 && e_lo > 0.0);
        // Dynamic-energy component at high V/f exceeds low V/f for the same
        // work; static leakage pulls the other way. Just require both are
        // finite and the high state is not cheaper than 40% of low.
        assert!(e_hi > 0.4 * e_lo);
    }

    #[test]
    fn display_mentions_name_and_kind() {
        let d = gpu();
        let s = d.to_string();
        assert!(s.contains('g') && s.contains("gpu"));
    }
}
