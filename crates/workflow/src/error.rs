//! Error type for workflow construction and queries.

use std::fmt;

use crate::task::TaskId;

/// Errors produced while building or analyzing a workflow DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkflowError {
    /// The graph contains a directed cycle (reported through one member).
    Cycle(TaskId),
    /// An edge referenced a task that does not exist.
    UnknownTask(TaskId),
    /// An edge from a task to itself.
    SelfLoop(TaskId),
    /// A duplicate edge between the same ordered pair of tasks.
    DuplicateEdge(TaskId, TaskId),
    /// The workflow has no tasks.
    Empty,
    /// A generator or builder parameter was out of range.
    InvalidParameter(String),
    /// A task's compute cost is NaN, infinite or negative.
    ///
    /// Constructed [`ComputeCost`](helios_platform::ComputeCost) values
    /// are always valid; this guards paths that bypass the constructor,
    /// such as deserialized workflow files.
    InvalidCost(TaskId),
}

impl fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkflowError::Cycle(t) => write!(f, "workflow contains a cycle through task {t}"),
            WorkflowError::UnknownTask(t) => write!(f, "unknown task {t}"),
            WorkflowError::SelfLoop(t) => write!(f, "self-loop on task {t}"),
            WorkflowError::DuplicateEdge(a, b) => {
                write!(f, "duplicate edge {a} -> {b}")
            }
            WorkflowError::Empty => write!(f, "workflow has no tasks"),
            WorkflowError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            WorkflowError::InvalidCost(t) => {
                write!(f, "task {t} has a non-finite or negative compute cost")
            }
        }
    }
}

impl std::error::Error for WorkflowError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(WorkflowError::Cycle(TaskId(3))
            .to_string()
            .contains("cycle"));
        assert!(WorkflowError::Empty.to_string().contains("no tasks"));
        assert!(WorkflowError::DuplicateEdge(TaskId(0), TaskId(1))
            .to_string()
            .contains("->"));
    }
}
