//! The validated workflow DAG container.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::WorkflowError;
use crate::task::{Task, TaskId};

/// Index of an edge within its [`Workflow`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct EdgeId(pub usize);

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A data dependency: `src` must finish before `dst` starts, and `bytes`
/// of data move from `src`'s device to `dst`'s device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DataDep {
    /// Producing task.
    pub src: TaskId,
    /// Consuming task.
    pub dst: TaskId,
    /// Payload size in bytes.
    pub bytes: f64,
}

/// A validated directed acyclic graph of tasks.
///
/// Construct with [`WorkflowBuilder`]; a built workflow is guaranteed
/// acyclic, self-loop-free and duplicate-edge-free.
///
/// # Examples
///
/// ```
/// use helios_platform::{ComputeCost, KernelClass};
/// use helios_workflow::{Task, WorkflowBuilder};
///
/// let mut b = WorkflowBuilder::new("diamond");
/// let cost = ComputeCost::new(1.0, 0.0, KernelClass::Reduction);
/// let a = b.add_task(Task::new("a", "s", cost));
/// let c = b.add_task(Task::new("c", "s", cost));
/// let d = b.add_task(Task::new("d", "s", cost));
/// b.add_dep(a, c, 1e6)?;
/// b.add_dep(a, d, 1e6)?;
/// let wf = b.build()?;
/// assert_eq!(wf.entry_tasks(), vec![a]);
/// # Ok::<(), helios_workflow::WorkflowError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Workflow {
    name: String,
    tasks: Vec<Task>,
    edges: Vec<DataDep>,
    succs: Vec<Vec<EdgeId>>,
    preds: Vec<Vec<EdgeId>>,
    topo: Vec<TaskId>,
}

impl Workflow {
    /// The workflow's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All tasks, in id order.
    #[must_use]
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Number of tasks.
    #[must_use]
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// All edges, in id order.
    #[must_use]
    pub fn edges(&self) -> &[DataDep] {
        &self.edges
    }

    /// Number of edges.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Looks up a task by id.
    ///
    /// # Errors
    ///
    /// Returns [`WorkflowError::UnknownTask`] for an out-of-range id.
    pub fn task(&self, id: TaskId) -> Result<&Task, WorkflowError> {
        self.tasks.get(id.0).ok_or(WorkflowError::UnknownTask(id))
    }

    /// Looks up a task by name.
    #[must_use]
    pub fn task_by_name(&self, name: &str) -> Option<(TaskId, &Task)> {
        self.tasks
            .iter()
            .enumerate()
            .find(|(_, t)| t.name() == name)
            .map(|(i, t)| (TaskId(i), t))
    }

    /// Outgoing edges of `id`.
    #[must_use]
    pub fn successors(&self, id: TaskId) -> &[EdgeId] {
        &self.succs[id.0]
    }

    /// Incoming edges of `id`.
    #[must_use]
    pub fn predecessors(&self, id: TaskId) -> &[EdgeId] {
        &self.preds[id.0]
    }

    /// The edge with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (edge ids come from this workflow's
    /// own adjacency lists, so this indicates a logic error).
    #[must_use]
    pub fn edge(&self, id: EdgeId) -> &DataDep {
        &self.edges[id.0]
    }

    /// Successor task ids of `id`.
    pub fn successor_tasks(&self, id: TaskId) -> impl Iterator<Item = TaskId> + '_ {
        self.succs[id.0].iter().map(move |&e| self.edges[e.0].dst)
    }

    /// Predecessor task ids of `id`.
    pub fn predecessor_tasks(&self, id: TaskId) -> impl Iterator<Item = TaskId> + '_ {
        self.preds[id.0].iter().map(move |&e| self.edges[e.0].src)
    }

    /// Tasks with no predecessors, in id order.
    #[must_use]
    pub fn entry_tasks(&self) -> Vec<TaskId> {
        (0..self.tasks.len())
            .filter(|&i| self.preds[i].is_empty())
            .map(TaskId)
            .collect()
    }

    /// Tasks with no successors, in id order.
    #[must_use]
    pub fn exit_tasks(&self) -> Vec<TaskId> {
        (0..self.tasks.len())
            .filter(|&i| self.succs[i].is_empty())
            .map(TaskId)
            .collect()
    }

    /// A topological order of all tasks (computed once at build time).
    #[must_use]
    pub fn topo_order(&self) -> &[TaskId] {
        &self.topo
    }

    /// Every transitive predecessor of `id` (the task's data lineage),
    /// in ascending task-id order. `id` itself is excluded.
    ///
    /// Recovery machinery uses this to decide which destroyed data
    /// products must be re-materialized after a permanent device loss:
    /// only the ancestors of still-needed tasks, nothing else.
    #[must_use]
    pub fn ancestors(&self, id: TaskId) -> Vec<TaskId> {
        let mut seen = vec![false; self.tasks.len()];
        let mut stack = vec![id];
        while let Some(t) = stack.pop() {
            for p in self.predecessor_tasks(t) {
                if !seen[p.0] {
                    seen[p.0] = true;
                    stack.push(p);
                }
            }
        }
        seen.iter()
            .enumerate()
            .filter(|&(_, &s)| s)
            .map(|(i, _)| TaskId(i))
            .collect()
    }

    /// Total compute work in GFLOP.
    #[must_use]
    pub fn total_gflop(&self) -> f64 {
        self.tasks.iter().map(|t| t.cost().gflop()).sum()
    }

    /// Total data moved over edges, in bytes.
    #[must_use]
    pub fn total_edge_bytes(&self) -> f64 {
        self.edges.iter().map(|e| e.bytes).sum()
    }

    /// Re-checks all structural invariants. A successfully built workflow
    /// always passes; exposed for tests and for workflows deserialized
    /// from external files.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), WorkflowError> {
        if self.tasks.is_empty() {
            return Err(WorkflowError::Empty);
        }
        let mut seen = BTreeSet::new();
        for e in &self.edges {
            if e.src.0 >= self.tasks.len() {
                return Err(WorkflowError::UnknownTask(e.src));
            }
            if e.dst.0 >= self.tasks.len() {
                return Err(WorkflowError::UnknownTask(e.dst));
            }
            if e.src == e.dst {
                return Err(WorkflowError::SelfLoop(e.src));
            }
            if !seen.insert((e.src, e.dst)) {
                return Err(WorkflowError::DuplicateEdge(e.src, e.dst));
            }
        }
        topo_sort(self.tasks.len(), &self.edges).map(|_| ())
    }

    /// Returns a copy with each task's cost transformed by `f` (used to
    /// inject runtime variability in online-scheduling experiments).
    #[must_use]
    pub fn map_costs(&self, mut f: impl FnMut(TaskId, &Task) -> Task) -> Workflow {
        let tasks = self
            .tasks
            .iter()
            .enumerate()
            .map(|(i, t)| f(TaskId(i), t))
            .collect();
        Workflow {
            name: self.name.clone(),
            tasks,
            edges: self.edges.clone(),
            succs: self.succs.clone(),
            preds: self.preds.clone(),
            topo: self.topo.clone(),
        }
    }
}

impl fmt::Display for Workflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} tasks, {} edges, {:.1} Gflop)",
            self.name,
            self.tasks.len(),
            self.edges.len(),
            self.total_gflop()
        )
    }
}

/// Kahn topological sort; returns the order or the id of a task on a cycle.
fn topo_sort(n: usize, edges: &[DataDep]) -> Result<Vec<TaskId>, WorkflowError> {
    let mut indegree = vec![0usize; n];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in edges {
        indegree[e.dst.0] += 1;
        succs[e.src.0].push(e.dst.0);
    }
    // A queue ordered by task id keeps the produced order deterministic.
    let mut ready: std::collections::VecDeque<usize> =
        (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(u) = ready.pop_front() {
        order.push(TaskId(u));
        for &v in &succs[u] {
            indegree[v] -= 1;
            if indegree[v] == 0 {
                ready.push_back(v);
            }
        }
    }
    if order.len() == n {
        Ok(order)
    } else {
        let on_cycle = indegree
            .iter()
            .position(|&d| d > 0)
            .map(TaskId)
            .unwrap_or(TaskId(0));
        Err(WorkflowError::Cycle(on_cycle))
    }
}

/// Incremental builder for [`Workflow`].
#[derive(Debug, Clone)]
pub struct WorkflowBuilder {
    name: String,
    tasks: Vec<Task>,
    edges: Vec<DataDep>,
    edge_set: BTreeSet<(TaskId, TaskId)>,
}

impl WorkflowBuilder {
    /// Starts building a workflow named `name`.
    #[must_use]
    pub fn new(name: impl Into<String>) -> WorkflowBuilder {
        WorkflowBuilder {
            name: name.into(),
            tasks: Vec::new(),
            edges: Vec::new(),
            edge_set: BTreeSet::new(),
        }
    }

    /// Adds a task, returning its id.
    pub fn add_task(&mut self, task: Task) -> TaskId {
        let id = TaskId(self.tasks.len());
        self.tasks.push(task);
        id
    }

    /// Number of tasks added so far.
    #[must_use]
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Adds a data dependency carrying `bytes` from `src` to `dst`.
    ///
    /// # Errors
    ///
    /// Returns [`WorkflowError::UnknownTask`] if either endpoint has not
    /// been added, [`WorkflowError::SelfLoop`] if `src == dst`,
    /// [`WorkflowError::DuplicateEdge`] on a repeated pair, or
    /// [`WorkflowError::InvalidParameter`] for a negative/non-finite size.
    /// Cycles are detected at [`WorkflowBuilder::build`].
    pub fn add_dep(
        &mut self,
        src: TaskId,
        dst: TaskId,
        bytes: f64,
    ) -> Result<EdgeId, WorkflowError> {
        if src.0 >= self.tasks.len() {
            return Err(WorkflowError::UnknownTask(src));
        }
        if dst.0 >= self.tasks.len() {
            return Err(WorkflowError::UnknownTask(dst));
        }
        if src == dst {
            return Err(WorkflowError::SelfLoop(src));
        }
        if !bytes.is_finite() || bytes < 0.0 {
            return Err(WorkflowError::InvalidParameter(format!(
                "edge bytes must be non-negative and finite, got {bytes}"
            )));
        }
        if !self.edge_set.insert((src, dst)) {
            return Err(WorkflowError::DuplicateEdge(src, dst));
        }
        let id = EdgeId(self.edges.len());
        self.edges.push(DataDep { src, dst, bytes });
        Ok(id)
    }

    /// Finalizes the workflow, verifying acyclicity and cost sanity.
    ///
    /// # Errors
    ///
    /// Returns [`WorkflowError::Empty`] for a task-less workflow,
    /// [`WorkflowError::Cycle`] if the dependencies are cyclic, or
    /// [`WorkflowError::InvalidCost`] if any task's compute cost is NaN,
    /// infinite or negative (possible only for costs that bypassed
    /// [`ComputeCost::new`](helios_platform::ComputeCost::new), e.g.
    /// deserialized ones). Rejecting them here keeps ranking math
    /// downstream (`analysis::bottom_levels`, HEFT's `rank_order`)
    /// NaN-free, where a single NaN would silently corrupt the
    /// `total_cmp` priority order.
    pub fn build(self) -> Result<Workflow, WorkflowError> {
        if self.tasks.is_empty() {
            return Err(WorkflowError::Empty);
        }
        for (i, task) in self.tasks.iter().enumerate() {
            let cost = task.cost();
            let valid = |x: f64| x.is_finite() && x >= 0.0;
            if !valid(cost.gflop()) || !valid(cost.bytes_touched()) {
                return Err(WorkflowError::InvalidCost(TaskId(i)));
            }
        }
        let topo = topo_sort(self.tasks.len(), &self.edges)?;
        let mut succs = vec![Vec::new(); self.tasks.len()];
        let mut preds = vec![Vec::new(); self.tasks.len()];
        for (i, e) in self.edges.iter().enumerate() {
            succs[e.src.0].push(EdgeId(i));
            preds[e.dst.0].push(EdgeId(i));
        }
        Ok(Workflow {
            name: self.name,
            tasks: self.tasks,
            edges: self.edges,
            succs,
            preds,
            topo,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_platform::{ComputeCost, KernelClass};

    fn cost() -> ComputeCost {
        ComputeCost::new(1.0, 0.0, KernelClass::Reduction)
    }

    fn diamond() -> Workflow {
        let mut b = WorkflowBuilder::new("diamond");
        let a = b.add_task(Task::new("a", "s", cost()));
        let c = b.add_task(Task::new("b", "s", cost()));
        let d = b.add_task(Task::new("c", "s", cost()));
        let e = b.add_task(Task::new("d", "s", cost()));
        b.add_dep(a, c, 10.0).unwrap();
        b.add_dep(a, d, 10.0).unwrap();
        b.add_dep(c, e, 10.0).unwrap();
        b.add_dep(d, e, 10.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn diamond_structure() {
        let wf = diamond();
        assert_eq!(wf.num_tasks(), 4);
        assert_eq!(wf.num_edges(), 4);
        assert_eq!(wf.entry_tasks(), vec![TaskId(0)]);
        assert_eq!(wf.exit_tasks(), vec![TaskId(3)]);
        assert_eq!(wf.successors(TaskId(0)).len(), 2);
        assert_eq!(wf.predecessors(TaskId(3)).len(), 2);
        let succ: Vec<_> = wf.successor_tasks(TaskId(0)).collect();
        assert_eq!(succ, vec![TaskId(1), TaskId(2)]);
        let pred: Vec<_> = wf.predecessor_tasks(TaskId(3)).collect();
        assert_eq!(pred, vec![TaskId(1), TaskId(2)]);
        assert!(wf.validate().is_ok());
        assert_eq!(wf.total_gflop(), 4.0);
        assert_eq!(wf.total_edge_bytes(), 40.0);
    }

    #[test]
    fn topo_order_respects_edges() {
        let wf = diamond();
        let topo = wf.topo_order();
        assert_eq!(topo.len(), 4);
        let pos: Vec<usize> = (0..4)
            .map(|i| topo.iter().position(|&t| t == TaskId(i)).unwrap())
            .collect();
        for e in wf.edges() {
            assert!(pos[e.src.0] < pos[e.dst.0]);
        }
    }

    #[test]
    fn ancestors_follow_lineage_only() {
        let wf = diamond();
        assert_eq!(wf.ancestors(TaskId(0)), Vec::<TaskId>::new());
        assert_eq!(wf.ancestors(TaskId(1)), vec![TaskId(0)]);
        assert_eq!(
            wf.ancestors(TaskId(3)),
            vec![TaskId(0), TaskId(1), TaskId(2)]
        );
        // A disconnected sibling never shows up in a lineage.
        let mut b = WorkflowBuilder::new("two-chains");
        let a = b.add_task(Task::new("a", "s", cost()));
        let c = b.add_task(Task::new("b", "s", cost()));
        let x = b.add_task(Task::new("x", "s", cost()));
        let y = b.add_task(Task::new("y", "s", cost()));
        b.add_dep(a, c, 1.0).unwrap();
        b.add_dep(x, y, 1.0).unwrap();
        let wf = b.build().unwrap();
        assert_eq!(wf.ancestors(y), vec![x]);
        assert_eq!(wf.ancestors(c), vec![a]);
    }

    #[test]
    fn cycle_detected_at_build() {
        let mut b = WorkflowBuilder::new("cyc");
        let a = b.add_task(Task::new("a", "s", cost()));
        let c = b.add_task(Task::new("b", "s", cost()));
        b.add_dep(a, c, 0.0).unwrap();
        b.add_dep(c, a, 0.0).unwrap();
        assert!(matches!(b.build(), Err(WorkflowError::Cycle(_))));
    }

    #[test]
    fn builder_edge_validation() {
        let mut b = WorkflowBuilder::new("v");
        let a = b.add_task(Task::new("a", "s", cost()));
        let c = b.add_task(Task::new("b", "s", cost()));
        assert!(matches!(
            b.add_dep(a, TaskId(9), 0.0),
            Err(WorkflowError::UnknownTask(TaskId(9)))
        ));
        assert!(matches!(
            b.add_dep(a, a, 0.0),
            Err(WorkflowError::SelfLoop(_))
        ));
        assert!(matches!(
            b.add_dep(a, c, -1.0),
            Err(WorkflowError::InvalidParameter(_))
        ));
        b.add_dep(a, c, 1.0).unwrap();
        assert!(matches!(
            b.add_dep(a, c, 2.0),
            Err(WorkflowError::DuplicateEdge(_, _))
        ));
    }

    #[test]
    fn empty_workflow_rejected() {
        assert!(matches!(
            WorkflowBuilder::new("e").build(),
            Err(WorkflowError::Empty)
        ));
    }

    #[test]
    fn lookup_by_name() {
        let wf = diamond();
        let (id, t) = wf.task_by_name("c").unwrap();
        assert_eq!(id, TaskId(2));
        assert_eq!(t.name(), "c");
        assert!(wf.task_by_name("zz").is_none());
        assert!(wf.task(TaskId(99)).is_err());
    }

    #[test]
    fn map_costs_transforms() {
        let wf = diamond();
        let doubled = wf.map_costs(|_, t| t.with_cost(t.cost().scaled(2.0)));
        assert_eq!(doubled.total_gflop(), 8.0);
        assert_eq!(doubled.num_edges(), wf.num_edges());
        assert_eq!(wf.total_gflop(), 4.0, "original untouched");
    }

    #[test]
    fn display_summarizes() {
        let s = diamond().to_string();
        assert!(s.contains("4 tasks") && s.contains("4 edges"), "{s}");
    }

    #[test]
    fn isolated_tasks_are_entries_and_exits() {
        let mut b = WorkflowBuilder::new("iso");
        let a = b.add_task(Task::new("a", "s", cost()));
        let wf = b.build().unwrap();
        assert_eq!(wf.entry_tasks(), vec![a]);
        assert_eq!(wf.exit_tasks(), vec![a]);
    }
}
