//! Workflow serialization: JSON round-trips and Graphviz DOT export.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::dag::{DataDep, Workflow, WorkflowBuilder};
use crate::error::WorkflowError;
use crate::task::Task;

/// Errors from reading or writing workflow files.
#[derive(Debug)]
pub enum WorkflowIoError {
    /// The JSON was syntactically invalid.
    Json(serde_json::Error),
    /// The decoded workflow violated a DAG invariant.
    Invalid(WorkflowError),
}

impl fmt::Display for WorkflowIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkflowIoError::Json(e) => write!(f, "malformed workflow JSON: {e}"),
            WorkflowIoError::Invalid(e) => write!(f, "invalid workflow: {e}"),
        }
    }
}

impl std::error::Error for WorkflowIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WorkflowIoError::Json(e) => Some(e),
            WorkflowIoError::Invalid(e) => Some(e),
        }
    }
}

impl From<serde_json::Error> for WorkflowIoError {
    fn from(e: serde_json::Error) -> Self {
        WorkflowIoError::Json(e)
    }
}

impl From<WorkflowError> for WorkflowIoError {
    fn from(e: WorkflowError) -> Self {
        WorkflowIoError::Invalid(e)
    }
}

/// The on-disk shape of a workflow (adjacency is rebuilt on load).
#[derive(Debug, Serialize, Deserialize)]
struct WorkflowSpec {
    name: String,
    tasks: Vec<Task>,
    edges: Vec<DataDep>,
}

/// Serializes `wf` to pretty-printed JSON.
///
/// # Errors
///
/// Returns [`WorkflowIoError::Json`] if serialization fails (it cannot for
/// valid workflows).
pub fn to_json(wf: &Workflow) -> Result<String, WorkflowIoError> {
    let spec = WorkflowSpec {
        name: wf.name().to_owned(),
        tasks: wf.tasks().to_vec(),
        edges: wf.edges().to_vec(),
    };
    Ok(serde_json::to_string_pretty(&spec)?)
}

/// Parses a workflow from JSON produced by [`to_json`] (or written by
/// hand), re-validating every DAG invariant.
///
/// # Errors
///
/// Returns [`WorkflowIoError::Json`] for malformed JSON or
/// [`WorkflowIoError::Invalid`] for a structurally invalid workflow
/// (cycles, dangling task references, duplicate edges).
pub fn from_json(json: &str) -> Result<Workflow, WorkflowIoError> {
    let spec: WorkflowSpec = serde_json::from_str(json)?;
    let mut b = WorkflowBuilder::new(spec.name);
    for t in spec.tasks {
        b.add_task(t);
    }
    for e in spec.edges {
        b.add_dep(e.src, e.dst, e.bytes)?;
    }
    Ok(b.build()?)
}

/// Renders the workflow as a Graphviz `digraph`, one node per task
/// (labelled with name and kernel class) and one edge per dependency
/// (labelled with megabytes).
#[must_use]
pub fn to_dot(wf: &Workflow) -> String {
    use std::fmt::Write;

    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", wf.name());
    let _ = writeln!(out, "  rankdir=TB;");
    for (i, t) in wf.tasks().iter().enumerate() {
        let _ = writeln!(
            out,
            "  t{i} [label=\"{}\\n{} ({:.1} Gflop)\"];",
            t.name(),
            t.cost().kernel_class(),
            t.cost().gflop()
        );
    }
    for e in wf.edges() {
        let _ = writeln!(
            out,
            "  t{} -> t{} [label=\"{:.1} MB\"];",
            e.src.0,
            e.dst.0,
            e.bytes / 1e6
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::montage;

    #[test]
    fn json_roundtrip_preserves_workflow() {
        let wf = montage(50, 5).unwrap();
        let json = to_json(&wf).unwrap();
        let back = from_json(&json).unwrap();
        assert_eq!(wf, back);
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(matches!(
            from_json("{not json"),
            Err(WorkflowIoError::Json(_))
        ));
    }

    #[test]
    fn cyclic_json_rejected() {
        let json = r#"{
            "name": "cyc",
            "tasks": [
                {"name": "a", "stage": "s",
                 "cost": {"gflop": 1.0, "bytes_touched": 0.0,
                          "kernel_class": "Fft"}},
                {"name": "b", "stage": "s",
                 "cost": {"gflop": 1.0, "bytes_touched": 0.0,
                          "kernel_class": "Fft"}}
            ],
            "edges": [
                {"src": 0, "dst": 1, "bytes": 1.0},
                {"src": 1, "dst": 0, "bytes": 1.0}
            ]
        }"#;
        assert!(matches!(
            from_json(json),
            Err(WorkflowIoError::Invalid(WorkflowError::Cycle(_)))
        ));
    }

    #[test]
    fn non_finite_cost_rejected_with_typed_error() {
        // 1e400 overflows f64 to +inf during parsing; the constructor
        // validation is bypassed on deserialization, so the builder must
        // catch it.
        let json = r#"{
            "name": "inf",
            "tasks": [
                {"name": "a", "stage": "s",
                 "cost": {"gflop": 1e400, "bytes_touched": 0.0,
                          "kernel_class": "Fft"}}
            ],
            "edges": []
        }"#;
        match from_json(json) {
            Err(WorkflowIoError::Invalid(WorkflowError::InvalidCost(t))) => {
                assert_eq!(t.0, 0);
            }
            other => panic!("expected InvalidCost, got {other:?}"),
        }
        // Negative costs smuggled past the constructor are caught too.
        let json = json.replace("1e400", "-3.0");
        assert!(matches!(
            from_json(&json),
            Err(WorkflowIoError::Invalid(WorkflowError::InvalidCost(_)))
        ));
    }

    #[test]
    fn dot_mentions_every_task_and_edge() {
        let wf = montage(20, 1).unwrap();
        let dot = to_dot(&wf);
        assert!(dot.starts_with("digraph"));
        assert!(dot.ends_with("}\n"));
        assert_eq!(dot.matches(" -> ").count(), wf.num_edges());
        for i in 0..wf.num_tasks() {
            assert!(dot.contains(&format!("t{i} ")), "missing node t{i}");
        }
    }

    #[test]
    fn error_display() {
        let e = from_json("{").unwrap_err();
        assert!(e.to_string().contains("malformed"));
        let src = std::error::Error::source(&e);
        assert!(src.is_some());
    }
}
