//! Scientific workflow DAG model and generators for the `helios` workspace.
//!
//! A [`Workflow`] is a directed acyclic graph of [`Task`]s (typed by
//! [`KernelClass`](helios_platform::KernelClass) and sized in GFLOP) joined
//! by [`DataDep`] edges (sized in bytes). The crate provides:
//!
//! * the validated DAG container itself ([`Workflow`], [`WorkflowBuilder`]),
//! * structural [`analysis`] — topological order, critical path, top/bottom
//!   levels, width, communication-to-computation ratio,
//! * [`generators`] for the five classic scientific discovery workflows
//!   (Montage, CyberShake, Epigenomics, LIGO Inspiral, SIPHT) and synthetic
//!   DAG families (layered random, fork–join, Gaussian elimination, trees,
//!   chains),
//! * JSON and Graphviz DOT [`io`].
//!
//! # Examples
//!
//! ```
//! use helios_workflow::generators::montage;
//!
//! let wf = montage(50, 42)?;
//! assert!(wf.num_tasks() >= 50);
//! assert!(wf.validate().is_ok());
//! # Ok::<(), helios_workflow::WorkflowError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
mod dag;
mod error;
pub mod generators;
pub mod io;
mod task;

pub use dag::{DataDep, EdgeId, Workflow, WorkflowBuilder};
pub use error::WorkflowError;
pub use task::{Task, TaskId};
