//! The five classic scientific discovery workflows.
//!
//! Structures and stage ratios follow the Pegasus workflow
//! characterizations (Juve et al., "Characterizing and profiling
//! scientific workflows", FGCS 2013); magnitudes are expressed as GFLOP
//! and bytes so the platform models can place them. Each generator takes
//! an *approximate* total task count `n` and a `seed`, and documents how
//! `n` maps onto its width parameter.

use helios_platform::KernelClass;
use helios_sim::SimRng;

use crate::dag::{Workflow, WorkflowBuilder};
use crate::error::WorkflowError;
use crate::task::TaskId;

use super::{unify_product_sizes, StageSpec};

const MB: f64 = 1e6;

fn spec(
    name: &'static str,
    class: KernelClass,
    gflop: f64,
    bytes_touched: f64,
    out_bytes: f64,
) -> StageSpec {
    StageSpec {
        name,
        class,
        gflop,
        bytes_touched,
        out_bytes,
    }
}

/// The named workflow families, for sweeps over the whole suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum WorkflowClass {
    /// Astronomy image mosaicking (wide data-parallel stages).
    Montage,
    /// Seismic hazard simulation (two huge inputs fan out to many pairs).
    CyberShake,
    /// Genome sequence processing (parallel deep pipelines).
    Epigenomics,
    /// Gravitational-wave matched filtering (grouped FFT pipelines).
    LigoInspiral,
    /// sRNA annotation (wide independent search feeding an aggregation).
    Sipht,
}

impl WorkflowClass {
    /// All five families.
    pub const ALL: [WorkflowClass; 5] = [
        WorkflowClass::Montage,
        WorkflowClass::CyberShake,
        WorkflowClass::Epigenomics,
        WorkflowClass::LigoInspiral,
        WorkflowClass::Sipht,
    ];

    /// Short stable identifier.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            WorkflowClass::Montage => "montage",
            WorkflowClass::CyberShake => "cybershake",
            WorkflowClass::Epigenomics => "epigenomics",
            WorkflowClass::LigoInspiral => "ligo",
            WorkflowClass::Sipht => "sipht",
        }
    }

    /// Generates an instance with approximately `n` tasks.
    ///
    /// # Errors
    ///
    /// Returns [`WorkflowError::InvalidParameter`] if `n` is below the
    /// family's minimum size.
    pub fn generate(self, n: usize, seed: u64) -> Result<Workflow, WorkflowError> {
        match self {
            WorkflowClass::Montage => montage(n, seed),
            WorkflowClass::CyberShake => cybershake(n, seed),
            WorkflowClass::Epigenomics => epigenomics(n, seed),
            WorkflowClass::LigoInspiral => ligo_inspiral(n, seed),
            WorkflowClass::Sipht => sipht(n, seed),
        }
    }
}

impl std::fmt::Display for WorkflowClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Montage astronomy mosaic with approximately `n` tasks (`n ≥ 11`).
///
/// Structure (width `w = (n - 5) / 3`): `w` × mProject → `w−1` × mDiffFit
/// → mConcatFit → mBgModel → `w` × mBackground → mImgtbl → mAdd →
/// mShrink → mJPEG.
///
/// # Errors
///
/// Returns [`WorkflowError::InvalidParameter`] if `n < 11`.
pub fn montage(n: usize, seed: u64) -> Result<Workflow, WorkflowError> {
    if n < 11 {
        return Err(WorkflowError::InvalidParameter(format!(
            "montage needs n >= 11, got {n}"
        )));
    }
    let w = (n - 5) / 3;
    let mut rng = SimRng::seed_from(seed);
    let mut b = WorkflowBuilder::new(format!("montage-{n}"));

    let s_project = spec("mProject", KernelClass::Stencil, 12.0, 200.0 * MB, 8.0 * MB);
    let s_diff = spec("mDiffFit", KernelClass::Reduction, 2.0, 40.0 * MB, 0.5 * MB);
    let s_concat = spec(
        "mConcatFit",
        KernelClass::Reduction,
        1.0,
        10.0 * MB,
        0.2 * MB,
    );
    let s_bg_model = spec(
        "mBgModel",
        KernelClass::DenseLinearAlgebra,
        30.0,
        50.0 * MB,
        0.1 * MB,
    );
    let s_background = spec(
        "mBackground",
        KernelClass::Stencil,
        4.0,
        80.0 * MB,
        8.0 * MB,
    );
    let s_imgtbl = spec(
        "mImgtbl",
        KernelClass::BranchyScalar,
        1.0,
        20.0 * MB,
        0.5 * MB,
    );
    let s_add = spec("mAdd", KernelClass::Reduction, 40.0, 600.0 * MB, 120.0 * MB);
    let s_shrink = spec(
        "mShrink",
        KernelClass::DataMovement,
        3.0,
        120.0 * MB,
        12.0 * MB,
    );
    let s_jpeg = spec(
        "mJPEG",
        KernelClass::SignalProcessing,
        2.0,
        12.0 * MB,
        2.0 * MB,
    );

    let projects: Vec<TaskId> = (0..w)
        .map(|i| b.add_task(s_project.sample(i, &mut rng)))
        .collect();
    let diffs: Vec<TaskId> = (0..w.saturating_sub(1))
        .map(|i| b.add_task(s_diff.sample(i, &mut rng)))
        .collect();
    for (i, &d) in diffs.iter().enumerate() {
        b.add_dep(projects[i], d, s_project.sample_out_bytes(&mut rng))?;
        b.add_dep(projects[i + 1], d, s_project.sample_out_bytes(&mut rng))?;
    }
    let concat = b.add_task(s_concat.sample(0, &mut rng));
    for &d in &diffs {
        b.add_dep(d, concat, s_diff.sample_out_bytes(&mut rng))?;
    }
    let bg_model = b.add_task(s_bg_model.sample(0, &mut rng));
    b.add_dep(concat, bg_model, s_concat.sample_out_bytes(&mut rng))?;
    let backgrounds: Vec<TaskId> = (0..w)
        .map(|i| b.add_task(s_background.sample(i, &mut rng)))
        .collect();
    for (i, &bg) in backgrounds.iter().enumerate() {
        b.add_dep(bg_model, bg, s_bg_model.sample_out_bytes(&mut rng))?;
        b.add_dep(projects[i], bg, s_project.sample_out_bytes(&mut rng))?;
    }
    let imgtbl = b.add_task(s_imgtbl.sample(0, &mut rng));
    for &bg in &backgrounds {
        b.add_dep(bg, imgtbl, s_background.sample_out_bytes(&mut rng))?;
    }
    let add = b.add_task(s_add.sample(0, &mut rng));
    b.add_dep(imgtbl, add, s_imgtbl.sample_out_bytes(&mut rng))?;
    let shrink = b.add_task(s_shrink.sample(0, &mut rng));
    b.add_dep(add, shrink, s_add.sample_out_bytes(&mut rng))?;
    let jpeg = b.add_task(s_jpeg.sample(0, &mut rng));
    b.add_dep(shrink, jpeg, s_shrink.sample_out_bytes(&mut rng))?;

    unify_product_sizes(b.build()?)
}

/// CyberShake seismic hazard with approximately `n` tasks (`n ≥ 8`).
///
/// Structure (pairs `s = (n - 4) / 2`): 2 × ExtractSGT → `s` ×
/// SeismogramSynthesis (each reading both SGTs) → `s` × PeakValCalc →
/// ZipSeis + ZipPSA.
///
/// # Errors
///
/// Returns [`WorkflowError::InvalidParameter`] if `n < 8`.
pub fn cybershake(n: usize, seed: u64) -> Result<Workflow, WorkflowError> {
    if n < 8 {
        return Err(WorkflowError::InvalidParameter(format!(
            "cybershake needs n >= 8, got {n}"
        )));
    }
    let s = (n - 4) / 2;
    let mut rng = SimRng::seed_from(seed);
    let mut b = WorkflowBuilder::new(format!("cybershake-{n}"));

    let s_extract = spec(
        "ExtractSGT",
        KernelClass::DataMovement,
        20.0,
        4_000.0 * MB,
        300.0 * MB,
    );
    let s_synth = spec(
        "SeismogramSynthesis",
        KernelClass::Fft,
        180.0,
        600.0 * MB,
        10.0 * MB,
    );
    let s_peak = spec(
        "PeakValCalc",
        KernelClass::Reduction,
        1.0,
        10.0 * MB,
        0.1 * MB,
    );
    let s_zip = spec(
        "Zip",
        KernelClass::DataMovement,
        5.0,
        500.0 * MB,
        100.0 * MB,
    );

    let sgt_x = b.add_task(s_extract.sample(0, &mut rng));
    let sgt_y = b.add_task(s_extract.sample(1, &mut rng));
    let zip_seis = {
        let synths: Vec<TaskId> = (0..s)
            .map(|i| b.add_task(s_synth.sample(i, &mut rng)))
            .collect();
        let peaks: Vec<TaskId> = (0..s)
            .map(|i| b.add_task(s_peak.sample(i, &mut rng)))
            .collect();
        for (i, &syn) in synths.iter().enumerate() {
            b.add_dep(sgt_x, syn, s_extract.sample_out_bytes(&mut rng))?;
            b.add_dep(sgt_y, syn, s_extract.sample_out_bytes(&mut rng))?;
            b.add_dep(syn, peaks[i], s_synth.sample_out_bytes(&mut rng))?;
        }
        let zip_seis = b.add_task(s_zip.sample(0, &mut rng));
        for &syn in &synths {
            b.add_dep(syn, zip_seis, s_synth.sample_out_bytes(&mut rng))?;
        }
        let zip_psa = b.add_task(s_zip.sample(1, &mut rng));
        for &pk in &peaks {
            b.add_dep(pk, zip_psa, s_peak.sample_out_bytes(&mut rng))?;
        }
        zip_seis
    };
    let _ = zip_seis;
    unify_product_sizes(b.build()?)
}

/// Epigenomics genome pipeline with approximately `n` tasks (`n ≥ 15`).
///
/// Structure (4 lanes, `k = (n - 3 - 8) / 16` splits per lane): per lane
/// fastqSplit → `k` × (filterContams → sol2sanger → fastq2bfq → map) →
/// mapMerge; then global mapMerge → maqIndex → pileup.
///
/// # Errors
///
/// Returns [`WorkflowError::InvalidParameter`] if `n < 15`.
pub fn epigenomics(n: usize, seed: u64) -> Result<Workflow, WorkflowError> {
    if n < 15 {
        return Err(WorkflowError::InvalidParameter(format!(
            "epigenomics needs n >= 15, got {n}"
        )));
    }
    let lanes = 4usize;
    let k = ((n.saturating_sub(3 + 2 * lanes)) / (4 * lanes)).max(1);
    let mut rng = SimRng::seed_from(seed);
    let mut b = WorkflowBuilder::new(format!("epigenomics-{n}"));

    let s_split = spec(
        "fastqSplit",
        KernelClass::DataMovement,
        2.0,
        400.0 * MB,
        100.0 * MB,
    );
    let s_filter = spec(
        "filterContams",
        KernelClass::BranchyScalar,
        15.0,
        100.0 * MB,
        90.0 * MB,
    );
    let s_sol = spec(
        "sol2sanger",
        KernelClass::DataMovement,
        3.0,
        90.0 * MB,
        80.0 * MB,
    );
    let s_bfq = spec(
        "fastq2bfq",
        KernelClass::DataMovement,
        3.0,
        80.0 * MB,
        40.0 * MB,
    );
    let s_map = spec(
        "map",
        KernelClass::BranchyScalar,
        300.0,
        500.0 * MB,
        20.0 * MB,
    );
    let s_merge = spec(
        "mapMerge",
        KernelClass::Reduction,
        10.0,
        200.0 * MB,
        80.0 * MB,
    );
    let s_index = spec(
        "maqIndex",
        KernelClass::BranchyScalar,
        20.0,
        150.0 * MB,
        50.0 * MB,
    );
    let s_pileup = spec(
        "pileup",
        KernelClass::Reduction,
        40.0,
        300.0 * MB,
        60.0 * MB,
    );

    let global_merge = b.add_task(s_merge.sample(1000, &mut rng));
    for lane in 0..lanes {
        let split = b.add_task(s_split.sample(lane, &mut rng));
        let lane_merge = b.add_task(s_merge.sample(lane, &mut rng));
        for j in 0..k {
            let idx = lane * k + j;
            let filter = b.add_task(s_filter.sample(idx, &mut rng));
            let sol = b.add_task(s_sol.sample(idx, &mut rng));
            let bfq = b.add_task(s_bfq.sample(idx, &mut rng));
            let map = b.add_task(s_map.sample(idx, &mut rng));
            b.add_dep(split, filter, s_split.sample_out_bytes(&mut rng))?;
            b.add_dep(filter, sol, s_filter.sample_out_bytes(&mut rng))?;
            b.add_dep(sol, bfq, s_sol.sample_out_bytes(&mut rng))?;
            b.add_dep(bfq, map, s_bfq.sample_out_bytes(&mut rng))?;
            b.add_dep(map, lane_merge, s_map.sample_out_bytes(&mut rng))?;
        }
        b.add_dep(lane_merge, global_merge, s_merge.sample_out_bytes(&mut rng))?;
    }
    let index = b.add_task(s_index.sample(0, &mut rng));
    b.add_dep(global_merge, index, s_merge.sample_out_bytes(&mut rng))?;
    let pileup = b.add_task(s_pileup.sample(0, &mut rng));
    b.add_dep(index, pileup, s_index.sample_out_bytes(&mut rng))?;

    unify_product_sizes(b.build()?)
}

/// LIGO Inspiral matched-filtering with approximately `n` tasks (`n ≥ 12`).
///
/// Structure (`g` groups of `t` templates, `n ≈ g(4t + 2)`): per group
/// `t` × TmpltBank → `t` × Inspiral → Thinca → `t` × TrigBank → `t` ×
/// Inspiral2 → Thinca2.
///
/// # Errors
///
/// Returns [`WorkflowError::InvalidParameter`] if `n < 12`.
pub fn ligo_inspiral(n: usize, seed: u64) -> Result<Workflow, WorkflowError> {
    if n < 12 {
        return Err(WorkflowError::InvalidParameter(format!(
            "ligo_inspiral needs n >= 12, got {n}"
        )));
    }
    let g = (n / 50).max(1);
    let t = ((n / g).saturating_sub(2) / 4).max(1);
    let mut rng = SimRng::seed_from(seed);
    let mut b = WorkflowBuilder::new(format!("ligo-{n}"));

    let s_tmplt = spec(
        "TmpltBank",
        KernelClass::DenseLinearAlgebra,
        60.0,
        200.0 * MB,
        1.0 * MB,
    );
    let s_inspiral = spec("Inspiral", KernelClass::Fft, 400.0, 800.0 * MB, 2.0 * MB);
    let s_thinca = spec("Thinca", KernelClass::Reduction, 5.0, 20.0 * MB, 1.0 * MB);
    let s_trig = spec(
        "TrigBank",
        KernelClass::BranchyScalar,
        2.0,
        10.0 * MB,
        1.0 * MB,
    );

    for grp in 0..g {
        let base = grp * t;
        let tmplts: Vec<TaskId> = (0..t)
            .map(|i| b.add_task(s_tmplt.sample(base + i, &mut rng)))
            .collect();
        let inspirals: Vec<TaskId> = (0..t)
            .map(|i| b.add_task(s_inspiral.sample(base + i, &mut rng)))
            .collect();
        for (i, &tm) in tmplts.iter().enumerate() {
            b.add_dep(tm, inspirals[i], s_tmplt.sample_out_bytes(&mut rng))?;
        }
        let thinca = b.add_task(s_thinca.sample(2 * grp, &mut rng));
        for &ins in &inspirals {
            b.add_dep(ins, thinca, s_inspiral.sample_out_bytes(&mut rng))?;
        }
        let trigs: Vec<TaskId> = (0..t)
            .map(|i| b.add_task(s_trig.sample(base + i, &mut rng)))
            .collect();
        let inspirals2: Vec<TaskId> = (0..t)
            .map(|i| b.add_task(s_inspiral.sample(base + t + i, &mut rng)))
            .collect();
        for (i, &tr) in trigs.iter().enumerate() {
            b.add_dep(thinca, tr, s_thinca.sample_out_bytes(&mut rng))?;
            b.add_dep(tr, inspirals2[i], s_trig.sample_out_bytes(&mut rng))?;
        }
        let thinca2 = b.add_task(s_thinca.sample(2 * grp + 1, &mut rng));
        for &ins in &inspirals2 {
            b.add_dep(ins, thinca2, s_inspiral.sample_out_bytes(&mut rng))?;
        }
    }
    unify_product_sizes(b.build()?)
}

/// SIPHT sRNA annotation with approximately `n` tasks (`n ≥ 14`).
///
/// Structure (`p = n - 12` Patser tasks): `p` × Patser → PatserConcate;
/// Transterm + Findterm + RNAMotif + Blast → SRNA (also reading
/// PatserConcate) → FFN_Parse → 4 × downstream Blast variants →
/// SRNAAnnotate.
///
/// # Errors
///
/// Returns [`WorkflowError::InvalidParameter`] if `n < 14`.
pub fn sipht(n: usize, seed: u64) -> Result<Workflow, WorkflowError> {
    if n < 14 {
        return Err(WorkflowError::InvalidParameter(format!(
            "sipht needs n >= 14, got {n}"
        )));
    }
    let p = n - 12;
    let mut rng = SimRng::seed_from(seed);
    let mut b = WorkflowBuilder::new(format!("sipht-{n}"));

    let s_patser = spec(
        "Patser",
        KernelClass::BranchyScalar,
        3.0,
        20.0 * MB,
        0.5 * MB,
    );
    let s_concate = spec(
        "PatserConcate",
        KernelClass::Reduction,
        1.0,
        10.0 * MB,
        2.0 * MB,
    );
    let s_transterm = spec(
        "Transterm",
        KernelClass::BranchyScalar,
        120.0,
        150.0 * MB,
        1.0 * MB,
    );
    let s_findterm = spec(
        "Findterm",
        KernelClass::BranchyScalar,
        220.0,
        250.0 * MB,
        5.0 * MB,
    );
    let s_motif = spec(
        "RNAMotif",
        KernelClass::BranchyScalar,
        40.0,
        60.0 * MB,
        1.0 * MB,
    );
    let s_blast = spec(
        "Blast",
        KernelClass::BranchyScalar,
        150.0,
        400.0 * MB,
        2.0 * MB,
    );
    let s_srna = spec("SRNA", KernelClass::Reduction, 15.0, 50.0 * MB, 3.0 * MB);
    let s_ffn = spec(
        "FFN_Parse",
        KernelClass::DataMovement,
        2.0,
        30.0 * MB,
        10.0 * MB,
    );
    let s_annotate = spec(
        "SRNAAnnotate",
        KernelClass::Reduction,
        8.0,
        40.0 * MB,
        1.0 * MB,
    );

    let patsers: Vec<TaskId> = (0..p)
        .map(|i| b.add_task(s_patser.sample(i, &mut rng)))
        .collect();
    let concate = b.add_task(s_concate.sample(0, &mut rng));
    for &pt in &patsers {
        b.add_dep(pt, concate, s_patser.sample_out_bytes(&mut rng))?;
    }
    let transterm = b.add_task(s_transterm.sample(0, &mut rng));
    let findterm = b.add_task(s_findterm.sample(0, &mut rng));
    let motif = b.add_task(s_motif.sample(0, &mut rng));
    let blast = b.add_task(s_blast.sample(0, &mut rng));
    let srna = b.add_task(s_srna.sample(0, &mut rng));
    b.add_dep(concate, srna, s_concate.sample_out_bytes(&mut rng))?;
    for (src, sspec) in [
        (transterm, s_transterm),
        (findterm, s_findterm),
        (motif, s_motif),
        (blast, s_blast),
    ] {
        b.add_dep(src, srna, sspec.sample_out_bytes(&mut rng))?;
    }
    let ffn = b.add_task(s_ffn.sample(0, &mut rng));
    b.add_dep(srna, ffn, s_srna.sample_out_bytes(&mut rng))?;
    let downstream: Vec<TaskId> = (1..=4)
        .map(|i| b.add_task(s_blast.sample(i, &mut rng)))
        .collect();
    let annotate = b.add_task(s_annotate.sample(0, &mut rng));
    for &d in &downstream {
        b.add_dep(ffn, d, s_ffn.sample_out_bytes(&mut rng))?;
        b.add_dep(d, annotate, s_blast.sample_out_bytes(&mut rng))?;
    }
    b.add_dep(srna, annotate, s_srna.sample_out_bytes(&mut rng))?;

    unify_product_sizes(b.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;

    #[test]
    fn all_families_generate_valid_dags() {
        for class in WorkflowClass::ALL {
            for n in [50, 100, 500] {
                let wf = class
                    .generate(n, 7)
                    .unwrap_or_else(|e| panic!("{class} n={n}: {e}"));
                wf.validate().unwrap();
                // Within 40% of requested size (structure quantization).
                let tasks = wf.num_tasks();
                assert!(
                    (tasks as f64) > 0.6 * n as f64 && (tasks as f64) < 1.4 * n as f64,
                    "{class} n={n} produced {tasks} tasks"
                );
                assert!(wf.num_edges() >= tasks - 1, "{class} must be connected-ish");
            }
        }
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let a = montage(100, 3).unwrap();
        let b = montage(100, 3).unwrap();
        assert_eq!(a, b);
        let c = montage(100, 4).unwrap();
        assert_ne!(a, c, "different seed must perturb magnitudes");
        // Same structure though.
        assert_eq!(a.num_tasks(), c.num_tasks());
        assert_eq!(a.num_edges(), c.num_edges());
    }

    #[test]
    fn montage_exact_structure() {
        let wf = montage(50, 1).unwrap();
        // w = 15 -> 3*15+5 = 50 tasks.
        assert_eq!(wf.num_tasks(), 50);
        assert_eq!(wf.entry_tasks().len(), 15, "all mProject are entries");
        assert_eq!(wf.exit_tasks().len(), 1, "mJPEG is the single exit");
        assert_eq!(analysis::depth(&wf), 9);
    }

    #[test]
    fn cybershake_fans_out_from_two_roots() {
        let wf = cybershake(100, 1).unwrap();
        assert_eq!(wf.entry_tasks().len(), 2);
        assert_eq!(wf.exit_tasks().len(), 2);
        assert_eq!(analysis::depth(&wf), 4);
        // Width dominated by the synthesis layer.
        assert!(analysis::width(&wf) >= 40);
    }

    #[test]
    fn epigenomics_is_deep() {
        let wf = epigenomics(100, 1).unwrap();
        assert!(analysis::depth(&wf) >= 8, "depth {}", analysis::depth(&wf));
        assert_eq!(wf.exit_tasks().len(), 1);
        assert_eq!(wf.entry_tasks().len(), 4, "one fastqSplit per lane");
    }

    #[test]
    fn ligo_groups_structure() {
        let wf = ligo_inspiral(100, 1).unwrap();
        // g=2 groups, t=12: entries = g*t TmpltBank tasks.
        assert_eq!(wf.entry_tasks().len(), 24);
        assert_eq!(wf.exit_tasks().len(), 2, "one Thinca2 per group");
        assert_eq!(analysis::depth(&wf), 6);
    }

    #[test]
    fn sipht_aggregates() {
        let wf = sipht(60, 1).unwrap();
        assert_eq!(wf.exit_tasks().len(), 1);
        // p patsers + 4 root searches are entries.
        assert_eq!(wf.entry_tasks().len(), 48 + 4);
    }

    #[test]
    fn too_small_n_rejected() {
        assert!(montage(5, 0).is_err());
        assert!(cybershake(5, 0).is_err());
        assert!(epigenomics(5, 0).is_err());
        assert!(ligo_inspiral(5, 0).is_err());
        assert!(sipht(5, 0).is_err());
    }

    #[test]
    fn class_roundtrip_names() {
        for c in WorkflowClass::ALL {
            assert!(!c.as_str().is_empty());
        }
        assert_eq!(WorkflowClass::Montage.to_string(), "montage");
    }
}
