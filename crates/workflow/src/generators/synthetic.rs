//! Synthetic DAG families for controlled parameter sweeps.

use helios_platform::{ComputeCost, KernelClass, Platform, PlatformError};
use helios_sim::SimRng;

use crate::analysis;
use crate::dag::{Workflow, WorkflowBuilder};
use crate::error::WorkflowError;
use crate::task::{Task, TaskId};

use super::unify_product_sizes;

/// Configuration for [`layered_random`].
#[derive(Debug, Clone)]
pub struct LayeredConfig {
    /// Number of levels.
    pub levels: usize,
    /// Tasks per level.
    pub width: usize,
    /// Probability of an edge between a task and each task of the previous
    /// level (each task is guaranteed at least one predecessor edge).
    pub edge_prob: f64,
    /// Mean work per task, GFLOP.
    pub mean_gflop: f64,
    /// Mean payload per edge, bytes.
    pub mean_bytes: f64,
    /// Draw each task's kernel class uniformly from this set.
    pub classes: Vec<KernelClass>,
}

impl Default for LayeredConfig {
    fn default() -> Self {
        LayeredConfig {
            levels: 10,
            width: 10,
            edge_prob: 0.3,
            mean_gflop: 50.0,
            mean_bytes: 10e6,
            classes: vec![
                KernelClass::DenseLinearAlgebra,
                KernelClass::Fft,
                KernelClass::Stencil,
                KernelClass::Reduction,
                KernelClass::BranchyScalar,
            ],
        }
    }
}

fn sample_task(
    name: String,
    stage: &str,
    mean_gflop: f64,
    classes: &[KernelClass],
    rng: &mut SimRng,
) -> Task {
    let class = *rng.choose(classes).unwrap_or(&KernelClass::BranchyScalar);
    let gflop = rng.normal_clamped(mean_gflop, 0.4 * mean_gflop, 0.05 * mean_gflop);
    // Memory traffic proportional to work with intensity ~10 flop/byte.
    let bytes = gflop * 1e9 / 10.0;
    Task::new(name, stage, ComputeCost::new(gflop, bytes, class))
}

fn sample_bytes(mean: f64, rng: &mut SimRng) -> f64 {
    rng.normal_clamped(mean, 0.4 * mean, 0.05 * mean)
}

/// A layered random DAG: `levels × width` tasks; each non-entry task draws
/// edges from the previous level with probability `edge_prob` (at least
/// one guaranteed).
///
/// # Errors
///
/// Returns [`WorkflowError::InvalidParameter`] for zero dimensions or an
/// `edge_prob` outside `[0, 1]`.
pub fn layered_random(config: &LayeredConfig, seed: u64) -> Result<Workflow, WorkflowError> {
    if config.levels == 0 || config.width == 0 {
        return Err(WorkflowError::InvalidParameter(
            "levels and width must be positive".into(),
        ));
    }
    if !(0.0..=1.0).contains(&config.edge_prob) {
        return Err(WorkflowError::InvalidParameter(format!(
            "edge_prob {} out of [0, 1]",
            config.edge_prob
        )));
    }
    if config.classes.is_empty() {
        return Err(WorkflowError::InvalidParameter(
            "classes must be non-empty".into(),
        ));
    }
    let mut rng = SimRng::seed_from(seed);
    let mut b = WorkflowBuilder::new(format!("layered-{}x{}", config.levels, config.width));
    let mut prev: Vec<TaskId> = Vec::new();
    for level in 0..config.levels {
        let current: Vec<TaskId> = (0..config.width)
            .map(|i| {
                b.add_task(sample_task(
                    format!("l{level}_{i}"),
                    "layer",
                    config.mean_gflop,
                    &config.classes,
                    &mut rng,
                ))
            })
            .collect();
        if level > 0 {
            for &t in &current {
                let mut connected = false;
                for &p in &prev {
                    if rng.chance(config.edge_prob) {
                        b.add_dep(p, t, sample_bytes(config.mean_bytes, &mut rng))?;
                        connected = true;
                    }
                }
                if !connected {
                    let &p = rng.choose(&prev).expect("prev level is non-empty");
                    b.add_dep(p, t, sample_bytes(config.mean_bytes, &mut rng))?;
                }
            }
        }
        prev = current;
    }
    unify_product_sizes(b.build()?)
}

/// A fork–join workflow: `stages` sequential phases, each forking into
/// `branches` parallel tasks that re-join in a barrier task.
///
/// # Errors
///
/// Returns [`WorkflowError::InvalidParameter`] for zero dimensions.
pub fn fork_join(
    stages: usize,
    branches: usize,
    mean_gflop: f64,
    mean_bytes: f64,
    seed: u64,
) -> Result<Workflow, WorkflowError> {
    if stages == 0 || branches == 0 {
        return Err(WorkflowError::InvalidParameter(
            "stages and branches must be positive".into(),
        ));
    }
    let classes = [
        KernelClass::DenseLinearAlgebra,
        KernelClass::Stencil,
        KernelClass::Reduction,
    ];
    let mut rng = SimRng::seed_from(seed);
    let mut b = WorkflowBuilder::new(format!("forkjoin-{stages}x{branches}"));
    let mut join = b.add_task(sample_task(
        "src".into(),
        "join",
        mean_gflop,
        &classes,
        &mut rng,
    ));
    for stage in 0..stages {
        let forks: Vec<TaskId> = (0..branches)
            .map(|i| {
                b.add_task(sample_task(
                    format!("s{stage}_b{i}"),
                    "fork",
                    mean_gflop,
                    &classes,
                    &mut rng,
                ))
            })
            .collect();
        let next_join = b.add_task(sample_task(
            format!("join{stage}"),
            "join",
            mean_gflop,
            &classes,
            &mut rng,
        ));
        for &f in &forks {
            b.add_dep(join, f, sample_bytes(mean_bytes, &mut rng))?;
            b.add_dep(f, next_join, sample_bytes(mean_bytes, &mut rng))?;
        }
        join = next_join;
    }
    unify_product_sizes(b.build()?)
}

/// An in-tree (reduction tree): `fanin^depth` leaves reduce level by level
/// to a single root.
///
/// # Errors
///
/// Returns [`WorkflowError::InvalidParameter`] for `depth == 0` or
/// `fanin < 2`.
pub fn in_tree(
    depth: usize,
    fanin: usize,
    mean_gflop: f64,
    mean_bytes: f64,
    seed: u64,
) -> Result<Workflow, WorkflowError> {
    if depth == 0 || fanin < 2 {
        return Err(WorkflowError::InvalidParameter(
            "depth must be positive and fanin >= 2".into(),
        ));
    }
    let classes = [KernelClass::Reduction];
    let mut rng = SimRng::seed_from(seed);
    let mut b = WorkflowBuilder::new(format!("intree-d{depth}f{fanin}"));
    let mut level: Vec<TaskId> = (0..fanin.pow(depth as u32))
        .map(|i| {
            b.add_task(sample_task(
                format!("leaf{i}"),
                "leaf",
                mean_gflop,
                &classes,
                &mut rng,
            ))
        })
        .collect();
    let mut lvl = 0;
    while level.len() > 1 {
        let mut next = Vec::new();
        for (gi, group) in level.chunks(fanin).enumerate() {
            let parent = b.add_task(sample_task(
                format!("n{lvl}_{gi}"),
                "reduce",
                mean_gflop,
                &classes,
                &mut rng,
            ));
            for &child in group {
                b.add_dep(child, parent, sample_bytes(mean_bytes, &mut rng))?;
            }
            next.push(parent);
        }
        level = next;
        lvl += 1;
    }
    unify_product_sizes(b.build()?)
}

/// An out-tree (broadcast tree): mirror image of [`in_tree`].
///
/// # Errors
///
/// Returns [`WorkflowError::InvalidParameter`] for `depth == 0` or
/// `fanout < 2`.
pub fn out_tree(
    depth: usize,
    fanout: usize,
    mean_gflop: f64,
    mean_bytes: f64,
    seed: u64,
) -> Result<Workflow, WorkflowError> {
    if depth == 0 || fanout < 2 {
        return Err(WorkflowError::InvalidParameter(
            "depth must be positive and fanout >= 2".into(),
        ));
    }
    let classes = [KernelClass::Stencil];
    let mut rng = SimRng::seed_from(seed);
    let mut b = WorkflowBuilder::new(format!("outtree-d{depth}f{fanout}"));
    let root = b.add_task(sample_task(
        "root".into(),
        "root",
        mean_gflop,
        &classes,
        &mut rng,
    ));
    let mut level = vec![root];
    for d in 0..depth {
        let mut next = Vec::new();
        for (pi, &parent) in level.iter().enumerate() {
            for c in 0..fanout {
                let child = b.add_task(sample_task(
                    format!("n{d}_{pi}_{c}"),
                    "spread",
                    mean_gflop,
                    &classes,
                    &mut rng,
                ));
                b.add_dep(parent, child, sample_bytes(mean_bytes, &mut rng))?;
                next.push(child);
            }
        }
        level = next;
    }
    unify_product_sizes(b.build()?)
}

/// A linear chain of `n` tasks — the fully sequential worst case.
///
/// # Errors
///
/// Returns [`WorkflowError::InvalidParameter`] for `n == 0`.
pub fn chain(
    n: usize,
    mean_gflop: f64,
    mean_bytes: f64,
    seed: u64,
) -> Result<Workflow, WorkflowError> {
    if n == 0 {
        return Err(WorkflowError::InvalidParameter("n must be positive".into()));
    }
    let classes = [KernelClass::BranchyScalar, KernelClass::Fft];
    let mut rng = SimRng::seed_from(seed);
    let mut b = WorkflowBuilder::new(format!("chain-{n}"));
    let mut prev: Option<TaskId> = None;
    for i in 0..n {
        let t = b.add_task(sample_task(
            format!("c{i}"),
            "chain",
            mean_gflop,
            &classes,
            &mut rng,
        ));
        if let Some(p) = prev {
            b.add_dep(p, t, sample_bytes(mean_bytes, &mut rng))?;
        }
        prev = Some(t);
    }
    unify_product_sizes(b.build()?)
}

/// The Gaussian-elimination task graph over an `m × m` block matrix:
/// `m − 1` pivot steps, each followed by a shrinking wave of update tasks
/// (`m(m+1)/2 − 1` tasks total).
///
/// # Errors
///
/// Returns [`WorkflowError::InvalidParameter`] for `m < 2`.
pub fn gaussian_elimination(
    m: usize,
    mean_gflop: f64,
    mean_bytes: f64,
    seed: u64,
) -> Result<Workflow, WorkflowError> {
    if m < 2 {
        return Err(WorkflowError::InvalidParameter("m must be >= 2".into()));
    }
    let classes = [KernelClass::DenseLinearAlgebra];
    let mut rng = SimRng::seed_from(seed);
    let mut b = WorkflowBuilder::new(format!("gauss-{m}"));
    // updates[j] = task that last updated column j.
    let mut last_update: Vec<Option<TaskId>> = vec![None; m];
    for k in 0..m - 1 {
        let pivot = b.add_task(sample_task(
            format!("piv{k}"),
            "pivot",
            mean_gflop,
            &classes,
            &mut rng,
        ));
        if let Some(prev) = last_update[k] {
            b.add_dep(prev, pivot, sample_bytes(mean_bytes, &mut rng))?;
        }
        for (j, slot) in last_update.iter_mut().enumerate().skip(k + 1) {
            let upd = b.add_task(sample_task(
                format!("upd{k}_{j}"),
                "update",
                mean_gflop,
                &classes,
                &mut rng,
            ));
            b.add_dep(pivot, upd, sample_bytes(mean_bytes, &mut rng))?;
            if let Some(prev) = *slot {
                b.add_dep(prev, upd, sample_bytes(mean_bytes, &mut rng))?;
            }
            *slot = Some(upd);
        }
    }
    unify_product_sizes(b.build()?)
}

/// Rescales every edge payload so the workflow's CCR on `platform`
/// approximates `target_ccr`.
///
/// Uses two fixed-point iterations (link latencies make CCR slightly
/// nonlinear in payload size); the result is typically within a few
/// percent of the target.
///
/// # Errors
///
/// Returns [`WorkflowError::InvalidParameter`] for a non-positive target,
/// or a wrapped platform error.
pub fn scale_edges_to_ccr(
    wf: &Workflow,
    platform: &Platform,
    target_ccr: f64,
) -> Result<Workflow, WorkflowError> {
    if !(target_ccr.is_finite() && target_ccr > 0.0) {
        return Err(WorkflowError::InvalidParameter(format!(
            "target_ccr must be positive, got {target_ccr}"
        )));
    }
    let to_wf_err =
        |e: PlatformError| WorkflowError::InvalidParameter(format!("platform error: {e}"));
    let mut current = wf.clone();
    for _ in 0..2 {
        let now = analysis::ccr(&current, platform).map_err(to_wf_err)?;
        if now == 0.0 {
            return Err(WorkflowError::InvalidParameter(
                "workflow has zero communication; cannot scale".into(),
            ));
        }
        let factor = target_ccr / now;
        let mut b = WorkflowBuilder::new(current.name().to_owned());
        for t in current.tasks() {
            b.add_task(t.clone());
        }
        for e in current.edges() {
            b.add_dep(e.src, e.dst, e.bytes * factor)?;
        }
        current = b.build()?;
    }
    Ok(current)
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_platform::presets;

    #[test]
    fn layered_random_shape() {
        let cfg = LayeredConfig {
            levels: 5,
            width: 8,
            ..LayeredConfig::default()
        };
        let wf = layered_random(&cfg, 3).unwrap();
        assert_eq!(wf.num_tasks(), 40);
        wf.validate().unwrap();
        assert_eq!(analysis::depth(&wf), 5);
        assert_eq!(analysis::width(&wf), 8);
        // Every non-entry task has at least one predecessor.
        assert_eq!(wf.entry_tasks().len(), 8);
    }

    #[test]
    fn layered_random_rejects_bad_params() {
        let cfg = LayeredConfig {
            levels: 0,
            ..Default::default()
        };
        assert!(layered_random(&cfg, 0).is_err());
        let cfg = LayeredConfig {
            edge_prob: 1.5,
            ..Default::default()
        };
        assert!(layered_random(&cfg, 0).is_err());
        let mut cfg = LayeredConfig::default();
        cfg.classes.clear();
        assert!(layered_random(&cfg, 0).is_err());
    }

    #[test]
    fn fork_join_shape() {
        let wf = fork_join(3, 4, 10.0, 1e6, 1).unwrap();
        // 1 src + 3*(4+1) = 16 tasks.
        assert_eq!(wf.num_tasks(), 16);
        assert_eq!(wf.entry_tasks().len(), 1);
        assert_eq!(wf.exit_tasks().len(), 1);
        assert_eq!(analysis::depth(&wf), 7);
        assert!(fork_join(0, 2, 1.0, 1.0, 0).is_err());
    }

    #[test]
    fn trees() {
        let itree = in_tree(3, 2, 5.0, 1e6, 1).unwrap();
        assert_eq!(itree.num_tasks(), 8 + 4 + 2 + 1);
        assert_eq!(itree.exit_tasks().len(), 1);
        assert_eq!(itree.entry_tasks().len(), 8);
        let otree = out_tree(3, 2, 5.0, 1e6, 1).unwrap();
        assert_eq!(otree.num_tasks(), 1 + 2 + 4 + 8);
        assert_eq!(otree.entry_tasks().len(), 1);
        assert_eq!(otree.exit_tasks().len(), 8);
        assert!(in_tree(0, 2, 1.0, 1.0, 0).is_err());
        assert!(out_tree(3, 1, 1.0, 1.0, 0).is_err());
    }

    #[test]
    fn chain_is_sequential() {
        let wf = chain(10, 5.0, 1e6, 1).unwrap();
        assert_eq!(wf.num_tasks(), 10);
        assert_eq!(analysis::depth(&wf), 10);
        assert_eq!(analysis::width(&wf), 1);
        assert!(chain(0, 1.0, 1.0, 0).is_err());
    }

    #[test]
    fn gaussian_elimination_shape() {
        let wf = gaussian_elimination(5, 10.0, 1e6, 1).unwrap();
        // m(m+1)/2 - 1 = 14 tasks for m = 5.
        assert_eq!(wf.num_tasks(), 14);
        wf.validate().unwrap();
        // Strictly sequential pivots: depth grows ~2m.
        assert!(analysis::depth(&wf) >= 5);
        assert!(gaussian_elimination(1, 1.0, 1.0, 0).is_err());
    }

    #[test]
    fn ccr_scaling_hits_target() {
        let platform = presets::hpc_node();
        let cfg = LayeredConfig::default();
        let wf = layered_random(&cfg, 11).unwrap();
        for target in [0.1, 1.0, 5.0] {
            let scaled = scale_edges_to_ccr(&wf, &platform, target).unwrap();
            let got = analysis::ccr(&scaled, &platform).unwrap();
            assert!(
                (got - target).abs() / target < 0.05,
                "target {target}, got {got}"
            );
        }
        assert!(scale_edges_to_ccr(&wf, &platform, 0.0).is_err());
    }

    #[test]
    fn determinism() {
        let cfg = LayeredConfig::default();
        assert_eq!(
            layered_random(&cfg, 9).unwrap(),
            layered_random(&cfg, 9).unwrap()
        );
        assert_ne!(
            layered_random(&cfg, 9).unwrap(),
            layered_random(&cfg, 10).unwrap()
        );
    }
}
