//! Workflow generators.
//!
//! Two families:
//!
//! * [`scientific`] — structural generators for the five classic scientific
//!   discovery workflows characterized by the Pegasus project (Montage,
//!   CyberShake, Epigenomics, LIGO Inspiral, SIPHT). Task counts, stage
//!   ratios, kernel classes and data-product sizes follow the published
//!   characterizations; per-task magnitudes are sampled around the stage
//!   means so repeated generations with different seeds give an ensemble.
//! * [`synthetic`] — parameterized DAG families (layered random graphs,
//!   fork–join, trees, chains, Gaussian elimination) for controlled sweeps
//!   such as the CCR-sensitivity experiment.
//!
//! All generators are deterministic in their `seed` argument.

pub mod campaign;
pub mod scientific;
pub mod synthetic;

pub use campaign::{generate_campaign, CampaignConfig, Submission};
pub use scientific::{cybershake, epigenomics, ligo_inspiral, montage, sipht, WorkflowClass};
pub use synthetic::{
    chain, fork_join, gaussian_elimination, in_tree, layered_random, out_tree, scale_edges_to_ccr,
    LayeredConfig,
};

use helios_platform::{ComputeCost, KernelClass};
use helios_sim::SimRng;

use crate::dag::{Workflow, WorkflowBuilder};
use crate::error::WorkflowError;
use crate::task::Task;

/// Rewrites edge sizes so every out-edge of a task carries the same
/// payload: the mean of the task's sampled out-edge sizes. Consumers of
/// one task read the *same data product*, so their edges must agree —
/// this also makes per-device data caching well-defined. Total
/// communication volume is preserved exactly.
pub(crate) fn unify_product_sizes(wf: Workflow) -> Result<Workflow, WorkflowError> {
    let mut mean_out = vec![0.0f64; wf.num_tasks()];
    for (i, _) in wf.tasks().iter().enumerate() {
        let succs = wf.successors(crate::task::TaskId(i));
        if succs.is_empty() {
            continue;
        }
        let total: f64 = succs.iter().map(|&e| wf.edge(e).bytes).sum();
        mean_out[i] = total / succs.len() as f64;
    }
    let mut b = WorkflowBuilder::new(wf.name().to_owned());
    for t in wf.tasks() {
        b.add_task(t.clone());
    }
    for e in wf.edges() {
        b.add_dep(e.src, e.dst, mean_out[e.src.0])?;
    }
    b.build()
}

/// Specification of one pipeline stage used by the scientific generators:
/// the kernel class plus mean work and output-size magnitudes.
#[derive(Debug, Clone, Copy)]
pub(crate) struct StageSpec {
    pub name: &'static str,
    pub class: KernelClass,
    /// Mean work in GFLOP.
    pub gflop: f64,
    /// Mean memory traffic in bytes.
    pub bytes_touched: f64,
    /// Mean output data-product size in bytes (per out-edge).
    pub out_bytes: f64,
}

impl StageSpec {
    /// Samples a task of this stage. Work and sizes vary ±30 % (clamped
    /// normal) around the stage means.
    pub(crate) fn sample(&self, index: usize, rng: &mut SimRng) -> Task {
        let gflop = rng.normal_clamped(self.gflop, 0.3 * self.gflop, 0.05 * self.gflop);
        let bytes = rng.normal_clamped(
            self.bytes_touched,
            0.3 * self.bytes_touched,
            0.05 * self.bytes_touched,
        );
        Task::new(
            format!("{}_{index}", self.name),
            self.name,
            ComputeCost::new(gflop, bytes, self.class),
        )
    }

    /// Samples an output-edge payload size.
    pub(crate) fn sample_out_bytes(&self, rng: &mut SimRng) -> f64 {
        rng.normal_clamped(self.out_bytes, 0.3 * self.out_bytes, 0.05 * self.out_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_sampling_is_bounded_and_deterministic() {
        let spec = StageSpec {
            name: "stage",
            class: KernelClass::Fft,
            gflop: 100.0,
            bytes_touched: 1e9,
            out_bytes: 1e8,
        };
        let mut a = SimRng::seed_from(5);
        let mut b = SimRng::seed_from(5);
        let ta = spec.sample(0, &mut a);
        let tb = spec.sample(0, &mut b);
        assert_eq!(ta.cost().gflop(), tb.cost().gflop());
        assert!(ta.cost().gflop() >= 5.0);
        assert_eq!(ta.name(), "stage_0");
        assert_eq!(ta.stage(), "stage");
        let bytes = spec.sample_out_bytes(&mut a);
        assert!(bytes >= 5e6);
    }
}
