//! Discovery-campaign generation: ensembles of workflows with arrivals.
//!
//! A campaign is what a facility actually schedules: a mixture of
//! workflow families and sizes submitted over a time window. The
//! generator draws each submission's family, size and arrival offset
//! from a [`CampaignConfig`], deterministically in the seed.

use helios_sim::SimRng;

use crate::dag::Workflow;
use crate::error::WorkflowError;

use super::scientific::WorkflowClass;

/// One submission in a generated campaign.
#[derive(Debug, Clone)]
pub struct Submission {
    /// The submitted workflow.
    pub workflow: Workflow,
    /// Arrival offset from campaign start, seconds.
    pub arrival_secs: f64,
    /// Sampled priority in `[1, 10]` (one submission in ~5 is urgent).
    pub priority: f64,
}

/// Parameters for [`generate_campaign`].
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Number of submissions.
    pub submissions: usize,
    /// Families to draw from (uniformly).
    pub families: Vec<WorkflowClass>,
    /// Inclusive size range (approximate task count) per submission.
    pub size_range: (usize, usize),
    /// Mean inter-arrival gap, seconds (exponential).
    pub mean_interarrival_secs: f64,
}

impl Default for CampaignConfig {
    /// Eight submissions over all five families, 50–200 tasks, mean
    /// gap 0.2 s.
    fn default() -> Self {
        CampaignConfig {
            submissions: 8,
            families: WorkflowClass::ALL.to_vec(),
            size_range: (50, 200),
            mean_interarrival_secs: 0.2,
        }
    }
}

/// Generates a campaign: `submissions` workflows with Poisson arrivals.
///
/// # Errors
///
/// Returns [`WorkflowError::InvalidParameter`] for an empty family set,
/// an inverted size range, a size below the smallest family minimum, or
/// a non-positive inter-arrival mean.
pub fn generate_campaign(
    config: &CampaignConfig,
    seed: u64,
) -> Result<Vec<Submission>, WorkflowError> {
    if config.submissions == 0 {
        return Err(WorkflowError::InvalidParameter(
            "campaign needs >= 1 submission".into(),
        ));
    }
    if config.families.is_empty() {
        return Err(WorkflowError::InvalidParameter(
            "campaign needs >= 1 family".into(),
        ));
    }
    let (lo, hi) = config.size_range;
    if lo > hi || lo < 15 {
        return Err(WorkflowError::InvalidParameter(format!(
            "size range [{lo}, {hi}] must be ascending and >= 15 (family minimums)"
        )));
    }
    if !(config.mean_interarrival_secs.is_finite() && config.mean_interarrival_secs > 0.0) {
        return Err(WorkflowError::InvalidParameter(
            "mean_interarrival_secs must be positive".into(),
        ));
    }
    let mut rng = SimRng::seed_from(seed ^ 0xCA4A16);
    let mut out = Vec::with_capacity(config.submissions);
    let mut clock = 0.0f64;
    for i in 0..config.submissions {
        let family = *rng.choose(&config.families).expect("families is non-empty");
        let size = rng.uniform_usize(lo, hi);
        let workflow = family.generate(size, seed.wrapping_add(i as u64))?;
        let priority = if rng.chance(0.2) { 10.0 } else { 1.0 };
        out.push(Submission {
            workflow,
            arrival_secs: clock,
            priority,
        });
        clock += rng.exponential(config.mean_interarrival_secs);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_campaign_generates() {
        let c = generate_campaign(&CampaignConfig::default(), 1).unwrap();
        assert_eq!(c.len(), 8);
        // Arrivals are non-decreasing, first at 0.
        assert_eq!(c[0].arrival_secs, 0.0);
        for pair in c.windows(2) {
            assert!(pair[1].arrival_secs >= pair[0].arrival_secs);
        }
        for s in &c {
            assert!(s.workflow.validate().is_ok());
            assert!(s.workflow.num_tasks() >= 30);
            assert!(s.priority == 1.0 || s.priority == 10.0);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate_campaign(&CampaignConfig::default(), 9).unwrap();
        let b = generate_campaign(&CampaignConfig::default(), 9).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.workflow, y.workflow);
            assert_eq!(x.arrival_secs, y.arrival_secs);
        }
        let c = generate_campaign(&CampaignConfig::default(), 10).unwrap();
        assert!(a.iter().zip(&c).any(|(x, y)| x.workflow != y.workflow));
    }

    #[test]
    fn validation() {
        let cfg = CampaignConfig {
            submissions: 0,
            ..Default::default()
        };
        assert!(generate_campaign(&cfg, 0).is_err());
        let mut cfg = CampaignConfig::default();
        cfg.families.clear();
        assert!(generate_campaign(&cfg, 0).is_err());
        let cfg = CampaignConfig {
            size_range: (200, 50),
            ..Default::default()
        };
        assert!(generate_campaign(&cfg, 0).is_err());
        let cfg = CampaignConfig {
            size_range: (5, 50),
            ..Default::default()
        };
        assert!(generate_campaign(&cfg, 0).is_err());
        let cfg = CampaignConfig {
            mean_interarrival_secs: 0.0,
            ..Default::default()
        };
        assert!(generate_campaign(&cfg, 0).is_err());
    }
}
