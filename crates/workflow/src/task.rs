//! Workflow tasks.

use std::fmt;

use serde::{Deserialize, Serialize};

use helios_platform::ComputeCost;

/// Index of a task within its [`Workflow`](crate::Workflow).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct TaskId(pub usize);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// One node of a scientific workflow: a named unit of computation.
///
/// The task's `stage` groups tasks that play the same role (e.g. every
/// `mProject` instance in a Montage run); reports aggregate by stage.
///
/// # Examples
///
/// ```
/// use helios_platform::{ComputeCost, KernelClass};
/// use helios_workflow::Task;
///
/// let t = Task::new("mProject_0", "mProject",
///                   ComputeCost::new(12.0, 3e8, KernelClass::Stencil));
/// assert_eq!(t.stage(), "mProject");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    name: String,
    stage: String,
    cost: ComputeCost,
    #[serde(default)]
    required_trust: u8,
}

impl Task {
    /// Creates a task named `name` belonging to pipeline stage `stage`,
    /// performing `cost` work.
    #[must_use]
    pub fn new(name: impl Into<String>, stage: impl Into<String>, cost: ComputeCost) -> Task {
        Task {
            name: name.into(),
            stage: stage.into(),
            cost,
            required_trust: 0,
        }
    }

    /// Returns a copy requiring devices of at least the given trust
    /// level (clamped to [`MAX_TRUST`](helios_platform::Device::MAX_TRUST)
    /// by placement). Tasks handling raw instrument data or credentials
    /// must not run on untrusted third-party components.
    #[must_use]
    pub fn with_required_trust(mut self, level: u8) -> Task {
        self.required_trust = level;
        self
    }

    /// Minimum device trust level this task accepts (0 = runs anywhere).
    #[must_use]
    pub fn required_trust(&self) -> u8 {
        self.required_trust
    }

    /// The task's unique name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The pipeline stage this task belongs to.
    #[must_use]
    pub fn stage(&self) -> &str {
        &self.stage
    }

    /// The task's compute cost.
    #[must_use]
    pub fn cost(&self) -> &ComputeCost {
        &self.cost
    }

    /// Returns a copy with the compute cost replaced (used by workload
    /// perturbation in online-scheduling experiments).
    #[must_use]
    pub fn with_cost(&self, cost: ComputeCost) -> Task {
        Task {
            name: self.name.clone(),
            stage: self.stage.clone(),
            cost,
            required_trust: self.required_trust,
        }
    }
}

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {:.2} Gflop ({})",
            self.name,
            self.stage,
            self.cost.gflop(),
            self.cost.kernel_class()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_platform::KernelClass;

    #[test]
    fn accessors() {
        let c = ComputeCost::new(1.0, 2.0, KernelClass::Fft);
        let t = Task::new("a", "s", c);
        assert_eq!(t.name(), "a");
        assert_eq!(t.stage(), "s");
        assert_eq!(t.cost().gflop(), 1.0);
    }

    #[test]
    fn with_cost_replaces_only_cost() {
        let t = Task::new("a", "s", ComputeCost::new(1.0, 0.0, KernelClass::Fft));
        let t2 = t.with_cost(ComputeCost::new(9.0, 0.0, KernelClass::Fft));
        assert_eq!(t2.name(), "a");
        assert_eq!(t2.cost().gflop(), 9.0);
        assert_eq!(t.cost().gflop(), 1.0);
    }

    #[test]
    fn display_mentions_class() {
        let t = Task::new("a", "s", ComputeCost::new(1.0, 0.0, KernelClass::NBody));
        assert!(t.to_string().contains("nbody"));
        assert_eq!(TaskId(4).to_string(), "t4");
    }
}
