//! Structural and platform-aware DAG analysis.
//!
//! These are the quantities the schedulers and the evaluation tables are
//! built from: level structure (depth/width/parallelism profile), the
//! platform-averaged critical path, HEFT-style top and bottom levels, and
//! the communication-to-computation ratio (CCR).
//!
//! Platform-aware metrics average costs over all devices (the convention
//! of the list-scheduling literature), so they characterize the workflow
//! on a platform without committing to any placement.

use helios_platform::{Platform, PlatformError};

use crate::dag::Workflow;
use crate::task::TaskId;

/// Number of levels in the DAG: the length (in tasks) of the longest
/// chain. A single task has depth 1.
#[must_use]
pub fn depth(wf: &Workflow) -> usize {
    let levels = levels(wf);
    levels.iter().copied().max().map_or(0, |m| m + 1)
}

/// The level (longest-path distance from an entry, in hops) of each task.
#[must_use]
pub fn levels(wf: &Workflow) -> Vec<usize> {
    let mut level = vec![0usize; wf.num_tasks()];
    for &t in wf.topo_order() {
        for s in wf.successor_tasks(t) {
            level[s.0] = level[s.0].max(level[t.0] + 1);
        }
    }
    level
}

/// Tasks per level — the workflow's parallelism profile.
#[must_use]
pub fn parallelism_profile(wf: &Workflow) -> Vec<usize> {
    let lv = levels(wf);
    let depth = lv.iter().copied().max().map_or(0, |m| m + 1);
    let mut profile = vec![0usize; depth];
    for &l in &lv {
        profile[l] += 1;
    }
    profile
}

/// Maximum number of tasks on one level — an upper bound on exploitable
/// parallelism.
#[must_use]
pub fn width(wf: &Workflow) -> usize {
    parallelism_profile(wf).into_iter().max().unwrap_or(0)
}

/// Mean execution time of every task across the platform's devices,
/// indexed by task id (seconds).
///
/// # Errors
///
/// Propagates platform model errors.
pub fn mean_exec_times(wf: &Workflow, platform: &Platform) -> Result<Vec<f64>, PlatformError> {
    wf.tasks()
        .iter()
        .map(|t| Ok(platform.mean_execution_time(t.cost())?.as_secs()))
        .collect()
}

/// Mean transfer time of every edge across distinct device pairs, indexed
/// by edge id (seconds).
///
/// # Errors
///
/// Propagates platform routing errors.
pub fn mean_comm_times(wf: &Workflow, platform: &Platform) -> Result<Vec<f64>, PlatformError> {
    wf.edges()
        .iter()
        .map(|e| Ok(platform.mean_transfer_time(e.bytes)?.as_secs()))
        .collect()
}

/// HEFT *upward rank* (bottom level) of every task: mean execution time
/// plus the maximum over successors of mean edge cost + successor rank.
///
/// # Errors
///
/// Propagates platform model errors. Returns
/// [`PlatformError::NonFiniteModel`] if any rank comes out NaN or
/// infinite — rank-based schedulers order tasks with `total_cmp`, where
/// a single NaN would silently scramble priorities instead of failing.
pub fn bottom_levels(wf: &Workflow, platform: &Platform) -> Result<Vec<f64>, PlatformError> {
    let exec = mean_exec_times(wf, platform)?;
    let comm = mean_comm_times(wf, platform)?;
    let mut rank = vec![0.0f64; wf.num_tasks()];
    for &t in wf.topo_order().iter().rev() {
        let mut best = 0.0f64;
        for &e in wf.successors(t) {
            let edge = wf.edge(e);
            best = best.max(comm[e.0] + rank[edge.dst.0]);
        }
        rank[t.0] = exec[t.0] + best;
        if !rank[t.0].is_finite() {
            return Err(PlatformError::NonFiniteModel {
                what: "upward rank",
                index: t.0,
                value: rank[t.0],
            });
        }
    }
    Ok(rank)
}

/// *Downward rank* (top level) of every task: the longest mean-cost path
/// from any entry task to (but excluding) the task itself.
///
/// # Errors
///
/// Propagates platform model errors.
pub fn top_levels(wf: &Workflow, platform: &Platform) -> Result<Vec<f64>, PlatformError> {
    let exec = mean_exec_times(wf, platform)?;
    let comm = mean_comm_times(wf, platform)?;
    let mut rank = vec![0.0f64; wf.num_tasks()];
    for &t in wf.topo_order() {
        for &e in wf.successors(t) {
            let edge = wf.edge(e);
            let candidate = rank[t.0] + exec[t.0] + comm[e.0];
            if candidate > rank[edge.dst.0] {
                rank[edge.dst.0] = candidate;
            }
        }
    }
    Ok(rank)
}

/// The platform-averaged critical path: the task sequence with the largest
/// total mean cost, and that cost in seconds.
///
/// # Errors
///
/// Propagates platform model errors.
pub fn critical_path(
    wf: &Workflow,
    platform: &Platform,
) -> Result<(Vec<TaskId>, f64), PlatformError> {
    let ranks = bottom_levels(wf, platform)?;
    let comm = mean_comm_times(wf, platform)?;
    let start = wf
        .entry_tasks()
        .into_iter()
        .max_by(|a, b| ranks[a.0].total_cmp(&ranks[b.0]));
    let Some(mut current) = start else {
        return Ok((Vec::new(), 0.0));
    };
    let length = ranks[current.0];
    let mut path = vec![current];
    loop {
        // Follow the successor whose (comm + rank) realizes this rank.
        let next = wf
            .successors(current)
            .iter()
            .map(|&e| {
                let edge = wf.edge(e);
                (edge.dst, comm[e.0] + ranks[edge.dst.0])
            })
            .max_by(|a, b| a.1.total_cmp(&b.1));
        match next {
            Some((dst, _)) => {
                path.push(dst);
                current = dst;
            }
            None => break,
        }
    }
    Ok((path, length))
}

/// Communication-to-computation ratio: total mean edge cost over total
/// mean task cost. High CCR means data movement dominates.
///
/// # Errors
///
/// Propagates platform model errors.
pub fn ccr(wf: &Workflow, platform: &Platform) -> Result<f64, PlatformError> {
    let exec: f64 = mean_exec_times(wf, platform)?.iter().sum();
    let comm: f64 = mean_comm_times(wf, platform)?.iter().sum();
    if exec == 0.0 {
        Ok(0.0)
    } else {
        Ok(comm / exec)
    }
}

/// Summary statistics for one workflow on one platform (evaluation
/// Table T2 rows).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkflowStats {
    /// Workflow name.
    pub name: String,
    /// Task count.
    pub tasks: usize,
    /// Edge count.
    pub edges: usize,
    /// Longest chain length, in tasks.
    pub depth: usize,
    /// Maximum level occupancy.
    pub width: usize,
    /// Total work, GFLOP.
    pub total_gflop: f64,
    /// Total edge payload, bytes.
    pub total_bytes: f64,
    /// Communication-to-computation ratio on the platform.
    pub ccr: f64,
    /// Mean-cost critical-path length, seconds.
    pub cp_seconds: f64,
}

impl WorkflowStats {
    /// Computes the summary for `wf` on `platform`.
    ///
    /// # Errors
    ///
    /// Propagates platform model errors.
    pub fn compute(wf: &Workflow, platform: &Platform) -> Result<WorkflowStats, PlatformError> {
        let (_, cp_seconds) = critical_path(wf, platform)?;
        Ok(WorkflowStats {
            name: wf.name().to_owned(),
            tasks: wf.num_tasks(),
            edges: wf.num_edges(),
            depth: depth(wf),
            width: width(wf),
            total_gflop: wf.total_gflop(),
            total_bytes: wf.total_edge_bytes(),
            ccr: ccr(wf, platform)?,
            cp_seconds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::WorkflowBuilder;
    use crate::task::Task;
    use helios_platform::{presets, ComputeCost, KernelClass};

    fn task(name: &str, gflop: f64) -> Task {
        Task::new(
            name,
            "s",
            ComputeCost::new(gflop, 0.0, KernelClass::Reduction),
        )
    }

    /// a -> b -> d, a -> c -> d with b heavier than c.
    fn diamond() -> Workflow {
        let mut b = WorkflowBuilder::new("diamond");
        let a = b.add_task(task("a", 10.0));
        let t_b = b.add_task(task("b", 100.0));
        let t_c = b.add_task(task("c", 1.0));
        let d = b.add_task(task("d", 10.0));
        b.add_dep(a, t_b, 1e6).unwrap();
        b.add_dep(a, t_c, 1e6).unwrap();
        b.add_dep(t_b, d, 1e6).unwrap();
        b.add_dep(t_c, d, 1e6).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn levels_and_width() {
        let wf = diamond();
        assert_eq!(levels(&wf), vec![0, 1, 1, 2]);
        assert_eq!(depth(&wf), 3);
        assert_eq!(width(&wf), 2);
        assert_eq!(parallelism_profile(&wf), vec![1, 2, 1]);
    }

    #[test]
    fn critical_path_follows_heavy_branch() {
        let wf = diamond();
        let p = presets::workstation();
        let (path, len) = critical_path(&wf, &p).unwrap();
        let names: Vec<_> = path.iter().map(|&t| wf.task(t).unwrap().name()).collect();
        assert_eq!(names, vec!["a", "b", "d"]);
        assert!(len > 0.0);
    }

    #[test]
    fn ranks_are_consistent() {
        let wf = diamond();
        let p = presets::workstation();
        let bl = bottom_levels(&wf, &p).unwrap();
        let tl = top_levels(&wf, &p).unwrap();
        let exec = mean_exec_times(&wf, &p).unwrap();
        // Entry bottom level equals CP length; exit top level + own exec
        // equals CP length (single entry/exit diamond).
        let (_, cp) = critical_path(&wf, &p).unwrap();
        assert!((bl[0] - cp).abs() < 1e-9);
        assert!((tl[3] + exec[3] - cp).abs() < 1e-9);
        assert_eq!(tl[0], 0.0, "entry has zero top level");
        // Bottom level decreases along the path.
        assert!(bl[0] > bl[1] && bl[1] > bl[3]);
    }

    #[test]
    fn overflowing_ranks_rejected_with_typed_error() {
        let p = presets::workstation();
        // Probe the platform-mean execution time of one enormous (but
        // individually valid) task, then chain enough of them that the
        // accumulated upward rank overflows f64 to infinity.
        let probe = {
            let mut b = WorkflowBuilder::new("probe");
            b.add_task(task("t", 1e306));
            b.build().unwrap()
        };
        let per_task = bottom_levels(&probe, &p).unwrap()[0];
        assert!(per_task.is_finite() && per_task > 0.0);
        let n = ((f64::MAX / per_task) as usize + 8).min(500_000);
        let mut b = WorkflowBuilder::new("overflow");
        let mut prev = b.add_task(task("t0", 1e306));
        for i in 1..n {
            let cur = b.add_task(task(&format!("t{i}"), 1e306));
            b.add_dep(prev, cur, 0.0).unwrap();
            prev = cur;
        }
        let wf = b.build().unwrap();
        match bottom_levels(&wf, &p) {
            Err(PlatformError::NonFiniteModel { what, value, .. }) => {
                assert_eq!(what, "upward rank");
                assert!(value.is_infinite());
            }
            other => panic!(
                "expected NonFiniteModel, got {:?}",
                other.map(|ranks| ranks.last().copied())
            ),
        }
    }

    #[test]
    fn ccr_scales_with_edge_bytes() {
        let p = presets::workstation();
        let small = diamond();
        let mut b = WorkflowBuilder::new("chatty");
        let a = b.add_task(task("a", 10.0));
        let c = b.add_task(task("b", 10.0));
        b.add_dep(a, c, 1e10).unwrap();
        let chatty = b.build().unwrap();
        let ccr_small = ccr(&small, &p).unwrap();
        let ccr_big = ccr(&chatty, &p).unwrap();
        assert!(ccr_big > ccr_small);
        assert!(ccr_small > 0.0);
    }

    #[test]
    fn stats_summary() {
        let wf = diamond();
        let p = presets::workstation();
        let s = WorkflowStats::compute(&wf, &p).unwrap();
        assert_eq!(s.tasks, 4);
        assert_eq!(s.edges, 4);
        assert_eq!(s.depth, 3);
        assert_eq!(s.width, 2);
        assert_eq!(s.total_gflop, 121.0);
        assert!(s.cp_seconds > 0.0);
        assert!(s.ccr >= 0.0);
    }

    #[test]
    fn single_task_degenerate() {
        let mut b = WorkflowBuilder::new("one");
        b.add_task(task("only", 5.0));
        let wf = b.build().unwrap();
        let p = presets::workstation();
        assert_eq!(depth(&wf), 1);
        assert_eq!(width(&wf), 1);
        assert_eq!(ccr(&wf, &p).unwrap(), 0.0);
        let (path, len) = critical_path(&wf, &p).unwrap();
        assert_eq!(path.len(), 1);
        assert!(len > 0.0);
    }

    #[test]
    fn zero_work_workflow_has_zero_ccr_denominator_handled() {
        let mut b = WorkflowBuilder::new("z");
        let a = b.add_task(Task::new(
            "a",
            "s",
            ComputeCost::new(0.0, 0.0, KernelClass::DataMovement),
        ));
        let c = b.add_task(Task::new(
            "b",
            "s",
            ComputeCost::new(0.0, 0.0, KernelClass::DataMovement),
        ));
        b.add_dep(a, c, 1e6).unwrap();
        let wf = b.build().unwrap();
        let p = presets::workstation();
        // exec is launch-overhead only, never exactly zero, so ccr is finite.
        let r = ccr(&wf, &p).unwrap();
        assert!(r.is_finite());
    }
}
