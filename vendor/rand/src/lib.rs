//! Offline vendored subset of the `rand` 0.8 API.
//!
//! This workspace builds in environments with no crates.io access, so the
//! external `rand` crate cannot be downloaded. This crate reimplements the
//! small slice of its API the workspace actually uses — [`RngCore`],
//! [`SeedableRng`], the [`Rng`] extension trait and [`Error`] — with the
//! same numeric conventions as rand 0.8 (53-bit uniform floats,
//! SplitMix64-expanded `seed_from_u64` seeds) so seeded streams stay
//! portable and statistically sound.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type matching `rand::Error`'s role. The vendored generators are
/// infallible, so this is only ever constructed by downstream code.
#[derive(Debug, Clone)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "random number generator failure")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    /// Fallible [`RngCore::fill_bytes`]; the vendored generators never
    /// fail.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type (e.g. `[u8; 32]`).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a 64-bit seed, expanding it with the
    /// PCG32 stream exactly like `rand_core` 0.6 does, so seeded streams
    /// agree with historical runs made against the real crates.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6_364_136_223_846_793_005;
        const INC: u64 = 11_634_580_027_462_260_723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that [`Rng::gen`] can produce from raw generator output.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // rand 0.8's `Standard` for f64: 53 high bits, multiply-based.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        // rand 0.8 uses a sign test on the most significant bit.
        (rng.next_u32() as i32) < 0
    }
}

/// Integer types that support unbiased uniform range sampling.
///
/// The algorithm is rand 0.8's `UniformInt` widening-multiply (Lemire)
/// sampler, reproduced exactly — including its per-width choice of raw
/// word (`next_u32` for ≤32-bit types, `next_u64` otherwise) and zone
/// computation — so seeded streams agree with runs made against the real
/// crate.
pub trait UniformInt: Copy + PartialOrd {
    /// Draws uniformly from `[low, high]` (inclusive). `low <= high` must
    /// hold.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;

    /// Draws uniformly from `[low, high)`. `low < high` must hold.
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($ty:ty, $unsigned:ty, $u_large:ty, $next:ident, $wide:ty) => {
        impl UniformInt for $ty {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: $ty, high: $ty) -> $ty {
                assert!(low <= high, "gen_range: empty range");
                let range = (high as $unsigned)
                    .wrapping_sub(low as $unsigned)
                    .wrapping_add(1) as $u_large;
                if range == 0 {
                    // The whole type range was requested.
                    return rng.$next() as $ty;
                }
                lemire_loop!(rng, $next, $ty, $unsigned, $u_large, $wide, low, range)
            }

            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, low: $ty, high: $ty) -> $ty {
                assert!(low < high, "gen_range: empty range");
                let range = (high as $unsigned).wrapping_sub(low as $unsigned) as $u_large;
                lemire_loop!(rng, $next, $ty, $unsigned, $u_large, $wide, low, range)
            }
        }
    };
}

macro_rules! lemire_loop {
    ($rng:expr, $next:ident, $ty:ty, $unsigned:ty, $u_large:ty, $wide:ty,
     $low:expr, $range:expr) => {{
        let range = $range;
        let zone = if (<$unsigned>::MAX as u64) <= u64::from(u16::MAX) {
            // Small types: exact modulus-based zone (rand's fast path).
            let ints_to_reject = (<$u_large>::MAX - range + 1) % range;
            <$u_large>::MAX - ints_to_reject
        } else {
            // Conservative approximation; `- 1` keeps the comparison
            // unbiased.
            (range << range.leading_zeros()).wrapping_sub(1)
        };
        loop {
            let v = $rng.$next() as $u_large;
            let wide = (v as $wide) * (range as $wide);
            let hi = (wide >> <$u_large>::BITS) as $u_large;
            let lo = wide as $u_large;
            if lo <= zone {
                break ($low as $unsigned).wrapping_add(hi as $unsigned) as $ty;
            }
        }
    }};
}

impl_uniform_int!(u8, u8, u32, next_u32, u64);
impl_uniform_int!(u16, u16, u32, next_u32, u64);
impl_uniform_int!(u32, u32, u32, next_u32, u64);
impl_uniform_int!(u64, u64, u64, next_u64, u128);
impl_uniform_int!(usize, usize, usize, next_u64, u128);
impl_uniform_int!(i32, u32, u32, next_u32, u64);
impl_uniform_int!(i64, u64, u64, next_u64, u128);
impl_uniform_int!(isize, usize, usize, next_u64, u128);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_inclusive(rng, low, high)
    }
}

/// Maps 52 random bits onto `[1, 2)` exactly as rand's
/// `into_float_with_exponent(0)` does.
fn unit_1_2(bits52: u64) -> f64 {
    f64::from_bits(bits52 | (1023u64 << 52))
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        // rand 0.8 `UniformFloat::sample_single`: 52-bit value in [0, 1)
        // scaled into the range, redrawing on the (rare) rounding-up to
        // `high`.
        assert!(self.start < self.end, "gen_range: empty range");
        let scale = self.end - self.start;
        loop {
            let value0_1 = unit_1_2(rng.next_u64() >> 12) - 1.0;
            let res = value0_1 * scale + self.start;
            if res < self.end {
                return res;
            }
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        // rand 0.8 `UniformFloat::new_inclusive` + `sample`: scale is
        // nudged down by ULPs until the maximum draw cannot exceed
        // `high`.
        let (low, high) = self.into_inner();
        assert!(low <= high, "gen_range: empty range");
        let max_rand = unit_1_2(u64::MAX >> 12) - 1.0;
        let mut scale = (high - low) / max_rand;
        assert!(scale.is_finite(), "gen_range: non-finite scale");
        while scale * max_rand + low > high {
            scale = f64::from_bits(scale.to_bits() - 1);
        }
        let value0_1 = unit_1_2(rng.next_u64() >> 12) - 1.0;
        value0_1 * scale + low
    }
}

/// Convenience extension over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value via the standard distribution for `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Draws `true` with probability `p`, via rand 0.8's Bernoulli
    /// fixed-point comparison (so streams match the real crate).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        let p_int = if p < 1.0 {
            (p * SCALE) as u64
        } else {
            u64::MAX
        };
        if p_int == u64::MAX {
            // "Always true" draws no randomness, matching Bernoulli.
            return true;
        }
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Namespace mirror of `rand::rngs` (documentation references only).
pub mod rngs {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            // Weyl sequence through a mix: good enough to exercise APIs.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn floats_are_in_unit_interval() {
        let mut rng = Counter(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = Counter(2);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..=7);
            assert!((3..=7).contains(&x));
            let y = rng.gen_range(10u64..20);
            assert!((10..20).contains(&y));
            let z = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&z));
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = Counter(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        assert!(rng.try_fill_bytes(&mut buf).is_ok());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(4);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
