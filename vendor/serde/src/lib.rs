//! Offline vendored `serde` facade.
//!
//! The workspace builds in environments with no crates.io access, so the
//! real `serde` cannot be downloaded. This crate keeps the workspace's
//! source-level API — `Serialize` / `Deserialize` derives, the
//! `Serializer` / `Deserializer` traits with their associated types, and
//! the `#[serde(...)]` attributes the codebase uses (`transparent`,
//! `default`, `default = "path"`, `with = "module"`) — but routes all
//! (de)serialization through an explicit [`Value`] tree instead of
//! serde's visitor machinery. `serde_json` (also vendored) renders that
//! tree to JSON.
//!
//! The simplification is deliberate: every format in this workspace is
//! JSON, so a concrete value tree loses nothing while keeping the shim
//! small and auditable.

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

pub use value::{DeError, Value, ValueDeserializer, ValueSerializer};

/// A type that can render itself as a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;

    /// Serde-shaped entry point: feeds the value tree to `serializer`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.to_value())
    }
}

/// A sink for [`Value`] trees (serde's `Serializer` shape).
pub trait Serializer: Sized {
    /// Successful output of the serializer.
    type Ok;
    /// Serializer error type.
    type Error;

    /// Consumes a complete value tree.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;
}

/// A type that can reconstruct itself from a [`Value`] tree.
pub trait Deserialize<'de>: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(value: &Value) -> Result<Self, DeError>;

    /// Serde-shaped entry point: pulls a value tree out of
    /// `deserializer` and rebuilds `Self` from it.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.take_value()?;
        Self::from_value(&value).map_err(de::Error::custom)
    }
}

/// A source of [`Value`] trees (serde's `Deserializer` shape).
pub trait Deserializer<'de>: Sized {
    /// Deserializer error type.
    type Error: de::Error;

    /// Produces the complete value tree.
    fn take_value(self) -> Result<Value, Self::Error>;
}

/// Serialization-side namespace, mirroring `serde::ser`.
pub mod ser {
    pub use crate::Serializer;

    /// Error construction for serializers.
    pub trait Error: Sized {
        /// Builds an error from a message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }
}

/// Deserialization-side namespace, mirroring `serde::de`.
pub mod de {
    pub use crate::Deserializer;

    /// Error construction for deserializers.
    pub trait Error: Sized {
        /// Builds an error from a message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }
}

impl ser::Error for DeError {
    fn custom<T: fmt::Display>(msg: T) -> DeError {
        DeError::new(msg.to_string())
    }
}

impl de::Error for DeError {
    fn custom<T: fmt::Display>(msg: T) -> DeError {
        DeError::new(msg.to_string())
    }
}

// ---------------------------------------------------------------------------
// Serialize impls for primitives and standard containers.
// ---------------------------------------------------------------------------

macro_rules! impl_serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(f64::from(*self))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<$t, DeError> {
                match value {
                    Value::Number(n) => Ok(*n as $t),
                    other => Err(DeError::type_mismatch("number", other)),
                }
            }
        }
    )*};
}

impl_serialize_float!(f64, f32);

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<$t, DeError> {
                match value {
                    Value::Number(n) if n.fract() == 0.0 => Ok(*n as $t),
                    other => Err(DeError::type_mismatch("integer", other)),
                }
            }
        }
    )*};
}

impl_serialize_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &Value) -> Result<bool, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::type_mismatch("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(value: &Value) -> Result<String, DeError> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::type_mismatch("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(value: &Value) -> Result<Vec<T>, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::type_mismatch("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(value: &Value) -> Result<Option<T>, DeError> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                const LEN: usize = [$($idx),+].len();
                match value {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::type_mismatch("tuple array", other)),
                }
            }
        }
    )*};
}

impl_serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        // JSON object keys are strings; render the key through its value
        // form and stringify scalars.
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_value().as_object_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<BTreeMap<K, V>, DeError> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| {
                    let key = K::from_value(&Value::String(k.clone())).or_else(|_| {
                        k.parse::<f64>()
                            .map_err(|_| DeError::new(format!("bad map key {k:?}")))
                            .and_then(|n| K::from_value(&Value::Number(n)))
                    })?;
                    Ok((key, V::from_value(v)?))
                })
                .collect(),
            other => Err(DeError::type_mismatch("object", other)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_value(value: &Value) -> Result<Value, DeError> {
        Ok(value.clone())
    }
}

// ---------------------------------------------------------------------------
// Support functions used by the generated derive code (not public API).
// ---------------------------------------------------------------------------

/// Looks up a field of an object value.
#[doc(hidden)]
#[must_use]
pub fn __get<'v>(value: &'v Value, name: &str) -> Option<&'v Value> {
    match value {
        Value::Object(entries) => entries.iter().find(|(k, _)| k == name).map(|(_, v)| v),
        _ => None,
    }
}

/// Deserializes a mandatory struct field.
#[doc(hidden)]
pub fn __field<T: for<'de> Deserialize<'de>>(
    value: &Value,
    ty: &str,
    name: &str,
) -> Result<T, DeError> {
    match __get(value, name) {
        Some(v) => T::from_value(v).map_err(|e| e.in_field(ty, name)),
        None => Err(DeError::new(format!("{ty}: missing field `{name}`"))),
    }
}

/// Deserializes a struct field that falls back to a default when absent.
#[doc(hidden)]
pub fn __field_or_else<T: for<'de> Deserialize<'de>>(
    value: &Value,
    ty: &str,
    name: &str,
    default: impl FnOnce() -> T,
) -> Result<T, DeError> {
    match __get(value, name) {
        Some(v) => T::from_value(v).map_err(|e| e.in_field(ty, name)),
        None => Ok(default()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(usize::from_value(&7usize.to_value()).unwrap(), 7);
        assert!(usize::from_value(&Value::Number(1.5)).is_err());
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_value()).unwrap(),
            "hi".to_string()
        );
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<u32>::from_value(&Value::Number(3.0)).unwrap(),
            Some(3)
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let t = (1usize, 2.5f64, "x".to_string());
        assert_eq!(
            <(usize, f64, String)>::from_value(&t.to_value()).unwrap(),
            t
        );
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u32);
        m.insert("b".to_string(), 2u32);
        assert_eq!(
            BTreeMap::<String, u32>::from_value(&m.to_value()).unwrap(),
            m
        );
    }

    #[test]
    fn field_helpers() {
        let obj = Value::Object(vec![("x".into(), Value::Number(4.0))]);
        assert_eq!(__field::<u32>(&obj, "T", "x").unwrap(), 4);
        assert!(__field::<u32>(&obj, "T", "y").is_err());
        assert_eq!(__field_or_else::<u32>(&obj, "T", "y", || 9).unwrap(), 9);
    }
}
