//! The concrete value tree all vendored (de)serialization flows through,
//! plus the serializer/deserializer adapters used by generated derive
//! code and `#[serde(with = "...")]` modules.

use std::fmt;
use std::ops::Index;

use crate::{Deserializer, Serializer};

/// A JSON-shaped value tree.
///
/// Objects preserve insertion order (struct declaration order for derived
/// types), which keeps rendered JSON deterministic and readable.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number. Always held as `f64`; integers are exact to 2^53.
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with preserved key order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The value as a bool, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 && *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer number.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value's object entries, if it is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member by key, or `None` for non-objects/missing keys.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        crate::__get(self, key)
    }

    /// A short type name for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Renders the value as a JSON object key.
    #[must_use]
    pub(crate) fn as_object_key(&self) -> String {
        match self {
            Value::String(s) => s.clone(),
            Value::Number(n) if n.fract() == 0.0 => format!("{}", *n as i64),
            other => format!("{other:?}"),
        }
    }
}

static NULL: Value = Value::Null;

impl Index<usize> for Value {
    type Output = Value;

    fn index(&self, index: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(index).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<i32> for Value {
    fn eq(&self, other: &i32) -> bool {
        self.as_f64() == Some(f64::from(*other))
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

/// Deserialization error: a message plus breadcrumb context.
#[derive(Debug, Clone)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error from a message.
    #[must_use]
    pub fn new(message: impl Into<String>) -> DeError {
        DeError {
            message: message.into(),
        }
    }

    /// A standard "expected X, found Y" error.
    #[must_use]
    pub fn type_mismatch(expected: &str, found: &Value) -> DeError {
        DeError::new(format!("expected {expected}, found {}", found.kind()))
    }

    /// Wraps the error with field context.
    #[must_use]
    pub fn in_field(self, ty: &str, field: &str) -> DeError {
        DeError::new(format!("{ty}.{field}: {}", self.message))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for DeError {}

/// A [`Serializer`] that yields the [`Value`] tree itself. This is what
/// `#[serde(with = "...")]` modules receive from derived code.
#[derive(Debug, Clone, Copy, Default)]
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = DeError;

    fn serialize_value(self, value: Value) -> Result<Value, DeError> {
        Ok(value)
    }
}

/// A [`Deserializer`] over a borrowed [`Value`] tree. This is what
/// `#[serde(with = "...")]` modules receive from derived code.
#[derive(Debug, Clone, Copy)]
pub struct ValueDeserializer<'a>(pub &'a Value);

impl<'a, 'de> Deserializer<'de> for ValueDeserializer<'a> {
    type Error = DeError;

    fn take_value(self) -> Result<Value, DeError> {
        Ok(self.0.clone())
    }
}
