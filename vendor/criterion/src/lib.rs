//! Offline vendored `criterion` subset: a minimal wall-clock benchmark
//! harness with the same source-level API the workspace's benches use.
//!
//! No statistical analysis, HTML reports or outlier rejection — each
//! benchmark runs a fixed number of samples of an adaptively-sized
//! iteration batch and prints the mean per-iteration time. Good enough
//! to compare orders of magnitude and spot regressions by eye, which is
//! all an offline container can support.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&name.into(), self.sample_size, |b| f(b));
        self
    }
}

/// A named set of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_benchmark(&label, self.sample_size, |b| f(b));
        self
    }

    /// Runs a benchmark parameterized by an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (cosmetic in this harness).
    pub fn finish(self) {}
}

/// A benchmark identifier combining a function name and a parameter.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id like `name/param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", name.into(), param),
        }
    }
}

/// Timing callback handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` executions of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    // Warm-up + calibration: one iteration to size the batch so a sample
    // lasts roughly a millisecond (cheap kernels) without making slow
    // kernels crawl.
    let mut calib = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut calib);
    let per_iter = calib.elapsed.max(Duration::from_nanos(1));
    let iters = (Duration::from_millis(1).as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

    let mut total = Duration::ZERO;
    let mut best = Duration::MAX;
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        best = best.min(b.elapsed);
    }
    let mean = total / (samples as u32) / (iters as u32);
    let best = best / (iters as u32);
    println!(
        "{label:<48} mean {mean:>12?}   best {best:>12?}   ({samples} samples x {iters} iters)"
    );
}

/// Collects benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_labels() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("group");
        group.sample_size(2);
        group.bench_function("inner", |b| b.iter(|| black_box(3) * 2));
        group.bench_with_input(BenchmarkId::new("param", 42), &42u64, |b, &n| {
            b.iter(|| n + 1)
        });
        group.finish();
    }
}
