//! Offline vendored `proptest` subset.
//!
//! Provides the `proptest!` macro surface this workspace uses — config
//! headers, `arg in strategy` and `arg: Type` bindings, `prop_assert!` /
//! `prop_assert_eq!` — backed by a deterministic per-test RNG instead of
//! the real crate's shrinking test runner. Cases are reproducible: the
//! stream is seeded from the test's module path, name and case index, so
//! a failure always recurs at the same case on rerun.
//!
//! No shrinking is performed; the failure message reports the case index
//! so the offending inputs can be reconstructed by rerunning.

pub mod strategy {
    //! Value-generation strategies (`a..b` ranges, collections).

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Generates values of an output type from a random stream.
    pub trait Strategy {
        /// Generated value type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty strategy range");
                    let span = (*self.end() - *self.start()) as u64 + 1;
                    self.start() + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    impl_range_strategy_int!(usize, u64, u32, u16, u8, i64, i32);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start() + (self.end() - self.start()) * rng.unit_f64()
        }
    }

    /// Strategy for `Vec<T>` with a random length.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub(crate) fn vec_strategy<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

pub mod arbitrary {
    //! Type-directed generation for `arg: Type` bindings.

    use crate::test_runner::TestRng;

    /// Types that can generate themselves from the random stream.
    pub trait Arbitrary {
        /// Draws one value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(usize, u64, u32, u16, u8, i64, i32);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }
}

pub mod test_runner {
    //! The deterministic case runner state.

    /// Per-test deterministic RNG (SplitMix64 stream).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream from the test identity and case index, so
        /// every case is reproducible across runs and platforms.
        #[must_use]
        pub fn for_case(test_name: &str, case: u32) -> TestRng {
            // FNV-1a over the name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                state: h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)` with 53-bit precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Run-count configuration (the only knob this workspace uses).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 32 }
        }
    }
}

/// `prop::` namespace as re-exported by the real prelude.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::{vec_strategy, Strategy, VecStrategy};
        use std::ops::Range;

        /// Strategy producing vectors whose length is drawn from `size`
        /// and whose elements are drawn from `element`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            vec_strategy(element, size)
        }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::arbitrary::Arbitrary;
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares deterministic property tests.
///
/// Supports an optional `#![proptest_config(expr)]` header followed by
/// any number of test functions whose parameters are either
/// `name in strategy` or `name: Type` bindings.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $crate::__proptest_bind!(__rng, $($params)*);
                // Case index in panic messages makes failures reproducible.
                let __run = || $body;
                __run();
            }
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $name:ident in $strat:expr) => {
        let $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident, $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, $name:ident : $ty:ty) => {
        let $name: $ty = $crate::arbitrary::Arbitrary::arbitrary(&mut $rng);
    };
    ($rng:ident, $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name: $ty = $crate::arbitrary::Arbitrary::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("bounds", 0);
        for _ in 0..1000 {
            let v = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = TestRng::for_case("same", 7);
        let mut b = TestRng::for_case("same", 7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::for_case("same", 8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro surface itself: mixed bindings and collections.
        #[test]
        fn macro_surface(
            n in 1usize..10,
            x in 0.0f64..1.0,
            flag: bool,
            items in prop::collection::vec(0u32..100, 1..20),
        ) {
            prop_assert!((1..10).contains(&n));
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!(usize::from(flag) <= 1);
            prop_assert!(!items.is_empty() && items.len() < 20);
            prop_assert!(items.iter().all(|&v| v < 100));
            prop_assert_eq!(n, n);
            prop_assert_ne!(n, n + 1);
        }
    }
}
