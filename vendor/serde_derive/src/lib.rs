//! Offline vendored `Serialize` / `Deserialize` derive macros.
//!
//! The real `serde_derive` depends on `syn`/`quote`, which are not
//! available in this offline environment, so this implementation parses
//! the item declaration directly from the raw [`TokenStream`]. It
//! supports exactly the shapes this workspace uses:
//!
//! * structs with named fields (any count),
//! * tuple structs (newtypes serialize transparently, larger tuples as
//!   arrays),
//! * unit-variant enums (serialized as the variant name string),
//! * the field attributes `#[serde(default)]`, `#[serde(default =
//!   "path")]` and `#[serde(with = "module")]`, and the container
//!   attribute `#[serde(transparent)]`.
//!
//! Generics are intentionally unsupported; the macro fails loudly if it
//! meets one so the gap is obvious rather than silent.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Default, Clone)]
struct FieldAttrs {
    /// `#[serde(default)]`
    default: bool,
    /// `#[serde(default = "path")]`
    default_path: Option<String>,
    /// `#[serde(with = "module")]`
    with: Option<String>,
}

#[derive(Debug)]
struct Field {
    name: String,
    attrs: FieldAttrs,
}

#[derive(Debug)]
enum Shape {
    /// `struct S { a: A, b: B }`
    Named(Vec<Field>),
    /// `struct S(A, B);` with arity.
    Tuple(usize),
    /// `enum E { A, B }` with unit variants.
    UnitEnum(Vec<String>),
}

#[derive(Debug)]
struct Input {
    name: String,
    transparent: bool,
    shape: Shape,
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let body = match &input.shape {
        Shape::Named(fields) => serialize_named(&input, fields),
        Shape::Tuple(1) => "serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => serde::Value::String(\"{v}\".to_string())",
                        name = input.name
                    )
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{ {body} }}\n\
         }}",
        name = input.name
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = match &input.shape {
        Shape::Named(fields) => deserialize_named(&input, fields),
        Shape::Tuple(1) => {
            format!("Ok({name}(serde::Deserialize::from_value(__value)?))")
        }
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "match __value {{\n\
                     serde::Value::Array(__items) if __items.len() == {n} =>\n\
                         Ok({name}({items})),\n\
                     __other => Err(serde::DeError::type_mismatch(\"{n}-tuple\", __other)),\n\
                 }}",
                items = items.join(", ")
            )
        }
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("Some(\"{v}\") => Ok({name}::{v})"))
                .collect();
            format!(
                "match __value.as_str() {{\n\
                     {arms},\n\
                     _ => Err(serde::DeError::new(format!(\n\
                         \"unknown {name} variant {{:?}}\", __value))),\n\
                 }}",
                arms = arms.join(",\n")
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> serde::Deserialize<'de> for {name} {{\n\
             fn from_value(__value: &serde::Value) -> Result<Self, serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

fn serialize_named(input: &Input, fields: &[Field]) -> String {
    if input.transparent {
        assert_eq!(
            fields.len(),
            1,
            "#[serde(transparent)] requires exactly one field"
        );
        return format!("serde::Serialize::to_value(&self.{})", fields[0].name);
    }
    let mut pushes = Vec::new();
    for f in fields {
        let expr = match &f.attrs.with {
            Some(module) => format!(
                "{module}::serialize(&self.{field}, serde::ValueSerializer)\
                 .expect(\"value serializer is infallible\")",
                field = f.name
            ),
            None => format!("serde::Serialize::to_value(&self.{})", f.name),
        };
        pushes.push(format!(
            "__fields.push((\"{name}\".to_string(), {expr}));",
            name = f.name
        ));
    }
    format!(
        "let mut __fields: Vec<(String, serde::Value)> = Vec::with_capacity({n});\n\
         {pushes}\n\
         serde::Value::Object(__fields)",
        n = fields.len(),
        pushes = pushes.join("\n")
    )
}

fn deserialize_named(input: &Input, fields: &[Field]) -> String {
    let name = &input.name;
    if input.transparent {
        assert_eq!(
            fields.len(),
            1,
            "#[serde(transparent)] requires exactly one field"
        );
        return format!(
            "Ok({name} {{ {field}: serde::Deserialize::from_value(__value)? }})",
            field = fields[0].name
        );
    }
    let mut inits = Vec::new();
    for f in fields {
        let expr = match (&f.attrs.with, &f.attrs.default_path, f.attrs.default) {
            (Some(module), _, _) => format!(
                "match serde::__get(__value, \"{field}\") {{\n\
                     Some(__v) => {module}::deserialize(serde::ValueDeserializer(__v))?,\n\
                     None => return Err(serde::DeError::new(\n\
                         \"{name}: missing field `{field}`\".to_string())),\n\
                 }}",
                field = f.name
            ),
            (None, Some(path), _) => format!(
                "serde::__field_or_else(__value, \"{name}\", \"{field}\", {path})?",
                field = f.name
            ),
            (None, None, true) => format!(
                "serde::__field_or_else(__value, \"{name}\", \"{field}\", \
                 ::std::default::Default::default)?",
                field = f.name
            ),
            (None, None, false) => format!(
                "serde::__field(__value, \"{name}\", \"{field}\")?",
                field = f.name
            ),
        };
        inits.push(format!("{field}: {expr},", field = f.name));
    }
    format!("Ok({name} {{\n{inits}\n}})", inits = inits.join("\n"))
}

// ---------------------------------------------------------------------------
// Declaration parsing.
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut transparent = false;

    // Outer attributes (doc comments, derives, #[serde(...)]).
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    let attrs = parse_serde_attr(g.stream());
                    if attrs.iter().any(|a| a == "transparent") {
                        transparent = true;
                    }
                    i += 2;
                } else {
                    panic!("malformed attribute");
                }
            }
            TokenTree::Ident(id) if *id.to_string() == *"pub" => {
                i += 1;
                // Skip `(crate)` etc. after `pub`.
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        assert!(
            p.as_char() != '<',
            "vendored serde_derive does not support generic type `{name}`"
        );
    }

    let shape = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(parse_tuple_arity(g.stream()))
            }
            _ => panic!("unsupported struct shape for `{name}` (unit struct?)"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::UnitEnum(parse_unit_variants(&name, g.stream()))
            }
            _ => panic!("expected enum body for `{name}`"),
        },
        other => panic!("cannot derive for `{other}` items"),
    };

    Input {
        name,
        transparent,
        shape,
    }
}

/// Extracts the comma-separated meta items of a `serde(...)` attribute
/// body, rendered back to strings like `transparent`, `default`,
/// `default = "path"`, `with = "module"`. Non-serde attributes yield an
/// empty list.
fn parse_serde_attr(attr_body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = attr_body.into_iter().collect();
    // Shape: `serde ( ... )` — possibly `! [serde(...)]` for inner
    // attributes, which we do not use.
    let mut iter = tokens.iter();
    match iter.next() {
        Some(TokenTree::Ident(id)) if *id.to_string() == *"serde" => {}
        _ => return Vec::new(),
    }
    let Some(TokenTree::Group(g)) = iter.next() else {
        return Vec::new();
    };
    let mut items = Vec::new();
    let mut current = String::new();
    for t in g.stream() {
        match t {
            TokenTree::Punct(p) if p.as_char() == ',' => {
                items.push(std::mem::take(&mut current));
            }
            other => {
                if !current.is_empty() {
                    current.push(' ');
                }
                current.push_str(&other.to_string());
            }
        }
    }
    if !current.is_empty() {
        items.push(current);
    }
    items
}

fn attrs_from_items(items: &[String]) -> FieldAttrs {
    let mut attrs = FieldAttrs::default();
    for item in items {
        if item == "default" {
            attrs.default = true;
        } else if let Some(rest) = item.strip_prefix("default =") {
            attrs.default_path = Some(unquote(rest.trim()));
        } else if let Some(rest) = item.strip_prefix("with =") {
            attrs.with = Some(unquote(rest.trim()));
        } else if item == "transparent" {
            // Container-level; handled by the caller.
        } else {
            panic!("unsupported serde attribute `{item}`");
        }
    }
    attrs
}

fn unquote(s: &str) -> String {
    s.trim_matches('"').to_string()
}

/// Parses `a: A, #[serde(default)] b: B, ...` into fields. Commas inside
/// angle brackets (`BTreeMap<K, V>`) belong to the type, not the list.
fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut pending_attrs: Vec<String> = Vec::new();
    let mut tokens = body.into_iter().peekable();

    while let Some(t) = tokens.next() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.next() {
                    pending_attrs.extend(parse_serde_attr(g.stream()));
                } else {
                    panic!("malformed field attribute");
                }
            }
            TokenTree::Ident(id) if *id.to_string() == *"pub" => {
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            TokenTree::Ident(id) => {
                let name = id.to_string();
                match tokens.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => panic!("expected `:` after field `{name}`, got {other:?}"),
                }
                // Swallow the type up to the next top-level comma.
                let mut angle_depth = 0i32;
                for t in tokens.by_ref() {
                    match t {
                        TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                            break;
                        }
                        _ => {}
                    }
                }
                fields.push(Field {
                    name,
                    attrs: attrs_from_items(&std::mem::take(&mut pending_attrs)),
                });
            }
            other => panic!("unexpected token in struct body: {other}"),
        }
    }
    fields
}

/// Counts the fields of a tuple struct body.
fn parse_tuple_arity(body: TokenStream) -> usize {
    let mut arity = 0usize;
    let mut angle_depth = 0i32;
    let mut saw_tokens = false;
    for t in body {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                arity += 1;
                saw_tokens = false;
            }
            _ => saw_tokens = true,
        }
    }
    if saw_tokens {
        arity += 1;
    }
    arity
}

/// Parses unit enum variants, rejecting data-carrying variants.
fn parse_unit_variants(name: &str, body: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    while let Some(t) = tokens.next() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Variant attribute (e.g. doc comment): skip its body.
                tokens.next();
            }
            TokenTree::Ident(id) => {
                variants.push(id.to_string());
                match tokens.peek() {
                    None => {}
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                        tokens.next();
                    }
                    Some(other) => panic!(
                        "vendored serde_derive supports only unit variants; \
                         `{name}::{}` carries {other}",
                        variants.last().expect("just pushed")
                    ),
                }
            }
            other => panic!("unexpected token in enum body: {other}"),
        }
    }
    variants
}
