//! Offline vendored `serde_json`: a hand-rolled JSON parser and printer
//! over the vendored `serde` [`Value`] tree.
//!
//! Matches the subset of the real crate's API this workspace uses:
//! [`from_str`], [`to_string`], [`to_string_pretty`], [`Value`] and
//! [`Error`]. Numbers are stored as `f64`; integral values print without
//! a fractional part (`3`, not `3.0`), and non-integral values print via
//! Rust's shortest-roundtrip `{}` formatting, so parse → print → parse
//! is stable.

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};

use std::fmt;

/// JSON (de)serialization error: a message plus, for syntax errors, the
/// byte offset where parsing failed.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    fn syntax(message: impl Into<String>, pos: usize) -> Error {
        Error {
            message: format!("{} at byte {pos}", message.into()),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error {
            message: e.to_string(),
        }
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Error {
        Error {
            message: msg.to_string(),
        }
    }
}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Error {
        Error {
            message: msg.to_string(),
        }
    }
}

/// Deserializes a value of type `T` from a JSON string.
///
/// # Errors
///
/// Returns [`Error`] for syntactically invalid JSON or a value tree that
/// does not match `T`'s shape.
pub fn from_str<T: for<'de> Deserialize<'de>>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Infallible for the vendored value tree; the `Result` mirrors the real
/// crate's signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to 2-space-indented JSON.
///
/// # Errors
///
/// Infallible for the vendored value tree; the `Result` mirrors the real
/// crate's signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

// ---------------------------------------------------------------------------
// Printer.
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_sep(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            write_sep(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_sep(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    use std::fmt::Write;
    if !n.is_finite() {
        // JSON has no inf/NaN; the real crate errors, we degrade to null.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::syntax("trailing characters", p.pos));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::syntax(format!("expected `{}`", b as char), self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(Error::syntax(
                format!("unexpected character `{}`", b as char),
                self.pos,
            )),
            None => Err(Error::syntax("unexpected end of input", self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::syntax(format!("expected `{lit}`"), self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::syntax("expected `,` or `}`", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::syntax("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::syntax("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| Error::syntax("bad \\u escape", self.pos))?;
                            // Surrogate pairs are not needed by this
                            // workspace's data; reject rather than corrupt.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| Error::syntax("non-BMP \\u escape", self.pos))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(Error::syntax("bad escape", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid UTF-8 since
                    // it came from &str).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::syntax("bad number", start))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::syntax(format!("bad number `{text}`"), start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"hi\\n\"").unwrap(), "hi\n");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&3.0f64).unwrap(), "3");
        assert_eq!(to_string(&"a\"b").unwrap(), "\"a\\\"b\"");
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<u32> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");

        let value: Value = from_str(r#"{"a": [1, {"b": null}], "c": -2.5e1}"#).unwrap();
        assert_eq!(value["a"][0], 1);
        assert!(value["a"][1]["b"].is_null());
        assert_eq!(value["c"], -25.0);
    }

    #[test]
    fn pretty_print_shape() {
        let value: Value = from_str(r#"{"a": 1, "b": [true]}"#).unwrap();
        let pretty = to_string_pretty(&value).unwrap();
        assert_eq!(pretty, "{\n  \"a\": 1,\n  \"b\": [\n    true\n  ]\n}");
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn syntax_errors_rejected() {
        assert!(from_str::<Value>("{not json").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("").is_err());
    }

    #[test]
    fn key_order_preserved() {
        let value: Value = from_str(r#"{"z": 1, "a": 2}"#).unwrap();
        assert_eq!(to_string(&value).unwrap(), r#"{"z":1,"a":2}"#);
    }
}
