//! Offline vendored ChaCha8 random number generator.
//!
//! Implements the ChaCha stream cipher (Bernstein 2008) with 8 rounds in
//! the word layout used by `rand_chacha` 0.3: a 256-bit key from the
//! seed, a 64-bit block counter in words 12–13 and a 64-bit stream id in
//! words 14–15. Output words are consumed in block order, low word
//! first, so `next_u64` is `lo | hi << 32` of consecutive words.
//!
//! The workspace uses this through `helios_sim::SimRng`, which relies on
//! [`ChaCha8Rng::set_stream`] / [`ChaCha8Rng::set_word_pos`] for cheap
//! forking into independent deterministic sub-streams.

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const ROUNDS: usize = 8;
const WORDS_PER_BLOCK: u128 = 16;

/// A ChaCha stream cipher RNG with 8 rounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    stream: u64,
    /// Absolute position in 32-bit words since the start of the stream.
    word_pos: u128,
    buf: [u32; 16],
    buf_block: u64,
    buf_valid: bool,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Selects the 64-bit stream id. Positions are preserved, so distinct
    /// streams from the same key are independent sequences.
    pub fn set_stream(&mut self, stream: u64) {
        if self.stream != stream {
            self.stream = stream;
            self.buf_valid = false;
        }
    }

    /// The current stream id.
    #[must_use]
    pub fn get_stream(&self) -> u64 {
        self.stream
    }

    /// Repositions the generator at an absolute 32-bit-word offset from
    /// the start of the stream.
    pub fn set_word_pos(&mut self, word_offset: u128) {
        self.word_pos = word_offset;
    }

    /// The absolute 32-bit-word position.
    #[must_use]
    pub fn get_word_pos(&self) -> u128 {
        self.word_pos
    }

    fn generate_block(&mut self, block: u64) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = block as u32;
        state[13] = (block >> 32) as u32;
        state[14] = self.stream as u32;
        state[15] = (self.stream >> 32) as u32;
        let input = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buf = state;
        self.buf_block = block;
        self.buf_valid = true;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> ChaCha8Rng {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            stream: 0,
            word_pos: 0,
            buf: [0; 16],
            buf_block: 0,
            buf_valid: false,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        let block = (self.word_pos / WORDS_PER_BLOCK) as u64;
        if !self.buf_valid || self.buf_block != block {
            self.generate_block(block);
        }
        let word = self.buf[(self.word_pos % WORDS_PER_BLOCK) as usize];
        self.word_pos = self.word_pos.wrapping_add(1);
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc7539_style_block_function() {
        // ChaCha8 with an all-zero key and nonce emits the ecrypt test
        // vector keystream "3e 00 ef 2f 89 5f 40 d6 ..." (set 1, vector
        // 0); the first two little-endian output words are therefore
        // 0x2fef003e and 0xd6405f89.
        let mut rng = ChaCha8Rng::from_seed([0u8; 32]);
        assert_eq!(rng.next_u32(), 0x2fef_003e);
        assert_eq!(rng.next_u32(), 0xd640_5f89);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn streams_are_distinct() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = a.clone();
        b.set_stream(7);
        b.set_word_pos(0);
        assert_eq!(b.get_stream(), 7);
        let matches = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(matches < 2, "streams should be essentially disjoint");
    }

    #[test]
    fn word_pos_seeks() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let skip: Vec<u32> = (0..40).map(|_| a.next_u32()).collect();
        let mut b = ChaCha8Rng::seed_from_u64(9);
        b.set_word_pos(17);
        assert_eq!(b.get_word_pos(), 17);
        assert_eq!(b.next_u32(), skip[17]);
        assert_eq!(b.next_u32(), skip[18]);
    }

    #[test]
    fn crosses_block_boundaries() {
        let mut a = ChaCha8Rng::seed_from_u64(3);
        let first: Vec<u32> = (0..48).map(|_| a.next_u32()).collect();
        let mut b = ChaCha8Rng::seed_from_u64(3);
        let again: Vec<u32> = (0..48).map(|_| b.next_u32()).collect();
        assert_eq!(first, again);
        // Distinct blocks actually differ.
        assert_ne!(&first[0..16], &first[16..32]);
    }
}
