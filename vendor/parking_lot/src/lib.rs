//! Offline vendored `parking_lot` subset: non-poisoning [`Mutex`] and
//! [`Condvar`] built on `std::sync`.
//!
//! Matches parking_lot's API shape where this workspace uses it —
//! `lock()` returns the guard directly (no `Result`), and
//! `Condvar::wait` takes `&mut MutexGuard`. Poisoning is deliberately
//! ignored: parking_lot itself never poisons, and recovering the inner
//! guard from a poisoned std lock preserves that behaviour.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// Guard returned by [`Mutex::lock`].
///
/// Wraps the std guard in an `Option` so [`Condvar::wait`] can take the
/// guard out, park on the std condvar, and put the reacquired guard back
/// — all through a `&mut` borrow, matching parking_lot's signature.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

/// A condition variable compatible with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    #[must_use]
    pub fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard's lock and waits for a
    /// notification; the lock is reacquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present outside wait");
        let reacquired = match self.inner.wait(std_guard) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.inner = Some(reacquired);
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_signals_across_threads() {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let state2 = Arc::clone(&state);
        let handle = std::thread::spawn(move || {
            let (lock, cvar) = &*state2;
            *lock.lock() = true;
            cvar.notify_all();
        });
        let (lock, cvar) = &*state;
        let mut done = lock.lock();
        while !*done {
            cvar.wait(&mut done);
        }
        assert!(*done);
        drop(done);
        handle.join().unwrap();
    }
}
