#!/usr/bin/env sh
# Local CI gate for helios.
#
# Runs the same four checks a hosted pipeline would, in order of
# increasing strictness. The root crate is a package as well as the
# workspace root, so every step passes --workspace explicitly: a bare
# `cargo build` would cover only the root package and leave e.g. the
# helios-cli binary stale. All third-party dependencies are vendored as
# workspace members under vendor/ (see DESIGN.md §5), so every step
# works fully offline — no registry, no network, no lockfile updates.
# If cargo still tries to reach a registry, check that Cargo.toml's
# [workspace.dependencies] all point at vendor/ paths.
#
# Usage: ./ci.sh
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> scheduler conformance battery"
cargo test -q --test sched_conformance

echo "==> resilience battery"
cargo test -q --test fault_paths

echo "==> elasticity battery (join/drain/preempt, dead capacity, exhaustion)"
cargo test -q --test elastic_paths

echo "==> extended fault battery (link faults, domains, lineage recovery)"
cargo test -q -p helios-core resilience::
cargo test -q -p helios-core campaign::

echo "==> cross-path execution-core conformance"
# The hook-composed core with every feature hook off must be
# byte-identical to the plain Engine (property over random DAGs ×
# presets × schedulers), and every execution mode must match its
# committed golden report — the before/after anchor for refactors that
# claim byte-identity.
cargo test -q -p helios-core exec::conformance
cargo test -q --test exec_golden

echo "==> resilient-runner size guard"
# The runner must stay a thin hook set over the execution core; shared
# step-loop or staging math creeping back in shows up as line growth.
runner=crates/core/src/resilience/runner.rs
runner_lines=$(wc -l < "$runner")
if [ "$runner_lines" -gt 1000 ]; then
    echo "$runner has $runner_lines lines (limit 1000): move shared logic into core/src/exec" >&2
    exit 1
fi
echo "$runner: $runner_lines lines (limit 1000)"

echo "==> sharded sweep byte-identity smoke"
# The release binary sweeps the committed smoke spec unsharded, then as
# a 2-shard partition recombined by `campaign merge`; the two reports
# must be byte-identical (the tier-1 test suite pins the same property
# in-process for 1/1, 2, and 4 shards).
sweep_tmp="$(mktemp -d)"
trap 'rm -rf "$sweep_tmp"' EXIT
helios=target/release/helios
"$helios" campaign run --spec examples/specs/smoke.json --out "$sweep_tmp/full.json" > /dev/null
"$helios" campaign run --spec examples/specs/smoke.json --shard 1/2 --out "$sweep_tmp/s1.json" > /dev/null
"$helios" campaign run --spec examples/specs/smoke.json --shard 2/2 --out "$sweep_tmp/s2.json" > /dev/null
"$helios" campaign merge --in "$sweep_tmp/s1.json" --in "$sweep_tmp/s2.json" \
    --out "$sweep_tmp/merged.json" > /dev/null
cmp "$sweep_tmp/full.json" "$sweep_tmp/merged.json"
echo "2-shard merge is byte-identical to the unsharded sweep"

echo "==> kill-and-resume smoke (resilient spec)"
# A sweep of the resilient spec is killed after one cell (test hook,
# nonzero exit expected), resumed against the partial report, and must
# come out byte-identical to an uninterrupted run. The same spec is also
# swept as a 2-shard partition to pin byte-identity under resilience.
rspec=examples/specs/resilient_smoke.json
"$helios" campaign run --spec "$rspec" --out "$sweep_tmp/rfull.json" > /dev/null
if HELIOS_SWEEP_ABORT_AFTER=1 "$helios" campaign run --spec "$rspec" \
    --out "$sweep_tmp/rresume.json" > /dev/null 2>&1; then
    echo "aborted sweep unexpectedly exited zero" >&2
    exit 1
fi
"$helios" campaign run --spec "$rspec" --out "$sweep_tmp/rresume.json" > /dev/null
cmp "$sweep_tmp/rfull.json" "$sweep_tmp/rresume.json"
"$helios" campaign run --spec "$rspec" --shard 1/2 --out "$sweep_tmp/r1.json" > /dev/null
"$helios" campaign run --spec "$rspec" --shard 2/2 --out "$sweep_tmp/r2.json" > /dev/null
"$helios" campaign merge --in "$sweep_tmp/r1.json" --in "$sweep_tmp/r2.json" \
    --out "$sweep_tmp/rmerged.json" > /dev/null
cmp "$sweep_tmp/rfull.json" "$sweep_tmp/rmerged.json"
echo "kill-and-resume and 2-shard merge are byte-identical under resilience"

echo "==> kill -9 chaos loop (write-ahead journal survives hard kills)"
# The release binary sweeps a 6000-cell resilient spec through the
# fsync'd cell journal while being kill -9'd at randomized delays: at
# least 5 hard kills land wherever they land — between records or
# mid-record. `campaign recover` then salvages the journal (truncating
# any torn tail) and a final run completes it; the compiled view must be
# byte-identical to a run that was never interrupted. HELIOS_POISON_LIMIT
# is raised so a cell the random kills keep hitting is retried rather
# than quarantined (quarantine changes the bytes by design).
cspec="$sweep_tmp/chaos_spec.json"
sed 's/"count": 3/"count": 3000/' "$rspec" > "$cspec"
"$helios" campaign run --spec "$cspec" --out "$sweep_tmp/chaos_ref.json" > /dev/null
kills=0
tries=0
while [ "$kills" -lt 5 ]; do
    tries=$((tries + 1))
    if [ "$tries" -gt 60 ]; then
        echo "chaos loop could not land 5 kills in $tries tries" >&2
        exit 1
    fi
    HELIOS_POISON_LIMIT=100 "$helios" campaign run --spec "$cspec" \
        --journal "$sweep_tmp/chaos.journal" --out "$sweep_tmp/chaos.json" \
        > /dev/null 2>&1 &
    chaos_pid=$!
    # POSIX sh has no $RANDOM: draw two bytes from /dev/urandom for a
    # randomized 20-490 ms kill delay.
    delay=$(od -An -N2 -tu2 /dev/urandom | tr -d ' ')
    sleep "$(printf '0.%03d' $((delay % 470 + 20)))"
    kill -9 "$chaos_pid" 2> /dev/null || true
    if wait "$chaos_pid" 2> /dev/null; then
        # The sweep finished before the kill landed: the journal is
        # complete, so restart the chaos from an empty one.
        rm -f "$sweep_tmp/chaos.journal" "$sweep_tmp/chaos.json"
    else
        kills=$((kills + 1))
    fi
done
"$helios" campaign recover "$sweep_tmp/chaos.journal" > /dev/null
HELIOS_POISON_LIMIT=100 "$helios" campaign run --spec "$cspec" \
    --journal "$sweep_tmp/chaos.journal" --out "$sweep_tmp/chaos.json" > /dev/null
cmp "$sweep_tmp/chaos_ref.json" "$sweep_tmp/chaos.json"
echo "journal survived $kills hard kills ($tries runs) byte-identically"

echo "==> torn-write smoke (mid-record kill is salvaged, not hand-repaired)"
# The torn-write hook persists half of one record's bytes and dies —
# the exact shape a kill mid-`write(2)` leaves behind. Recovery must
# truncate the torn tail, report it, and resume byte-identically.
if HELIOS_JOURNAL_TORN_WRITE=3 "$helios" campaign run --spec "$rspec" \
    --journal "$sweep_tmp/torn.journal" > /dev/null 2>&1; then
    echo "torn-write injection unexpectedly exited zero" >&2
    exit 1
fi
"$helios" campaign recover "$sweep_tmp/torn.journal" | grep -q "torn byte(s)"
"$helios" campaign run --spec "$rspec" \
    --journal "$sweep_tmp/torn.journal" --out "$sweep_tmp/torn.json" > /dev/null
cmp "$sweep_tmp/rfull.json" "$sweep_tmp/torn.json"
# Journals are also merge inputs in their own right.
"$helios" campaign merge --in "$sweep_tmp/torn.journal" \
    --out "$sweep_tmp/torn_merged.json" > /dev/null
cmp "$sweep_tmp/rfull.json" "$sweep_tmp/torn_merged.json"
echo "torn journal salvaged and merged byte-identically"

echo "==> partition smoke (correlated rack outage + interconnect faults)"
# The full three-class fault stack through the release binary: a rack
# domain that permanently kills node1 and severs the only inter-node
# link of cluster2, on top of per-link interconnect faults. The sweep
# must survive (lost cells are measurements) and a 2-shard partition
# must recombine byte-identical to the unsharded run.
pspec=examples/specs/partition_smoke.json
"$helios" campaign run --spec "$pspec" --out "$sweep_tmp/pfull.json" > /dev/null
"$helios" campaign run --spec "$pspec" --shard 1/2 --out "$sweep_tmp/p1.json" > /dev/null
"$helios" campaign run --spec "$pspec" --shard 2/2 --out "$sweep_tmp/p2.json" > /dev/null
"$helios" campaign merge --in "$sweep_tmp/p1.json" --in "$sweep_tmp/p2.json" \
    --out "$sweep_tmp/pmerged.json" > /dev/null
cmp "$sweep_tmp/pfull.json" "$sweep_tmp/pmerged.json"
echo "2-shard merge is byte-identical under the full fault stack"

echo "==> elastic-capacity smoke (spot preempt + drain + churn)"
# Capacity events through the release binary: a timed preempt/drain/join
# plan plus a spot-churn renewal, with the benign synthesized resilience
# stack. A 2-shard partition must recombine byte-identical to the
# unsharded sweep — capacity realizations are keyed by entity id, never
# by worker or shard.
espec=examples/specs/elastic_smoke.json
"$helios" campaign run --spec "$espec" --out "$sweep_tmp/efull.json" > /dev/null
grep -q '"preemptions"' "$sweep_tmp/efull.json"
"$helios" campaign run --spec "$espec" --shard 1/2 --out "$sweep_tmp/e1.json" > /dev/null
"$helios" campaign run --spec "$espec" --shard 2/2 --out "$sweep_tmp/e2.json" > /dev/null
"$helios" campaign merge --in "$sweep_tmp/e1.json" --in "$sweep_tmp/e2.json" \
    --out "$sweep_tmp/emerged.json" > /dev/null
cmp "$sweep_tmp/efull.json" "$sweep_tmp/emerged.json"
echo "2-shard merge is byte-identical under elastic capacity"

echo "==> adversarial fuzz smoke (differential oracles)"
# A deterministic slice of the fuzz harness through the release binary:
# 25 random campaign specs from seed 7, each checked against the
# differential oracles (hooks-off identity, --jobs and shard
# byte-identity, fault-free lower bound, schedule invariants). Any
# divergence shrinks to a fixture and fails this step.
"$helios" fuzz --seed 7 --runs 25

echo "==> bugbase replay (fixed bugs stay fixed)"
# Every committed fixture replays through the oracles, via the binary
# and via the in-process harness test; the count cross-check makes a
# fixture the replay did not pick up a hard failure.
fixture_count=$(ls tests/bugbase/*.json | wc -l | tr -d ' ')
"$helios" fuzz --replay tests/bugbase | tee "$sweep_tmp/replay.log"
if ! grep -q "replayed $fixture_count fixture(s), 0 diverging" "$sweep_tmp/replay.log"; then
    echo "bugbase replay missed fixtures: expected $fixture_count, see replay.log" >&2
    exit 1
fi
cargo test -q --test bugbase

echo "==> infeasible-grid smoke (incomplete cells survive shard merge)"
# cybershake on edge_soc can never be placed: every cell must come back
# as an `infeasible` measurement with null summary means, and a 2-shard
# partition must recombine byte-identical to the unsharded run.
ispec=examples/specs/infeasible_smoke.json
"$helios" campaign run --spec "$ispec" --out "$sweep_tmp/ifull.json" > /dev/null
grep -q '"incomplete_reason": "infeasible"' "$sweep_tmp/ifull.json"
grep -q '"mean_makespan_secs": null' "$sweep_tmp/ifull.json"
"$helios" campaign run --spec "$ispec" --shard 1/2 --out "$sweep_tmp/i1.json" > /dev/null
"$helios" campaign run --spec "$ispec" --shard 2/2 --out "$sweep_tmp/i2.json" > /dev/null
"$helios" campaign merge --in "$sweep_tmp/i1.json" --in "$sweep_tmp/i2.json" \
    --out "$sweep_tmp/imerged.json" > /dev/null
cmp "$sweep_tmp/ifull.json" "$sweep_tmp/imerged.json"
echo "infeasible cells are measurements and merge byte-identically"

echo "==> columnar store + query smoke"
# The smoke spec swept into 2 columnar store shards must merge (through
# the mixed-format merge path) byte-identical to the unsharded JSON
# report, and a GROUP BY scheduler query over the store shards must
# byte-match the same query over the compiled JSON summary's report.
"$helios" campaign run --spec examples/specs/smoke.json --shard 1/2 \
    --store "$sweep_tmp/s1.store" > /dev/null
"$helios" campaign run --spec examples/specs/smoke.json --shard 2/2 \
    --store "$sweep_tmp/s2.store" > /dev/null
"$helios" campaign merge --in "$sweep_tmp/s1.store" --in "$sweep_tmp/s2.store" \
    --out "$sweep_tmp/store_merged.json" > /dev/null
cmp "$sweep_tmp/full.json" "$sweep_tmp/store_merged.json"
gq='SELECT scheduler, count(*), avg_completed(makespan_secs), frac(completed) GROUP BY scheduler'
"$helios" query "$gq" --in "$sweep_tmp/s1.store" --in "$sweep_tmp/s2.store" \
    --json > "$sweep_tmp/q_store.json"
"$helios" query "$gq" --in "$sweep_tmp/full.json" --json > "$sweep_tmp/q_json.json"
cmp "$sweep_tmp/q_store.json" "$sweep_tmp/q_json.json"
echo "store merge and GROUP BY query are byte-identical to the JSON path"

echo "==> perf-trajectory smoke"
# Reduced-iteration run of the pinned benchmark harness: verifies the
# harness executes and emits well-formed JSON with both series, without
# spending full-run wall clock. Committed BENCH_<PR>.json files must
# come from a full (non-smoke) run; the bench crate's test suite checks
# the committed file carries both series.
target/release/perf_trajectory --smoke --out "$sweep_tmp/bench_smoke.json"
for series in paper_grid_cells_per_sec paper_grid_journal_cells_per_sec \
    merge_rows_per_sec synthetic_dag_steps_per_sec; do
    if ! grep -q "\"$series\"" "$sweep_tmp/bench_smoke.json"; then
        echo "bench smoke output is missing the $series series" >&2
        exit 1
    fi
done
# Numeric sort on the PR number: lexical `ls | tail -1` would pick
# BENCH_9 over BENCH_10.
bench_committed=$(ls BENCH_*.json 2> /dev/null | sort -t_ -k2 -n | tail -1)
if [ -z "$bench_committed" ]; then
    echo "no committed BENCH_*.json trajectory file found" >&2
    exit 1
fi
if grep -q '"smoke": true' "$bench_committed"; then
    echo "$bench_committed was generated with --smoke; commit a full run" >&2
    exit 1
fi
echo "bench harness OK; committed trajectory: $bench_committed"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> CI green"
