#!/usr/bin/env sh
# Local CI gate for helios.
#
# Runs the same four checks a hosted pipeline would, in order of
# increasing strictness. The root crate is a package as well as the
# workspace root, so every step passes --workspace explicitly: a bare
# `cargo build` would cover only the root package and leave e.g. the
# helios-cli binary stale. All third-party dependencies are vendored as
# workspace members under vendor/ (see DESIGN.md §5), so every step
# works fully offline — no registry, no network, no lockfile updates.
# If cargo still tries to reach a registry, check that Cargo.toml's
# [workspace.dependencies] all point at vendor/ paths.
#
# Usage: ./ci.sh
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> CI green"
