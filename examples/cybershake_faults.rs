//! Fault-tolerant execution of a CyberShake seismic-hazard workflow.
//!
//! Injects Poisson device failures at several MTBF settings and shows how
//! checkpoint/restart contains the damage compared to restarting failed
//! tasks from scratch.
//!
//! ```sh
//! cargo run --release --example cybershake_faults
//! ```

use helios::core::{CheckpointConfig, Engine, EngineConfig, FaultConfig};
use helios::platform::presets;
use helios::sched::{HeftScheduler, Scheduler};
use helios::sim::SimDuration;
use helios::workflow::generators::cybershake;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = presets::hpc_node();
    let wf = cybershake(200, 3)?;
    let plan = HeftScheduler::default().schedule(&wf, &platform)?;

    let clean = Engine::new(EngineConfig::default()).execute_plan(&platform, &wf, &plan)?;
    println!(
        "workflow: {wf}\nfault-free makespan: {:.4}s\n",
        clean.makespan().as_secs()
    );
    println!(
        "{:>10} {:>12} {:>12} {:>10} {:>10}",
        "MTBF (s)", "checkpoint", "makespan", "overhead", "failures"
    );

    for mtbf in [0.5, 0.1, 0.05] {
        for ckpt in [false, true] {
            let mut config = EngineConfig {
                seed: 99,
                faults: Some(FaultConfig::new(
                    mtbf,
                    SimDuration::from_secs(0.005),
                    1_000_000,
                )?),
                ..Default::default()
            };
            if ckpt {
                config.checkpointing = Some(CheckpointConfig::new(
                    SimDuration::from_secs(0.01),
                    SimDuration::from_secs(0.0005),
                )?);
            }
            let report = Engine::new(config).execute_plan(&platform, &wf, &plan)?;
            let overhead = report.makespan().as_secs() / clean.makespan().as_secs() - 1.0;
            println!(
                "{mtbf:>10} {:>12} {:>11.4}s {:>9.1}% {:>10}",
                if ckpt { "yes" } else { "no" },
                report.makespan().as_secs(),
                overhead * 100.0,
                report.failures()
            );
        }
    }

    println!(
        "\nAs MTBF approaches task granularity, restart-from-scratch overhead \
         explodes while checkpointing pays only the lost tail of each attempt."
    );
    Ok(())
}
