//! A discovery campaign: an ensemble of heterogeneous workflows sharing
//! one HPC node.
//!
//! Three workflows arrive over time — a LIGO inspiral search already
//! running, then an urgent CyberShake hazard assessment, then a Montage
//! mosaic batch. The example compares the three arbitration policies
//! (FIFO, priority, fair share) on per-member turnaround, then plans the
//! Montage member under an energy budget for the battery-backed window.
//!
//! ```sh
//! cargo run --release --example discovery_campaign
//! ```

use helios::core::{EngineConfig, EnsembleMember, EnsemblePolicy, EnsembleRunner};
use helios::energy::{account, plan_within_budget};
use helios::platform::presets;
use helios::sched::{HeftScheduler, Scheduler};
use helios::sim::SimTime;
use helios::workflow::generators::{cybershake, ligo_inspiral, montage};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = presets::hpc_node();
    let members = [
        EnsembleMember {
            workflow: ligo_inspiral(120, 1)?,
            arrival: SimTime::ZERO,
            priority: 1.0,
        },
        EnsembleMember {
            workflow: cybershake(120, 2)?,
            arrival: SimTime::from_secs(0.2),
            priority: 10.0, // urgent hazard assessment
        },
        EnsembleMember {
            workflow: montage(120, 3)?,
            arrival: SimTime::from_secs(0.4),
            priority: 0.5,
        },
    ];
    println!("campaign: 3 workflows on {platform}\n");
    println!(
        "{:>12} {:>14} {:>14} {:>14} {:>12}",
        "policy", "ligo t/a (s)", "cyber t/a (s)", "montage t/a", "makespan"
    );
    for policy in [
        EnsemblePolicy::Fifo,
        EnsemblePolicy::Priority,
        EnsemblePolicy::FairShare,
    ] {
        let report =
            EnsembleRunner::new(EngineConfig::default(), policy).run(&platform, &members)?;
        println!(
            "{:>12} {:>14.4} {:>14.4} {:>14.4} {:>12.4}",
            policy.as_str(),
            report.members[0].turnaround.as_secs(),
            report.members[1].turnaround.as_secs(),
            report.members[2].turnaround.as_secs(),
            report.makespan.as_secs()
        );
    }

    // Overnight window: the Montage batch must fit an energy budget.
    let wf = &members[2].workflow;
    let heft = HeftScheduler::default().schedule(wf, &platform)?;
    let unconstrained = account(&heft, wf, &platform, false)?.active_j;
    println!("\nMontage active energy, unconstrained: {unconstrained:.1} J");
    for frac in [0.9, 0.8, 0.7] {
        match plan_within_budget(wf, &platform, unconstrained * frac, 2.0)? {
            Some(plan) => println!(
                "  budget {:.1} J -> makespan {:.4}s (alpha {:.1}, deadline x{:.1}, {:.1} J)",
                unconstrained * frac,
                plan.makespan_secs,
                plan.alpha,
                plan.deadline_factor,
                plan.active_j
            ),
            None => println!("  budget {:.1} J -> infeasible", unconstrained * frac),
        }
    }
    Ok(())
}
