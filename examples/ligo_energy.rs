//! Energy-aware orchestration of a LIGO Inspiral search.
//!
//! Compares three energy strategies on the same workflow and platform:
//!
//! 1. plain HEFT (performance-first),
//! 2. energy-aware HEFT (device choice trades time vs. energy),
//! 3. HEFT + DVFS slack reclamation against a relaxed deadline,
//!
//! and reports makespan, energy and energy-delay product for each.
//!
//! ```sh
//! cargo run --release --example ligo_energy
//! ```

use helios::energy::{account, reclaim_slack, EnergyAwareHeft};
use helios::platform::presets;
use helios::sched::{HeftScheduler, Schedule, Scheduler};
use helios::sim::SimTime;
use helios::workflow::generators::ligo_inspiral;
use helios::workflow::Workflow;

fn row(
    label: &str,
    schedule: &Schedule,
    wf: &Workflow,
    platform: &helios::platform::Platform,
) -> Result<(), Box<dyn std::error::Error>> {
    let e = account(schedule, wf, platform, false)?;
    println!(
        "{label:<28} {:>10.4}s {:>12.1} J {:>14.2} J·s",
        schedule.makespan().as_secs(),
        e.total_j(),
        e.edp()
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = presets::hpc_node();
    let wf = ligo_inspiral(200, 7)?;
    println!("workflow: {wf}\nplatform: {platform}\n");
    println!(
        "{:<28} {:>11} {:>14} {:>16}",
        "strategy", "makespan", "energy", "EDP"
    );

    // 1. Performance-first baseline.
    let heft = HeftScheduler::default().schedule(&wf, &platform)?;
    row("heft", &heft, &wf, &platform)?;

    // 2. Energy-aware device selection at several trade-off points.
    for alpha in [0.7, 0.5, 0.3] {
        let ea = EnergyAwareHeft::new(alpha).schedule(&wf, &platform)?;
        ea.validate(&wf, &platform)?;
        row(&format!("ea-heft(alpha={alpha})"), &ea, &wf, &platform)?;
    }

    // 3. DVFS slack reclamation: accept 20% / 50% longer deadlines.
    for slack in [1.2, 1.5] {
        let deadline = SimTime::ZERO + heft.makespan() * slack;
        let reclaimed = reclaim_slack(&heft, &wf, &platform, deadline)?;
        reclaimed.validate(&wf, &platform)?;
        row(
            &format!("heft+slack(deadline={slack}x)"),
            &reclaimed,
            &wf,
            &platform,
        )?;
    }

    println!(
        "\nLower EDP is better; slack reclamation trades deadline headroom \
         for voltage/frequency reductions on non-critical tasks."
    );
    Ok(())
}
