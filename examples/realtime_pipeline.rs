//! Schedulability analysis of a mixed-criticality sensing pipeline on an
//! embedded heterogeneous SoC.
//!
//! A discovery instrument runs periodic acquisition, filtering and
//! inference tasks beside a safety monitor. This example walks the
//! real-time toolbox: utilization bounds, exact response-time analysis,
//! elastic degradation under overload, mixed-criticality certification,
//! and federated allocation of a parallel DAG task.
//!
//! ```sh
//! cargo run --release --example realtime_pipeline
//! ```

use helios::rt::{
    analysis, federated_test, Criticality, DagTask, ElasticTask, MixedCriticalityTask, PeriodicTask,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. The periodic pipeline -------------------------------------
    let tasks = vec![
        PeriodicTask::new(2.0, 10.0)?,  // sensor acquisition
        PeriodicTask::new(6.0, 40.0)?,  // DSP filtering
        PeriodicTask::new(18.0, 80.0)?, // NPU inference
        PeriodicTask::new(1.0, 5.0)?,   // watchdog
    ];
    let u = analysis::total_utilization(&tasks);
    println!("pipeline utilization U = {u:.3}");
    println!(
        "  Liu-Layland bound ({} tasks): {:.3} -> {}",
        tasks.len(),
        analysis::rm_utilization_bound(tasks.len()),
        if analysis::rm_utilization_test(&tasks) {
            "schedulable by bound"
        } else {
            "bound inconclusive"
        }
    );
    println!(
        "  hyperbolic test: {}",
        if analysis::hyperbolic_test(&tasks) {
            "pass"
        } else {
            "inconclusive"
        }
    );
    match analysis::rta_fixed_priority(&tasks)? {
        Some(resp) => {
            println!("  exact RTA: schedulable; response times:");
            for (t, r) in tasks.iter().zip(&resp) {
                println!(
                    "    C={:<4} T={:<5} -> R = {r:.1} (deadline {})",
                    t.wcet(),
                    t.period(),
                    t.deadline()
                );
            }
        }
        None => println!("  exact RTA: NOT schedulable"),
    }

    // --- 2. Overload handled elastically ------------------------------
    println!("\nscience burst doubles the inference rate; compressing elastically:");
    let elastic = vec![
        ElasticTask::new(2.0, 10.0, 20.0, 1.0)?,
        ElasticTask::new(6.0, 40.0, 80.0, 1.0)?,
        ElasticTask::new(18.0, 40.0, 160.0, 3.0)?, // burst-rate inference
        ElasticTask::new(1.0, 5.0, 5.0, 0.0)?,     // watchdog is rigid
    ];
    let nominal: f64 = elastic.iter().map(ElasticTask::nominal_utilization).sum();
    match analysis::elastic_compress(&elastic, 0.75)? {
        Some(periods) => {
            println!("  nominal U = {nominal:.3} compressed to <= 0.75; new periods:");
            for (t, p) in elastic.iter().zip(&periods) {
                println!(
                    "    C={:<4} [{} .. {}] -> T = {p:.1}",
                    t.wcet(),
                    t.period_min(),
                    t.period_max()
                );
            }
        }
        None => println!("  cannot compress into budget"),
    }

    // --- 3. Mixed-criticality certification ---------------------------
    let mc = vec![
        MixedCriticalityTask::new(1.0, 2.5, 10.0, 10.0, Criticality::Hi)?, // safety monitor
        MixedCriticalityTask::new(2.0, 2.0, 10.0, 10.0, Criticality::Lo)?, // telemetry
        MixedCriticalityTask::new(4.0, 9.0, 40.0, 40.0, Criticality::Hi)?, // actuator control
    ];
    println!(
        "\nAMC-rtb mixed-criticality test: {}",
        if analysis::amc_rtb_test(&mc) {
            "certified (LO mode + mode switch both safe)"
        } else {
            "REJECTED"
        }
    );

    // --- 4. A parallel DAG job on the multicore cluster ---------------
    // Fork-join inference graph: prepare -> 10 parallel tiles -> merge.
    let mut edges = Vec::new();
    for i in 1..=10 {
        edges.push((0, i));
        edges.push((i, 11));
    }
    let dag = DagTask::new(vec![1.0; 12], edges, 6.0, 6.0)?;
    println!(
        "\nparallel inference DAG: volume {} span {} -> heavy: {}, needs {} dedicated cores",
        dag.volume(),
        dag.span(),
        dag.is_heavy(),
        dag.federated_cores()
    );
    for m in [2, 3, 4] {
        println!(
            "  federated test on {m} cores (with a 0.25-utilization light task): {}",
            federated_test(
                &[dag.clone(), DagTask::new(vec![1.0], vec![], 4.0, 4.0)?,],
                m
            )
        );
    }
    Ok(())
}
