//! Quickstart: build a platform, generate a scientific workflow,
//! schedule it with HEFT, execute it, and print the realized Gantt chart.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use helios::core::{Engine, EngineConfig};
use helios::platform::presets;
use helios::sched::{metrics::ScheduleMetrics, HeftScheduler, Scheduler};
use helios::workflow::{analysis::WorkflowStats, generators::montage};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A heterogeneous platform: 2 CPUs, 4 GPUs, FPGA, ML ASIC.
    let platform = presets::hpc_node();
    println!("platform: {platform}");

    // 2. A Montage astronomy mosaic with ~50 tasks.
    let wf = montage(50, 42)?;
    let stats = WorkflowStats::compute(&wf, &platform)?;
    println!(
        "workflow: {wf}\n  depth {} | width {} | CCR {:.3} | critical path {:.4}s",
        stats.depth, stats.width, stats.ccr, stats.cp_seconds
    );

    // 3. Plan with HEFT.
    let scheduler = HeftScheduler::default();
    let plan = scheduler.schedule(&wf, &platform)?;
    plan.validate(&wf, &platform)?;
    let m = ScheduleMetrics::compute(&plan, &wf, &platform)?;
    println!(
        "plan ({}): makespan {:.4}s | SLR {:.2} | speedup {:.2} | efficiency {:.2}",
        scheduler.name(),
        m.makespan_secs,
        m.slr,
        m.speedup,
        m.efficiency
    );

    // 4. Execute the plan in the engine (ideal conditions).
    let report = Engine::new(EngineConfig::default()).execute_plan(&platform, &wf, &plan)?;
    println!(
        "run: makespan {:.4}s | energy {:.1} J | {} transfers ({:.1} MB)",
        report.makespan().as_secs(),
        report.energy().total_j(),
        report.transfers().count,
        report.transfers().bytes / 1e6
    );

    // 5. The realized schedule, device by device.
    println!("\nGantt:\n{}", report.gantt(&wf, &platform));
    Ok(())
}
