//! Static plans vs. online just-in-time dispatch under runtime
//! degradation.
//!
//! Two stressors the planner cannot see:
//!
//! 1. **thermal throttling** — two of the four GPUs silently run N×
//!    slower than their model (co-tenancy, thermal limits),
//! 2. **stale estimates** — the planner's per-task costs carry
//!    multiplicative error.
//!
//! The static HEFT plan freezes device assignments at plan time; the
//! online dispatcher believes the same wrong model but *calibrates* it
//! against observed completions and routes around degraded devices.
//!
//! ```sh
//! cargo run --release --example online_vs_static
//! ```

use helios::core::{Engine, EngineConfig, OnlinePolicy, OnlineRunner};
use helios::platform::presets;
use helios::sched::{HeftScheduler, Scheduler};
use helios::sim::SimRng;
use helios::workflow::generators::sipht;
use helios::workflow::Workflow;

/// The planner's view: every task cost misestimated by a lognormal
/// factor with the given spread.
fn distorted(wf: &Workflow, cv: f64, seed: u64) -> Workflow {
    let mut rng = SimRng::seed_from(seed ^ 0xE571);
    wf.map_costs(|_, t| {
        let factor = rng.log_normal(0.0, cv).clamp(0.05, 20.0);
        t.with_cost(t.cost().scaled(factor))
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = presets::hpc_node();
    let seeds = 0..10u64;
    // hpc_node device order: cpu0, cpu1, gpu0..gpu3, fpga0, asic0.
    let throttle = |factor: f64| -> Vec<f64> {
        let mut v = vec![1.0; platform.num_devices()];
        v[2] = factor; // gpu0
        v[3] = factor; // gpu1
        v
    };

    println!("— GPU throttling (planner believes all GPUs run at full speed) —");
    println!(
        "{:>10} {:>14} {:>14} {:>10}",
        "slowdown", "static HEFT", "online JIT", "ratio"
    );
    for factor in [1.0, 2.0, 4.0, 8.0] {
        let mut static_sum = 0.0;
        let mut online_sum = 0.0;
        for seed in seeds.clone() {
            let wf = sipht(150, seed)?;
            let config = EngineConfig {
                device_slowdown: Some(throttle(factor)),
                ..Default::default()
            };
            let plan = HeftScheduler::default().schedule(&wf, &platform)?;
            static_sum += Engine::new(config.clone())
                .execute_plan(&platform, &wf, &plan)?
                .makespan()
                .as_secs();
            online_sum += OnlineRunner::new(config, OnlinePolicy::RankedJit)
                .run(&platform, &wf)?
                .makespan()
                .as_secs();
        }
        println!(
            "{factor:>9}x {:>13.4}s {:>13.4}s {:>10.2}",
            static_sum / 10.0,
            online_sum / 10.0,
            online_sum / static_sum
        );
    }

    println!("\n— Stale estimates (both sides believe distorted task costs) —");
    println!(
        "{:>10} {:>14} {:>14} {:>10}",
        "est. CV", "static HEFT", "online JIT", "ratio"
    );
    for cv in [0.0, 0.5, 1.0, 1.5] {
        let mut static_sum = 0.0;
        let mut online_sum = 0.0;
        for seed in seeds.clone() {
            let wf = sipht(150, seed)?;
            let believed = distorted(&wf, cv, seed);
            let plan = HeftScheduler::default().schedule(&believed, &platform)?;
            static_sum += Engine::new(EngineConfig::default())
                .execute_plan(&platform, &wf, &plan)?
                .makespan()
                .as_secs();
            online_sum += OnlineRunner::new(EngineConfig::default(), OnlinePolicy::RankedJit)
                .with_estimates(believed)
                .run(&platform, &wf)?
                .makespan()
                .as_secs();
        }
        println!(
            "{cv:>10.1} {:>13.4}s {:>13.4}s {:>10.2}",
            static_sum / 10.0,
            online_sum / 10.0,
            online_sum / static_sum
        );
    }

    println!(
        "\nratio < 1 means online wins. Static plans decay when reality \
         drifts from the model; calibrated online dispatch routes around \
         the drift."
    );
    Ok(())
}
